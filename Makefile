# Developer entry points.  `make smoke` is the PR gate: tier-1 tests
# plus one cached parallel sweep end-to-end (see scripts/smoke.sh).
# `make smoke-sharded` checks shard/merge/plan against both store
# backends (see scripts/smoke_sharded.sh).

PYTHON ?= python
export PYTHONPATH := src

.PHONY: test smoke smoke-sharded bench bench-check bench-exec clean-cache

test:
	$(PYTHON) -m pytest -x -q

smoke: test
	bash scripts/smoke.sh

smoke-sharded:
	bash scripts/smoke_sharded.sh

bench:
	$(PYTHON) -m repro bench

bench-check:
	$(PYTHON) -m repro bench --check

bench-exec:
	$(PYTHON) benchmarks/bench_exec_scaling.py

clean-cache:
	rm -rf .repro-cache .smoke-cache .smoke-shard
