# Developer entry points.  `make smoke` is the PR gate: tier-1 tests
# plus one cached parallel sweep end-to-end (see scripts/smoke.sh),
# including the incremental figure pipeline.  `make smoke-sharded`
# checks shard/merge/plan against both store backends
# (see scripts/smoke_sharded.sh).  `make figures` regenerates every
# paper artifact into figures/ — incrementally, against .repro-cache.

PYTHON ?= python
export PYTHONPATH := src

.PHONY: test check typecheck smoke smoke-sharded figures figures-smoke \
	obs-smoke bench bench-check bench-dir bench-gate bench-exec \
	clean-cache

test:
	$(PYTHON) -m pytest -x -q

# The static-analysis gate: the repo's own AST rules over the whole
# tree (see docs/static-analysis.md), then the typed-core/style gates
# when the external tools are installed (CI always runs them; a bare
# dev container may not have them).
check:
	$(PYTHON) -m repro check src tests scripts
	$(MAKE) typecheck
	@if $(PYTHON) -c "import ruff" >/dev/null 2>&1 || command -v ruff >/dev/null 2>&1; then \
		ruff check src tests scripts; \
	else \
		echo "ruff not installed; skipping style gate (CI runs it)"; \
	fi

typecheck:
	@if $(PYTHON) -c "import mypy" >/dev/null 2>&1; then \
		$(PYTHON) -m mypy --strict src/repro/exec src/repro/figures \
			src/repro/obs src/repro/scenarios; \
	else \
		echo "mypy not installed; skipping typed-core gate (CI runs it)"; \
	fi

smoke: test
	bash scripts/smoke.sh

smoke-sharded:
	bash scripts/smoke_sharded.sh

figures:
	$(PYTHON) -m repro figures build --jobs 0 --progress \
		--cache-dir .repro-cache --out-dir figures

figures-smoke:
	bash scripts/smoke_figures.sh

obs-smoke:
	bash scripts/smoke_obs.sh

bench:
	$(PYTHON) -m repro bench

bench-check:
	$(PYTHON) -m repro bench --check

# the PR 7 flush-storm microbenchmark, full work size
bench-dir:
	$(PYTHON) -m repro bench --bench bench_directory

# bare --compare: gate against the newest committed BENCH_*.json
# session (BENCH_baseline.json as fallback)
bench-gate:
	$(PYTHON) -m repro bench --check --compare

bench-exec:
	$(PYTHON) benchmarks/bench_exec_scaling.py

clean-cache:
	rm -rf .repro-cache .smoke-cache .smoke-shard .smoke-figures \
		.smoke-obs obs figures
