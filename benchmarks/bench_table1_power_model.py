"""Table I — the Alpha 21264 @ 65 nm power model.

Regenerates the power factors through the ``table1-power-model``
extractor (Section VII derivation) and checks them against the paper's
stated values.
"""

from __future__ import annotations

from conftest import print_figure

PAPER_TABLE1 = {
    "Run": 1.0,
    "Cache Miss": 0.32,
    "Transaction Commit": 0.44,
    "Clock Gated": 0.20,
}


def test_table1_power_model(benchmark, analytic_builder):
    data = benchmark(analytic_builder.data, "table1")
    print_figure(analytic_builder, "table1")
    for operation, factor in data["rows"]:
        assert abs(factor - PAPER_TABLE1[operation]) < 1e-9, operation
