"""Table I — the Alpha 21264 @ 65 nm power model.

Regenerates the power factors from the Section VII derivation and
checks them against the paper's stated values.
"""

from __future__ import annotations

from repro.harness.reporting import format_table
from repro.power.model import PowerModel, PowerModelParams

PAPER_TABLE1 = {
    "Run": 1.0,
    "Cache Miss": 0.32,
    "Transaction Commit": 0.44,
    "Clock Gated": 0.20,
}


def test_table1_power_model(benchmark):
    model = benchmark(PowerModel.derive, PowerModelParams())
    rows = model.table1_rows()
    print()
    print(format_table(["Operation", "Power Factor"], rows,
                       title="Table I — Power model of Alpha 21264 (derived)"))
    for operation, factor in rows:
        assert abs(factor - PAPER_TABLE1[operation]) < 1e-9, operation
