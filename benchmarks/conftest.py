"""Shared fixtures for the benchmark suite.

Every table and figure of the paper has one benchmark module here; the
simulated experiment grid (Figs. 4–6 share their runs, exactly as in
the paper) is computed once per session and cached.

Run with::

    pytest benchmarks/ --benchmark-only

Each benchmark times the regeneration of its table/figure and *prints*
the rows/series the paper reports, so the textual output doubles as the
reproduction record (captured into EXPERIMENTS.md).
"""

from __future__ import annotations

import pytest

from repro.harness.experiments import EvaluationSuite

#: scale/seed used across the benchmark suite; "small" keeps the whole
#: Fig. 3–7 regeneration to a few minutes in CPython.
BENCH_SCALE = "small"
BENCH_SEED = 1
BENCH_PROCS = (4, 8, 16)


@pytest.fixture(scope="session")
def suite() -> EvaluationSuite:
    return EvaluationSuite(scale=BENCH_SCALE, seed=BENCH_SEED, procs=BENCH_PROCS)


@pytest.fixture(scope="session")
def full_grid(suite: EvaluationSuite) -> EvaluationSuite:
    """The 3 apps × 3 processor-count grid, run once per session."""
    suite.run_all()
    return suite
