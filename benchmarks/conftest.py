"""Shared fixtures for the benchmark suite.

Every table and figure of the paper has one benchmark module here; all
of them consume the declarative figure pipeline (:mod:`repro.figures`):
one session-scoped :class:`~repro.figures.builder.FigureBuilder` plans
every figure's suite against a throw-away result store, simulates each
unique job exactly once (Figs. 4–6 + headline share the evaluation
grid; Fig. 7 shares its ungated baselines and W0 = 8 gated runs with it
by job-digest dedup), and each benchmark times the *extraction* of its
figure's data from the warm store.

Run with::

    pytest benchmarks/ --benchmark-only

Each benchmark prints the rows/series the paper reports (via the shared
:func:`repro.analysis.figreport.format_figure` renderer), so the
textual output doubles as the reproduction record (captured into
EXPERIMENTS.md).
"""

from __future__ import annotations

import pytest

from repro.figures import FigureBuilder, FigureParams

#: scale/seed used across the benchmark suite; "small" keeps the whole
#: Fig. 3–7 regeneration to a few minutes in CPython.
BENCH_SCALE = "small"
BENCH_SEED = 1
BENCH_PROCS = (4, 8, 16)


@pytest.fixture(scope="session")
def fig_builder(tmp_path_factory) -> FigureBuilder:
    """A figure builder over a warm store: the full grid, run once."""
    builder = FigureBuilder(
        store=tmp_path_factory.mktemp("figstore"),
        out_dir=tmp_path_factory.mktemp("figures"),
        params=FigureParams(
            scale=BENCH_SCALE, seed=BENCH_SEED, procs=BENCH_PROCS
        ),
    )
    report = builder.build()
    assert all(a.status in ("built", "fresh") for a in report.artifacts)
    return builder


@pytest.fixture(scope="session")
def analytic_builder(tmp_path_factory) -> FigureBuilder:
    """A builder for the analytic artifacts only — zero simulations."""
    builder = FigureBuilder(
        store=tmp_path_factory.mktemp("an-store"),
        out_dir=tmp_path_factory.mktemp("an-figures"),
        params=FigureParams(
            scale=BENCH_SCALE, seed=BENCH_SEED, procs=BENCH_PROCS
        ),
    )
    report = builder.build(names=["fig3", "table1", "table2"])
    assert report.executed == 0
    return builder


def print_figure(builder: FigureBuilder, name: str) -> None:
    """Print one built artifact as its paper-style text table."""
    from repro.analysis.figreport import format_figure, load_figure

    print()
    print(format_figure(load_figure(builder.artifact_path(name))))
