"""Ablation — momentum-based CM (the paper's stated future work).

Section VI: "Other contention management schemes based on the momentum
of the transaction at the time of abort are possible.  We have left
them as future works."  We implement and evaluate one: the gating
window scales with the victim's invested work at abort time
(`repro.cm.momentum`).  Compared against Eq. 8 on the long-transaction
yada (where momentum varies most) and the short-transaction intruder.
"""

from __future__ import annotations

import dataclasses

from repro.config import GatingConfig, SystemConfig
from repro.harness.reporting import format_table
from repro.harness.runner import run_workload, workload

PROCS = 8
APPS = ("yada", "intruder")
POLICIES = ("gating-aware", "momentum")


def run_grid():
    grid = {}
    for app in APPS:
        spec = workload(app, scale="small", seed=1)
        base = SystemConfig(num_procs=PROCS, seed=1)
        baseline = run_workload(spec, base.with_gating(False))
        for policy in POLICIES:
            config = dataclasses.replace(
                base,
                gating=GatingConfig(enabled=True, w0=8,
                                    contention_manager=policy),
            )
            grid[(app, policy)] = (baseline, run_workload(spec, config))
    return grid


def test_momentum_cm_ablation(benchmark):
    grid = benchmark.pedantic(run_grid, rounds=1, iterations=1)
    rows = []
    for (app, policy), (baseline, gated) in grid.items():
        hist = gated.machine_result.stats.histograms().get("gating.window")
        rows.append(
            (
                app,
                policy,
                round(baseline.parallel_time / gated.parallel_time, 3),
                round(baseline.energy.total / gated.energy.total, 3),
                round(hist.mean if hist else 0.0, 1),
                gated.aborts,
            )
        )
    print()
    print(
        format_table(
            ["app", "window policy", "speed-up", "energy red.",
             "mean window", "aborts"],
            rows,
            title=f"Ablation — momentum CM vs Eq. 8 ({PROCS} procs)",
        )
    )
    # momentum windows must actually track transaction length:
    window_means = {
        (app, policy): row[4]
        for (app, policy), row in zip(grid.keys(), rows)
    }
    assert window_means[("yada", "momentum")] > window_means[
        ("yada", "gating-aware")
    ]
    # and both policies stay functional (validated inside run_workload)
    for (_, _), (_, gated) in grid.items():
        assert gated.commits > 0
