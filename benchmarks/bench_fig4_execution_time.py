"""Fig. 4 — total parallel execution time, with/without clock gating.

Three applications (genome, yada, intruder) × {4, 8, 16} processors;
each pair of bars is (ungated N1, gated N2) with the speed-up factor
annotated on top of the gated bar, exactly as the paper plots it.

Regenerated through the declarative figure pipeline: the shared
session builder simulates the evaluation grid once into a result store
and the benchmark times the registered ``fig4-execution-time``
extractor over the warm store.

Expected agreement (shape, not cycles): gating stays roughly
performance-neutral-to-positive for the paper's W0 = 8, with the
highly-conflicting intruder benefiting most and at least one
moderate-contention point allowed to show a slowdown (the paper's
genome @ 8 threads did).
"""

from __future__ import annotations

from conftest import print_figure


def test_fig4_parallel_execution_time(benchmark, fig_builder):
    data = benchmark(fig_builder.data, "fig4")
    print_figure(fig_builder, "fig4")
    rows = data["rows"]
    speedups = [row[4] for row in rows]
    # shape: no catastrophic slowdown anywhere, and a clear win somewhere
    assert min(speedups) > 0.85
    assert max(speedups) > 1.05
    # the highly-conflicting app benefits the most on average
    by_app: dict[str, list[float]] = {}
    for app, _procs, _n1, _n2, speedup in rows:
        by_app.setdefault(app, []).append(speedup)
    mean = {app: sum(v) / len(v) for app, v in by_app.items()}
    assert mean["intruder"] >= max(mean["genome"], mean["yada"]) - 0.02
