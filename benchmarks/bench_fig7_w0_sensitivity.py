"""Fig. 7 — speed-up as a function of W0 and Np.

Sweeps the contention-management constant :math:`W_0` over
{1, 2, 4, 8, 16, 32} for each application and processor count.  Through
the figure pipeline the grid shares its ungated baselines *and* its
W0 = 8 gated runs with the Figs. 4–6 evaluation grid by job-digest
dedup in one result store.

Expected shape (paper): with W0 = 8, speed-up is obtained "for all the
cases (except for genome with 8 threads)"; W0 has first-order effect,
and the best W0 shifts with the processor count ("As processor number
changes, W0 can further be adjusted to extract more performance").
"""

from __future__ import annotations

from conftest import print_figure


def test_fig7_w0_np_sensitivity(benchmark, fig_builder):
    data = benchmark(fig_builder.data, "fig7")
    print_figure(fig_builder, "fig7")
    matrix = data["speedup"]

    # W0 is a first-order knob: for the contended app the spread across
    # W0 values must be visible at every processor count.
    for procs, curve in matrix["intruder"].items():
        values = list(curve.values())
        assert max(values) - min(values) > 0.03, (procs, curve)
    # nothing degenerates catastrophically anywhere in the sweep
    for app, by_procs in matrix.items():
        for curve in by_procs.values():
            assert all(s > 0.7 for s in curve.values()), (app, curve)
