"""Fig. 7 — speed-up as a function of W0 and Np.

Sweeps the contention-management constant :math:`W_0` over
{1, 2, 4, 8, 16, 32} for each application and processor count, reusing
one ungated baseline per (app, Np) point.

Expected shape (paper): with W0 = 8, speed-up is obtained "for all the
cases (except for genome with 8 threads)"; W0 has first-order effect,
and the best W0 shifts with the processor count ("As processor number
changes, W0 can further be adjusted to extract more performance").
"""

from __future__ import annotations

from repro.harness.reporting import format_matrix
from repro.harness.sweep import DEFAULT_W0_VALUES


def test_fig7_w0_np_sensitivity(benchmark, full_grid):
    matrix = benchmark(full_grid.fig7_matrix, DEFAULT_W0_VALUES)
    print()
    for app, by_procs in matrix.items():
        print(
            format_matrix(
                sorted(by_procs),
                list(DEFAULT_W0_VALUES),
                by_procs,
                corner="Np \\ W0",
                title=f"Fig. 7 — Speed-up vs W0 ({app})",
            )
        )
        print()

    # W0 is a first-order knob: for the contended app the spread across
    # W0 values must be visible at every processor count.
    for procs, curve in matrix["intruder"].items():
        values = list(curve.values())
        assert max(values) - min(values) > 0.03, (procs, curve)
    # nothing degenerates catastrophically anywhere in the sweep
    for app, by_procs in matrix.items():
        for curve in by_procs.values():
            assert all(s > 0.7 for s in curve.values()), (app, curve)
