"""Fig. 5 — energy consumption with and without clock gating.

Same runs as Fig. 4 (the paper derives Figs. 4–6 from one set of
simulations); the Eq. (6) reduction factor E_ug/E_g is annotated on the
gated bar.  Expected shape: "moderate to significant energy reductions
... in all cases" for contended applications, with the high-abort-rate
intruder saving the most.
"""

from __future__ import annotations

from repro.harness.reporting import format_table


def test_fig5_energy_consumption(benchmark, full_grid):
    rows = benchmark(full_grid.fig5_rows)
    print()
    print(
        format_table(
            ["app", "procs", "Eug", "Eg", "reduction (Eq. 6)"],
            [(a, p, round(eu, 1), round(eg, 1), r) for a, p, eu, eg, r in rows],
            title="Fig. 5 — Energy consumption (cycle·Prun units)",
        )
    )
    by_app: dict[str, list[float]] = {}
    for app, _procs, _eu, _eg, reduction in rows:
        by_app.setdefault(app, []).append(reduction)
    mean = {app: sum(v) / len(v) for app, v in by_app.items()}

    # intruder (high abort rate) must save substantially at every count
    assert all(r > 1.15 for r in by_app["intruder"])
    # yada saves on average; genome is the low-contention outlier and
    # may lose slightly (the paper's own slowdown case analog)
    assert mean["yada"] > 1.0
    assert mean["genome"] > 0.9
