"""Fig. 5 — energy consumption with and without clock gating.

Same runs as Fig. 4 (the paper derives Figs. 4–6 from one set of
simulations — here literally: both extractors read one result store);
the Eq. (6) reduction factor E_ug/E_g is annotated on the gated bar.
Expected shape: "moderate to significant energy reductions ... in all
cases" for contended applications, with the high-abort-rate intruder
saving the most.
"""

from __future__ import annotations

from conftest import print_figure


def test_fig5_energy_consumption(benchmark, fig_builder):
    data = benchmark(fig_builder.data, "fig5")
    print_figure(fig_builder, "fig5")
    by_app: dict[str, list[float]] = {}
    for app, _procs, _eu, _eg, reduction in data["rows"]:
        by_app.setdefault(app, []).append(reduction)
    mean = {app: sum(v) / len(v) for app, v in by_app.items()}

    # intruder (high abort rate) must save substantially at every count
    assert all(r > 1.15 for r in by_app["intruder"])
    # yada saves on average; genome is the low-contention outlier and
    # may lose slightly (the paper's own slowdown case analog)
    assert mean["yada"] > 1.0
    assert mean["genome"] > 0.9
