"""Fig. 6 — average power dissipation with and without clock gating.

Eq. (7): AveragePowerReduction = (Eug/Eg) · (N2/N1).  The identity with
Figs. 4/5 is asserted across the three extractors — all reading the
same result store — and the per-point averages are printed.
"""

from __future__ import annotations

import pytest

from conftest import print_figure


def test_fig6_average_power(benchmark, fig_builder):
    data = benchmark(fig_builder.data, "fig6")
    print_figure(fig_builder, "fig6")
    fig4 = {
        (a, p): (n1, n2) for a, p, n1, n2, _ in fig_builder.data("fig4")["rows"]
    }
    fig5 = {(a, p): r for a, p, _, _, r in fig_builder.data("fig5")["rows"]}
    for app, procs, _pu, _pg, power_reduction in data["rows"]:
        n1, n2 = fig4[(app, procs)]
        assert power_reduction == pytest.approx(fig5[(app, procs)] * n2 / n1)
    # average power must sit between the gated floor and run power
    for _app, _procs, pu, pg, _r in data["rows"]:
        assert 0.2 < pg <= 1.0
        assert 0.2 < pu <= 1.0
