"""Fig. 6 — average power dissipation with and without clock gating.

Eq. (7): AveragePowerReduction = (Eug/Eg) · (N2/N1).  The identity with
Figs. 4/5 is asserted, and the per-point averages are printed.
"""

from __future__ import annotations

import pytest

from repro.harness.reporting import format_table


def test_fig6_average_power(benchmark, full_grid):
    rows = benchmark(full_grid.fig6_rows)
    print()
    print(
        format_table(
            ["app", "procs", "avg P (ungated)", "avg P (gated)",
             "reduction (Eq. 7)"],
            rows,
            title="Fig. 6 — Average power dissipation (fractions of Prun)",
        )
    )
    fig4 = {(a, p): (n1, n2) for a, p, n1, n2, _ in full_grid.fig4_rows()}
    fig5 = {(a, p): r for a, p, _, _, r in full_grid.fig5_rows()}
    for app, procs, _pu, _pg, power_reduction in rows:
        n1, n2 = fig4[(app, procs)]
        assert power_reduction == pytest.approx(fig5[(app, procs)] * n2 / n1)
    # average power must sit between the gated floor and run power
    for _app, _procs, pu, pg, _r in rows:
        assert 0.2 < pg <= 1.0
        assert 0.2 < pu <= 1.0
