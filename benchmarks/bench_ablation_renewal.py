"""Ablation — the renewal mechanism (Fig. 2e/2f).

Renewal is the protocol's answer to enemies that keep committing the
same transaction in a loop: instead of waking the victim into another
doomed attempt, the directory extends the gating window.  Disabling
renewal (forcing an unconditional "on" at every expiry) quantifies its
contribution on the renewal-heavy intruder.

Implemented by ablating the ungate check: a contention manager whose
windows match Eq. (8) but with the TxInfo comparison short-circuited —
we model this by running with an OR-circuit that always reports the
aborter absent (monkey-patched GatingUnit method), which is exactly the
"always on" branch.
"""

from __future__ import annotations

from repro.config import SystemConfig
from repro.gating.protocol import GatingUnit
from repro.harness.reporting import format_table
from repro.harness.runner import run_workload, workload

SPEC = workload("intruder", scale="small", seed=1)
PROCS = 8


def run_pair():
    config = SystemConfig(num_procs=PROCS, seed=1)
    with_renewal = run_workload(SPEC, config)

    original = GatingUnit._check_ungate

    def never_renew(self, entry, epoch):
        if entry.epoch != epoch:
            return
        self._send_on(entry, reason="renewal-ablated")

    GatingUnit._check_ungate = never_renew
    try:
        without_renewal = run_workload(SPEC, config)
    finally:
        GatingUnit._check_ungate = original
    return with_renewal, without_renewal


def test_renewal_ablation(benchmark):
    with_renewal, without_renewal = benchmark.pedantic(
        run_pair, rounds=1, iterations=1
    )
    rows = [
        ("with renewal (paper)", with_renewal.parallel_time,
         round(with_renewal.energy.total, 1),
         with_renewal.counters.get("gating.renewals", 0),
         with_renewal.aborts),
        ("renewal disabled", without_renewal.parallel_time,
         round(without_renewal.energy.total, 1),
         without_renewal.counters.get("gating.renewals", 0),
         without_renewal.aborts),
    ]
    print()
    print(format_table(
        ["variant", "N (cycles)", "energy", "renewals", "aborts"],
        rows,
        title=f"Ablation — gating-window renewal (intruder, {PROCS} procs)",
    ))

    assert with_renewal.counters.get("gating.renewals", 0) > 0
    assert without_renewal.counters.get("gating.renewals", 0) == 0
    # renewal lets victims sleep through doomed retries: fewer aborts
    assert with_renewal.aborts <= without_renewal.aborts
