"""Ablation — leakage-fraction sensitivity of the energy result.

The paper assumes 20 % active-mode leakage at 65 nm (with high-Vt and
stacked-transistor techniques) and notes that "without any
optimization" leakage would be 30–40 %.  Since the clock-gated state
consumes exactly the leakage power, the energy savings of the proposal
shrink as leakage grows.  This sweep quantifies that dependence, and
also evaluates the "State Retention Power Gating" extension the paper
mentions (Section IV: "it is possible to gate power too ... using
technologies like State Retention Power Gating"), modelled as a gated
state at a small retention floor.
"""

from __future__ import annotations

from repro.config import SystemConfig
from repro.harness.reporting import format_table
from repro.harness.runner import run_workload, workload
from repro.power.energy import compute_energy
from repro.power.model import PowerModel, PowerModelParams

SPEC = workload("intruder", scale="small", seed=1)
PROCS = 8

LEAKAGE_POINTS = (0.10, 0.20, 0.30, 0.40)
RETENTION_FLOOR = 0.05  # SRPG keeps only retention flops powered


def run_once():
    """One gated + one ungated run; energy recomputed per power model."""
    config = SystemConfig(num_procs=PROCS, seed=1)
    ungated = run_workload(SPEC, config.with_gating(False))
    gated = run_workload(SPEC, config.with_gating(True))
    return ungated, gated


def test_leakage_sensitivity(benchmark):
    ungated, gated = benchmark.pedantic(run_once, rounds=1, iterations=1)
    window_u = (
        ungated.machine_result.parallel_start,
        ungated.machine_result.parallel_end,
    )
    window_g = (
        gated.machine_result.parallel_start,
        gated.machine_result.parallel_end,
    )

    rows = []
    reductions = {}
    for leak in LEAKAGE_POINTS:
        model = PowerModel.derive(PowerModelParams(leakage_fraction=leak))
        eu = compute_energy(
            ungated.machine_result.timelines, window_u, model, gated_run=False
        )
        eg = compute_energy(
            gated.machine_result.timelines, window_g, model, gated_run=True
        )
        reductions[leak] = eu.total / eg.total
        rows.append((f"{leak:.0%}", round(eu.total, 1), round(eg.total, 1),
                     round(eu.total / eg.total, 3)))

    # SRPG extension: clock+power gating with a retention floor at 20% leak
    base = PowerModel.derive()
    srpg = PowerModel(
        run=base.run, miss=base.miss, commit=base.commit, gated=RETENTION_FLOOR
    )
    eu = compute_energy(
        ungated.machine_result.timelines, window_u, base, gated_run=False
    )
    eg_srpg = compute_energy(
        gated.machine_result.timelines, window_g, srpg, gated_run=True
    )
    rows.append(("20% + SRPG", round(eu.total, 1), round(eg_srpg.total, 1),
                 round(eu.total / eg_srpg.total, 3)))

    print()
    print(format_table(
        ["active leakage", "Eug", "Eg", "energy reduction"],
        rows,
        title=f"Ablation — leakage sensitivity (intruder, {PROCS} procs)",
    ))

    # higher leakage -> gated state saves less -> smaller reduction
    ordered = [reductions[l] for l in LEAKAGE_POINTS]
    assert ordered == sorted(ordered, reverse=True)
    # SRPG strictly improves on plain clock gating
    assert eu.total / eg_srpg.total > reductions[0.20]
