"""Table II — simulated system parameters.

Confirms the default :class:`~repro.config.SystemConfig` reproduces the
paper's simulated machine, and prints the table.
"""

from __future__ import annotations

from repro.config import SystemConfig
from repro.harness.reporting import format_table


def test_table2_system_parameters(benchmark):
    config = benchmark(SystemConfig, num_procs=16)
    rows = config.table2_rows()
    print()
    print(format_table(["Feature", "Description"], rows,
                       title="Table II — Parameters used in the simulation"))
    table = dict(rows)
    assert "single issue in-order" in table["CPU"]
    assert table["L1D"].startswith("64KB 64 byte line size, 2-way")
    assert "10 cycle" in table["Directory"]
    assert "100 cycle" in table["Main Memory"]
    assert config.cache.num_sets == 512
