"""Table II — simulated system parameters.

Confirms the default :class:`~repro.config.SystemConfig` (as rendered
by the ``table2-system-config`` extractor) reproduces the paper's
simulated machine, and prints the table.
"""

from __future__ import annotations

from repro.config import SystemConfig

from conftest import print_figure


def test_table2_system_parameters(benchmark, analytic_builder):
    data = benchmark(analytic_builder.data, "table2")
    print_figure(analytic_builder, "table2")
    table = dict(tuple(row) for row in data["rows"])
    assert "single issue in-order" in table["CPU"]
    assert table["L1D"].startswith("64KB 64 byte line size, 2-way")
    assert "10 cycle" in table["Directory"]
    assert "100 cycle" in table["Main Memory"]
    assert SystemConfig(num_procs=16).cache.num_sets == 512
