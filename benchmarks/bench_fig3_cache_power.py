"""Fig. 3 — power consumption of a data cache supporting TCC.

Normalized cache power (normal cache = 100) as the RW-bit resolution
sweeps from the 64 B line size down to 1 B, for 16/32/64/128 KB caches,
plus the paper's two calibration statements:

* 64 KB @ 2 B tracking → ≈ +5 %;
* full TCC data cache (RW bits + 1024×10 b store-address FIFO + commit
  controller) → ≈ 1.5× a normal data cache.

Regenerated through the declarative figure pipeline: the benchmark
times the registered ``fig3-cache-power`` extractor (analytic — no
simulation, no store reads).
"""

from __future__ import annotations

from conftest import print_figure


def test_fig3_tcc_cache_power(benchmark, analytic_builder):
    data = benchmark(analytic_builder.data, "fig3")
    print_figure(analytic_builder, "fig3")

    # paper anchor: 64KB, word-level (2B) tracking -> +5%
    assert abs(data["normalized_power"]["64"]["2"] - 105.0) < 0.5
    # shape: monotone growth toward finer tracking, for every size
    for size in data["cache_sizes_kb"]:
        curve = data["normalized_power"][str(size)]
        powers = [curve[str(g)] for g in data["granularities_bytes"]]
        assert powers == sorted(powers)
    assert abs(data["total_power_factor"] - 1.5) < 0.06
