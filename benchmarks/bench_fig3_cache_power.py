"""Fig. 3 — power consumption of a data cache supporting TCC.

Normalized cache power (normal cache = 100) as the RW-bit resolution
sweeps from the 64 B line size down to 1 B, for 16/32/64/128 KB caches,
plus the paper's two calibration statements:

* 64 KB @ 2 B tracking → ≈ +5 %;
* full TCC data cache (RW bits + 1024×10 b store-address FIFO + commit
  controller) → ≈ 1.5× a normal data cache.
"""

from __future__ import annotations

from repro.harness.reporting import format_matrix
from repro.power.cacti import (
    FIG3_CACHE_SIZES_KB,
    FIG3_GRANULARITIES,
    tcc_cache_power_curve,
    tcc_total_power_factor,
)


def regenerate_fig3():
    return {size: tcc_cache_power_curve(size) for size in FIG3_CACHE_SIZES_KB}


def test_fig3_tcc_cache_power(benchmark):
    curves = benchmark(regenerate_fig3)
    values = {
        f"{size}KB": {g: p for g, p in curve} for size, curve in curves.items()
    }
    print()
    print(
        format_matrix(
            [f"{s}KB" for s in FIG3_CACHE_SIZES_KB],
            list(FIG3_GRANULARITIES),
            values,
            corner="cache \\ RW-bit bytes",
            title="Fig. 3 — Normalized TCC data-cache power (normal cache = 100)",
        )
    )
    total = tcc_total_power_factor()
    print(f"Full TCC data cache factor (RW bits + store FIFO + controller): "
          f"{total:.3f}x  (paper: conservatively 1.5x)")

    # paper anchor: 64KB, word-level (2B) tracking -> +5%
    curve64 = dict(curves[64])
    assert abs(curve64[2] - 105.0) < 0.5
    # shape: monotone growth toward finer tracking, for every size
    for size, curve in curves.items():
        powers = [p for _, p in curve]
        assert powers == sorted(powers)
    assert abs(total - 1.5) < 0.06
