"""repro.exec scaling — serial vs N-worker wall clock on a fixed grid.

Times the same job batch (2 workloads × 2 processor counts × two gating
modes, 8 independent simulations) through the serial backend and
through process pools of increasing width, and prints the measured
wall-clock and speed-up per width.  Also asserts the executor's core
contract on the full grid: every backend returns bit-identical numbers
in submission order.

Run via pytest (``pytest benchmarks/bench_exec_scaling.py -s``) or
directly (``PYTHONPATH=src python benchmarks/bench_exec_scaling.py``).

On a single-CPU host the pool cannot beat the serial backend (expect
speed-up ~1.0 minus fork overhead); the bit-equality assertion is the
part that must hold everywhere.  The wall-clock win appears with
physical parallelism — and, independent of CPU count, from the result
store: a warm cache answers the whole grid with zero executions.
"""

from __future__ import annotations

import os
import time

from repro.config import SystemConfig
from repro.exec.executor import Executor
from repro.exec.jobs import RunJob
from repro.exec.serialize import result_to_dict
from repro.harness.reporting import format_table
from repro.harness.runner import workload

GRID_SCALE = "tiny"
GRID_SEED = 1


def build_grid() -> list[RunJob]:
    jobs = []
    for app in ("counter", "intruder"):
        for procs in (2, 4):
            spec = workload(app, scale=GRID_SCALE, seed=GRID_SEED)
            config = SystemConfig(num_procs=procs, seed=GRID_SEED)
            jobs.append(RunJob(spec, config.with_gating(False)))
            jobs.append(RunJob(spec, config.with_gating(True)))
    return jobs


def measure(workers: int, grid: list[RunJob]) -> tuple[float, list[dict]]:
    exe = Executor(jobs=workers)
    started = time.perf_counter()
    results = exe.run(grid)
    wall = time.perf_counter() - started
    return wall, [result_to_dict(r) for r in results]


def run_scaling(widths: tuple[int, ...] = (1, 2, 4)) -> list[tuple]:
    grid = build_grid()
    rows = []
    serial_wall, serial_results = measure(1, grid)
    rows.append((1, len(grid), round(serial_wall, 3), 1.0))
    for workers in widths:
        if workers == 1:
            continue
        wall, results = measure(workers, grid)
        assert results == serial_results, (
            f"{workers}-worker results diverged from serial"
        )
        rows.append((workers, len(grid), round(wall, 3),
                     round(serial_wall / wall, 2)))
    return rows


def test_exec_scaling(benchmark):
    grid = build_grid()
    workers = min(4, os.cpu_count() or 1)
    _wall, results = benchmark(measure, workers, grid)
    _serial_wall, serial_results = measure(1, grid)
    assert results == serial_results
    print()
    print(
        format_table(
            ["workers", "jobs", "wall (s)", "speed-up vs serial"],
            run_scaling(),
            title="repro.exec scaling — fixed 8-job grid",
        )
    )


if __name__ == "__main__":
    print(
        format_table(
            ["workers", "jobs", "wall (s)", "speed-up vs serial"],
            run_scaling(),
            title="repro.exec scaling — fixed 8-job grid",
        )
    )
