"""Ablation — contention-management policy under the gating protocol.

The paper argues (Section VI) that its gating-aware staircase is the
right window policy, and that "a basic contention management scheme
like exponential polite back-off does incur significant performance
penalty for highly contentious applications".  This ablation runs the
highly-contended intruder with:

* no gating + immediate retry (the paper's baseline),
* no gating + exponential back-off (the classic software policy),
* gating with Eq. (8) windows (the paper's proposal),
* gating with exponential windows,

and reports time and energy for each.
"""

from __future__ import annotations

import dataclasses

from repro.config import GatingConfig, SystemConfig
from repro.harness.reporting import format_table
from repro.harness.runner import run_workload, workload

SPEC = workload("intruder", scale="small", seed=1)
PROCS = 8

VARIANTS = [
    ("baseline (immediate retry)", False, "gating-aware"),
    ("exponential back-off, no gating", False, "exponential"),
    ("clock gating + Eq.8 staircase", True, "gating-aware"),
    ("clock gating + exponential windows", True, "exponential"),
]


def run_variants():
    results = {}
    for label, gating_on, cm in VARIANTS:
        config = dataclasses.replace(
            SystemConfig(num_procs=PROCS, seed=1),
            gating=GatingConfig(enabled=gating_on, w0=8, contention_manager=cm),
        )
        results[label] = run_workload(SPEC, config)
    return results


def test_cm_policy_ablation(benchmark):
    results = benchmark.pedantic(run_variants, rounds=1, iterations=1)
    baseline = results["baseline (immediate retry)"]
    rows = []
    for label, result in results.items():
        rows.append(
            (
                label,
                result.parallel_time,
                round(baseline.parallel_time / result.parallel_time, 3),
                round(baseline.energy.total / result.energy.total, 3),
                result.aborts,
            )
        )
    print()
    print(
        format_table(
            ["policy", "N (cycles)", "speed-up vs base", "energy red.",
             "aborts"],
            rows,
            title=f"Ablation — CM policy (intruder, {PROCS} procs)",
        )
    )

    eq8 = results["clock gating + Eq.8 staircase"]
    # the paper's proposal must save energy over the baseline
    assert baseline.energy.total / eq8.energy.total > 1.1
    # and cut futile work
    assert eq8.aborts < baseline.aborts
