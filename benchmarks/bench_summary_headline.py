"""Section VIII headline numbers.

"Across these 3 applications and 4, 8 and 16 processors cases, we got
average speed-up of 4%.  Average reduction in the energy consumption is
19%.  Reduction in the average power dissipation is 13%."

We report the same three averages over the same grid, via the
``headline-averages`` extractor reading the shared result store.
Absolute percentages depend on the substrate (our simulator vs the
authors' modified M5); the asserted reproduction claims are
directional: gating saves energy on average, average power drops, and
performance does not degrade on average.
"""

from __future__ import annotations

from repro.harness.reporting import format_table

PAPER_HEADLINE = {
    "average_speedup_pct": 4.0,
    "average_energy_reduction_pct": 19.0,
    "average_power_reduction_pct": 13.0,
}


def test_headline_averages(benchmark, fig_builder):
    headline = benchmark(fig_builder.data, "headline")
    rows = [
        ("average speed-up", f"{headline['average_speedup_pct']:.1f}%",
         f"{PAPER_HEADLINE['average_speedup_pct']:.0f}%"),
        ("average energy reduction",
         f"{headline['average_energy_reduction_pct']:.1f}%",
         f"{PAPER_HEADLINE['average_energy_reduction_pct']:.0f}%"),
        ("average power reduction",
         f"{headline['average_power_reduction_pct']:.1f}%",
         f"{PAPER_HEADLINE['average_power_reduction_pct']:.0f}%"),
    ]
    print()
    print(format_table(["metric", "measured", "paper"], rows,
                       title="Section VIII headline averages "
                             "(3 apps x {4,8,16} procs)"))

    assert headline["points"] == 9.0
    # directional reproduction claims
    assert headline["average_energy_reduction_pct"] > 5.0
    assert headline["average_power_reduction_pct"] > 0.0
    assert headline["average_speedup_pct"] > -2.0
