#!/usr/bin/env python
"""Regenerate the figure-pipeline golden fixtures.

Produces two committed artifacts (run from the repo root with
``PYTHONPATH=src python scripts/regen_fig_golden.py``):

* ``tests/data/figstore/results.jsonl`` — a small JSONL result store
  covering every registered figure's suite at the golden grid below
  (tiny scale, the paper's three apps, 2/4 processors, W0 ∈ {2, 8});
* ``tests/data/figures_golden/<name>.json`` — the figure artifacts
  built from that store, with ``provenance.git_sha`` nulled so the
  bytes are commit-independent.

``tests/test_figures.py`` rebuilds every figure from the committed
store (asserting ZERO residual simulations) and compares the artifacts
byte-for-byte.  Regenerate ONLY when simulation semantics, the exec
schema, an extractor version, or the golden grid legitimately change —
a diff in these files is a behaviour change and must be explained in
the PR.
"""

from __future__ import annotations

import json
import os
import shutil
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.figures import FigureBuilder, FigureParams  # noqa: E402

#: the golden grid — mirrored by tests/test_figures.py
GOLDEN_PARAMS = FigureParams(
    scale="tiny", seed=0, procs=(2, 4), w0=8, w0_values=(2, 8)
)

STORE_DIR = REPO / "tests" / "data" / "figstore"
GOLDEN_DIR = REPO / "tests" / "data" / "figures_golden"
BENCH_FIXTURE = REPO / "tests" / "data" / "bench_series"


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    # perf-trend reads BENCH_*.json; the goldens are pinned to the
    # committed fixture series (mirrors tests/test_figures.py) so new
    # repo-root bench files don't churn them
    os.environ["REPRO_BENCH_DIR"] = str(BENCH_FIXTURE)

    # Reuse the committed store by default: the goldens then regenerate
    # without re-simulating (and without churning the store file).
    # Pass --store when simulation semantics or the exec schema changed
    # and the store itself must be rebuilt.
    regen_store = "--store" in argv
    targets = [GOLDEN_DIR] + ([STORE_DIR] if regen_store else [])
    for path in targets:
        if path.exists():
            shutil.rmtree(path)
    builder = FigureBuilder(
        store=STORE_DIR, out_dir=GOLDEN_DIR, params=GOLDEN_PARAMS, jobs=0
    )
    report = builder.build()
    print(report.summary())

    # Null the commit hash: goldens must not change on every commit.
    for artifact in report.artifacts:
        payload = json.loads(artifact.path.read_text(encoding="utf-8"))
        payload["provenance"]["git_sha"] = None
        artifact.path.write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
    # The lock sidecar is a runtime artifact, not part of the fixture.
    lock = STORE_DIR / "results.jsonl.lock"
    if lock.exists():
        lock.unlink()
    print(f"store:   {STORE_DIR} ({len(builder.store)} entries)")
    print(f"goldens: {GOLDEN_DIR} ({len(report.artifacts)} artifacts)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
