#!/usr/bin/env bash
# End-to-end smoke: one W0 sweep through the parallel executor with the
# result cache, run twice — the second run must perform ZERO simulation
# re-executions (the ISSUE acceptance criterion), and exec-status must
# see the cached entries.  Run from the repo root (or via `make smoke`).
set -euo pipefail

export PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH}
CACHE_DIR=${SMOKE_CACHE_DIR:-.smoke-cache}
SWEEP=(sweep counter --scale tiny --procs 2 --w0-values 2 8
       --jobs 2 --cache-dir "$CACHE_DIR" --progress)

rm -rf "$CACHE_DIR"

echo "== smoke: cold sweep (parallel, populating cache) =="
cold=$(python -m repro "${SWEEP[@]}" 2>cold.err)
cat cold.err
grep -q "executed 3 of 3 submitted" cold.err  # 1 shared baseline + 2 gated runs

echo "== smoke: warm sweep (must be pure cache hits) =="
warm=$(python -m repro "${SWEEP[@]}" 2>warm.err)
cat warm.err
grep -q "executed 0 of 3 submitted" warm.err
grep -q "3 cache hit(s)" warm.err

[ "$cold" = "$warm" ] || { echo "smoke FAILED: cached sweep output differs"; exit 1; }

echo "== smoke: exec-status =="
status=$(python -m repro exec-status --cache-dir "$CACHE_DIR")
echo "$status"
echo "$status" | grep -q "3 entries"

rm -f cold.err warm.err
rm -rf "$CACHE_DIR"
echo "smoke OK: parallel sweep cached end-to-end, zero re-executions"
