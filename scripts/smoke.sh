#!/usr/bin/env bash
# End-to-end smoke: one W0 sweep AND one named scenario suite through
# the parallel executor with the result cache, each run twice — the
# second pass must perform ZERO simulation re-executions (the ISSUE
# acceptance criteria), and exec-status must see the cached entries.
# Run from the repo root (or via `make smoke`).
set -euo pipefail

export PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH}
CACHE_DIR=${SMOKE_CACHE_DIR:-.smoke-cache}
SWEEP=(sweep counter --scale tiny --procs 2 --w0-values 2 8
       --jobs 2 --cache-dir "$CACHE_DIR" --progress)

rm -rf "$CACHE_DIR"

echo "== smoke: static analysis (repro check) =="
python -m repro check src tests scripts

echo "== smoke: cold sweep (parallel, populating cache) =="
cold=$(python -m repro "${SWEEP[@]}" 2>cold.err)
cat cold.err
grep -q "executed 3 of 3 submitted" cold.err  # 1 shared baseline + 2 gated runs

echo "== smoke: warm sweep (must be pure cache hits) =="
warm=$(python -m repro "${SWEEP[@]}" 2>warm.err)
cat warm.err
grep -q "executed 0 of 3 submitted" warm.err
grep -q "3 cache hit(s)" warm.err

[ "$cold" = "$warm" ] || { echo "smoke FAILED: cached sweep output differs"; exit 1; }

echo "== smoke: exec-status =="
status=$(python -m repro exec-status --cache-dir "$CACHE_DIR")
echo "$status"
echo "$status" | grep -q "3 entries"

echo "== smoke: named suite, cold (expand -> exec cache) =="
SUITE=(suite run --suite smoke --jobs 2 --cache-dir "$CACHE_DIR/suite"
       --progress)
suite_cold=$(python -m repro "${SUITE[@]}" 2>suite_cold.err)
cat suite_cold.err
grep -q "executed 3 of 4 submitted" suite_cold.err  # 4 scenarios, 1 deduplicated

echo "== smoke: named suite, warm (must be pure cache hits) =="
suite_warm=$(python -m repro "${SUITE[@]}" 2>suite_warm.err)
cat suite_warm.err
grep -q "executed 0 of 4 submitted" suite_warm.err
grep -q "3 cache hit(s)" suite_warm.err

[ "$suite_cold" = "$suite_warm" ] || {
  echo "smoke FAILED: cached suite output differs"; exit 1; }

rm -f cold.err warm.err suite_cold.err suite_warm.err
rm -rf "$CACHE_DIR"
echo "smoke OK: sweep + suite cached end-to-end, zero re-executions"

echo "== smoke: replicate packs vs per-process (store digest identity) =="
# A seed family (same spec, four seeds) through the pool executor with
# replicate packing on and off: the two result stores must hold exactly
# the same digest-keyed records.
PACK_SUITE=$(mktemp /tmp/smoke_packs_XXXX.json)
cat > "$PACK_SUITE" <<'JSON'
{
  "name": "smoke-packs",
  "description": "seed replicates for the pack identity check",
  "base": {"workload": "counter", "scale": "tiny", "threads": 2},
  "axes": [["seed", [1, 2, 3, 4]]]
}
JSON
PACKS_ON_DIR=${SMOKE_CACHE_DIR:-.smoke-cache}-packs-on
PACKS_OFF_DIR=${SMOKE_CACHE_DIR:-.smoke-cache}-packs-off
rm -rf "$PACKS_ON_DIR" "$PACKS_OFF_DIR"
python -m repro suite run --file "$PACK_SUITE" --jobs 2 \
  --cache-dir "$PACKS_ON_DIR" >/dev/null
python -m repro suite run --file "$PACK_SUITE" --jobs 2 --no-packs \
  --cache-dir "$PACKS_OFF_DIR" >/dev/null
on_digests=$(python -m repro exec-status --cache-dir "$PACKS_ON_DIR" --digests)
off_digests=$(python -m repro exec-status --cache-dir "$PACKS_OFF_DIR" --digests)
[ -n "$on_digests" ] || { echo "smoke FAILED: pack run stored nothing"; exit 1; }
[ "$on_digests" = "$off_digests" ] || {
  echo "smoke FAILED: pack-on and pack-off stores diverge"; exit 1; }
echo "smoke OK: replicate packs store digest-identical results"

echo "== smoke: machine reset-reuse vs rebuild (store digest identity) =="
# The same seed family with the pack warm path disabled: every member
# rebuilds its machine from scratch.  Stores must match the reset-reuse
# run digest for digest.
RESET_OFF_DIR=${SMOKE_CACHE_DIR:-.smoke-cache}-reset-off
rm -rf "$RESET_OFF_DIR"
REPRO_NO_RESET=1 python -m repro suite run --file "$PACK_SUITE" --jobs 2 \
  --cache-dir "$RESET_OFF_DIR" >/dev/null
reset_off_digests=$(python -m repro exec-status --cache-dir "$RESET_OFF_DIR" --digests)
[ "$on_digests" = "$reset_off_digests" ] || {
  echo "smoke FAILED: reset-reuse and rebuild stores diverge"; exit 1; }
rm -f "$PACK_SUITE"
rm -rf "$PACKS_ON_DIR" "$PACKS_OFF_DIR" "$RESET_OFF_DIR"
echo "smoke OK: machine reset-reuse stores digest-identical results"

echo "== smoke: incremental figure pipeline =="
bash "$(dirname "$0")/smoke_figures.sh"

echo "== smoke: observability (manifests + obs-on/off store identity) =="
bash "$(dirname "$0")/smoke_obs.sh"
