#!/usr/bin/env bash
# Sharded end-to-end smoke, for BOTH store backends (jsonl + sqlite):
# run the smoke suite unsharded, then as two digest-partitioned shards
# into separate stores, merge the shard stores, and require
#   1. the merged store's digest set == the unsharded store's, and
#   2. `suite plan` over the merged store reports ZERO misses
# (the ISSUE acceptance criteria).  Run from the repo root (or via
# `make smoke-sharded`).
set -euo pipefail

export PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH}
ROOT=${SMOKE_SHARD_DIR:-.smoke-shard}
rm -rf "$ROOT"

for STORE in jsonl sqlite; do
  BASE="$ROOT/$STORE"

  echo "== sharded smoke [$STORE]: unsharded reference run =="
  python -m repro suite run --suite micro-contention --scale tiny --jobs 2 \
      --store "$STORE" --cache-dir "$BASE/full" >/dev/null

  echo "== sharded smoke [$STORE]: shard 1/2 + shard 2/2 =="
  python -m repro suite run --suite micro-contention --scale tiny --shard 1/2 \
      --store "$STORE" --cache-dir "$BASE/shard1" >/dev/null
  python -m repro suite run --suite micro-contention --scale tiny --shard 2/2 \
      --store "$STORE" --cache-dir "$BASE/shard2" >/dev/null

  echo "== sharded smoke [$STORE]: merge shard stores =="
  python -m repro suite merge "$BASE/shard1" "$BASE/shard2" \
      --into "$BASE/merged" --store "$STORE"

  full=$(python -m repro exec-status --cache-dir "$BASE/full" --digests)
  merged=$(python -m repro exec-status --cache-dir "$BASE/merged" --digests)
  [ -n "$full" ] || { echo "sharded smoke FAILED [$STORE]: empty reference store"; exit 1; }
  [ "$full" = "$merged" ] || {
    echo "sharded smoke FAILED [$STORE]: merged digest set differs from unsharded run"
    exit 1
  }
  echo "digest sets identical ($(echo "$full" | wc -l) entries)"

  echo "== sharded smoke [$STORE]: plan over the merged store =="
  plan=$(python -m repro suite plan --suite micro-contention --scale tiny \
      --store "$STORE" --cache-dir "$BASE/merged")
  echo "$plan"
  echo "$plan" | grep -q "0 miss(es)" || {
    echo "sharded smoke FAILED [$STORE]: plan reports residual misses"
    exit 1
  }
done

rm -rf "$ROOT"
echo "sharded smoke OK: shard+merge == unsharded, plan fully cached (jsonl + sqlite)"
