#!/usr/bin/env python
"""Regenerate the flush-heavy bit-identity golden fixture.

Produces ``tests/data/flush_golden.json`` (run from the repo root with
``python scripts/regen_flush_golden.py``): job digests and full
serialized results for the high-contention captures that stress the
directory commit-flush path — yada and labyrinth at 16 threads, gated
and ungated.  ``tests/test_determinism.py`` re-runs the same specs and
compares digests and results byte for byte.

Regenerate ONLY when simulation semantics or the exec schema
legitimately change — a diff in this file is a behaviour change and
must be explained in the PR.  Counters added after capture go in
``FLUSH_COUNTERS_ADDED_SINCE_GOLDEN`` instead of a regen.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.exec.executor import Executor  # noqa: E402
from repro.exec.serialize import result_to_dict  # noqa: E402
from repro.scenarios.runner import run_specs  # noqa: E402
from repro.scenarios.spec import ScenarioSpec  # noqa: E402

GOLDEN_PATH = REPO / "tests" / "data" / "flush_golden.json"

#: the golden grid — mirrored by tests/test_determinism.py
FLUSH_GOLDEN_SPECS = tuple(
    ScenarioSpec(
        workload=workload, scale="tiny", threads=16, seed=0, gating=gating
    )
    for workload in ("yada", "labyrinth")
    for gating in (False, True)
)


def main() -> int:
    entries = []
    results = run_specs(list(FLUSH_GOLDEN_SPECS), executor=Executor(jobs=1))
    for entry in results:
        entries.append(
            {
                "digest": entry.spec.to_job().digest,
                "spec": entry.spec.to_dict(),
                "result": result_to_dict(entry.result),
            }
        )
    payload = {
        "note": (
            "flush-heavy high-contention capture (directory commit path); "
            "see tests/test_determinism.py"
        ),
        "scale": "tiny",
        "seed": 0,
        "threads": 16,
        "entries": entries,
    }
    GOLDEN_PATH.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"wrote {GOLDEN_PATH} ({len(entries)} entries)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
