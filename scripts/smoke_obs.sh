#!/usr/bin/env bash
# Observability smoke: run one suite with observability ON and once
# with it OFF.  The result store must be digest-identical either way
# (obs never touches result bytes), the run manifest must account for
# every executed job, and every `repro obs` surface must work against
# the recorded run.  Run from the repo root (or via `make obs-smoke`).
# Set OBS_SMOKE_KEEP=1 to keep the obs directory (CI uploads it).
set -euo pipefail

export PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH}
ROOT=${OBS_SMOKE_DIR:-.smoke-obs}
OBS_DIR="$ROOT/obs"
SUITE=(suite run --suite smoke --scale tiny --jobs 2 --progress)

rm -rf "$ROOT"
mkdir -p "$ROOT"

echo "== obs smoke: observed suite run =="
python -m repro "${SUITE[@]}" --cache-dir "$ROOT/cache-on" \
  --obs-dir "$OBS_DIR" 2> "$ROOT/on.err"
cat "$ROOT/on.err"
grep -q "obs: run manifest" "$ROOT/on.err"

echo "== obs smoke: unobserved control run =="
python -m repro "${SUITE[@]}" --cache-dir "$ROOT/cache-off" 2>&1 | tail -2

echo "== obs smoke: stores digest-identical with obs on vs off =="
python -m repro exec-status --cache-dir "$ROOT/cache-on" --digests \
  > "$ROOT/digests-on"
python -m repro exec-status --cache-dir "$ROOT/cache-off" --digests \
  > "$ROOT/digests-off"
diff "$ROOT/digests-on" "$ROOT/digests-off"

echo "== obs smoke: manifest accounts for every executed job =="
python - "$OBS_DIR" <<'EOF'
import json
import sys
from pathlib import Path

obs_dir = Path(sys.argv[1])
(manifest_path,) = obs_dir.glob("run-*.manifest.json")
manifest = json.loads(manifest_path.read_text())
metrics = manifest["metrics"]
assert manifest["finished"], "manifest was not finalized"
assert metrics["jobs_executed"] > 0, metrics
by_name = manifest["record_counts"]["by_name"]
assert by_name.get("job", 0) == metrics["jobs_executed"], by_name
assert by_name.get("batch", 0) == metrics["batches"], by_name
(log_path,) = obs_dir.glob("run-*.jsonl")
records = [json.loads(line)
           for line in log_path.read_text().splitlines() if line]
assert records, "event log is empty"
print(f"manifest OK: {metrics['jobs_executed']} job span(s), "
      f"{len(records)} event-log record(s)")
EOF

echo "== obs smoke: obs CLI surfaces =="
python -m repro obs list --obs-dir "$OBS_DIR" | tee "$ROOT/list.out"
grep -q "finished" "$ROOT/list.out"
python -m repro obs summary --obs-dir "$OBS_DIR" --json \
  > "$ROOT/summary.json"
python - "$ROOT/summary.json" <<'EOF'
import json
import sys

summary = json.load(open(sys.argv[1]))
assert summary["kind"] == "obs-summary"
assert summary["totals"]["runs"] == 1, summary["totals"]
assert summary["totals"]["jobs_executed"] > 0, summary["totals"]
EOF
# grep from files, not pipes: `grep -q` exits on first match and the
# closed pipe would kill the CLI with BrokenPipeError
python -m repro obs show --obs-dir "$OBS_DIR" > "$ROOT/show.out"
grep -q "throughput" "$ROOT/show.out"
python -m repro obs tail --obs-dir "$OBS_DIR" -n 5 > "$ROOT/tail.out"
grep -q "span" "$ROOT/tail.out"

echo "== obs smoke: pack reuse counters reach the run manifest =="
# A seed family routes through execute_pack; its manifest must carry
# the pack warm-state counters (PR 10): members served by
# Machine.reset and by the shared prep cache.
PACK_SUITE="$ROOT/pack-suite.json"
cat > "$PACK_SUITE" <<'JSON'
{
  "name": "obs-smoke-packs",
  "description": "seed replicates for the pack counter check",
  "base": {"workload": "counter", "scale": "tiny", "threads": 2},
  "axes": [["seed", [1, 2, 3, 4]]]
}
JSON
python -m repro suite run --file "$PACK_SUITE" --jobs 2 \
  --cache-dir "$ROOT/cache-pack" --obs-dir "$ROOT/obs-pack" >/dev/null
python - "$ROOT/obs-pack" <<'EOF'
import json
import sys
from pathlib import Path

(manifest_path,) = Path(sys.argv[1]).glob("run-*.manifest.json")
counters = json.loads(manifest_path.read_text())["counters"]
resets = counters.get("pack.reset_reuses", 0)
prep = counters.get("pack.shared_prep_hits", 0)
assert resets > 0, f"no reset reuse recorded: {counters}"
assert prep > 0, f"no shared prep hit recorded: {counters}"
print(f"pack counters OK: reset_reuses={resets} shared_prep_hits={prep}")
EOF

if [ -n "${OBS_SMOKE_KEEP:-}" ]; then
  rm -rf "$ROOT/cache-on" "$ROOT/cache-off" "$ROOT/cache-pack"
  echo "keeping $OBS_DIR for artifact upload (OBS_SMOKE_KEEP set)"
else
  rm -rf "$ROOT"
fi
echo "obs smoke OK: manifest complete, stores identical with obs on/off"
