#!/usr/bin/env bash
# Incremental-figures smoke: build the full registered artifact set
# twice against ONE result store.  The second build must perform ZERO
# simulations and leave every figures/*.json byte-identical; a forced
# re-render must also reproduce identical bytes (deterministic
# extraction).  Run from the repo root (or via `make figures-smoke`).
set -euo pipefail

export PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH}
ROOT=${FIG_SMOKE_DIR:-.smoke-figures}
CACHE_DIR="$ROOT/store"
OUT_DIR="$ROOT/figures"
GRID=(--scale tiny --apps counter --grid 2 --w0 2 --w0-values 2 4)
BUILD=(figures build "${GRID[@]}" --jobs 2
       --cache-dir "$CACHE_DIR" --out-dir "$OUT_DIR")

# transcripts live inside $ROOT: gitignored, and cleaned even when an
# assertion below aborts the script before the trailing rm
rm -rf "$ROOT"
mkdir -p "$ROOT"

echo "== figures smoke: cold build (populates the store) =="
python -m repro "${BUILD[@]}" | tee "$ROOT/cold.out"
grep -q "simulated 3 residual job(s)" "$ROOT/cold.out"
grep -q "9 built" "$ROOT/cold.out"
for name in fig3 fig4 fig5 fig6 fig7 table1 table2 headline perf-trend; do
  [ -f "$OUT_DIR/$name.json" ] || {
    echo "figures smoke FAILED: missing $name.json"; exit 1; }
done
cp -r "$OUT_DIR" "$ROOT/first"

echo "== figures smoke: warm build (0 simulations, untouched bytes) =="
python -m repro "${BUILD[@]}" | tee "$ROOT/warm.out"
grep -q "simulated 0 residual job(s)" "$ROOT/warm.out"
grep -q "9 fresh" "$ROOT/warm.out"
diff -r "$OUT_DIR" "$ROOT/first"

echo "== figures smoke: forced re-render reproduces identical bytes =="
python -m repro "${BUILD[@]}" --force | tee "$ROOT/force.out"
grep -q "simulated 0 residual job(s)" "$ROOT/force.out"
grep -q "9 rebuilt" "$ROOT/force.out"
diff -r "$OUT_DIR" "$ROOT/first"

echo "== figures smoke: status agrees everything is fresh =="
python -m repro figures status "${GRID[@]}" \
  --cache-dir "$CACHE_DIR" --out-dir "$OUT_DIR" | tee "$ROOT/status.out"
grep -q "0 artifact(s) need building" "$ROOT/status.out"

rm -rf "$ROOT"
echo "figures smoke OK: incremental rebuild performed zero simulations"
