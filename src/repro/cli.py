"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``run``         one workload on one configuration, with a full report
``compare``     paired with/without-gating comparison (Figs. 4–6 metrics)
``evaluate``    the paper's evaluation grid + Section VIII averages
``sweep``       Fig. 7 W0 sensitivity for one workload
``suite``       declarative scenario suites: ``list``, ``describe``,
                ``run`` (optionally ``--shard K/N``), ``plan``
                (cache-aware hit/miss map, no simulation), ``merge``
                (fold shard result stores into one)
``figures``     declarative paper artifacts: ``list``, ``status``,
                ``build`` — plan each figure's suite against the result
                store, simulate only residual misses, re-render only
                stale ``figures/*.json``
``bench``       hot-path benchmarks with ``BENCH_*.json`` output; with
                ``--compare [BASELINE.json]`` a CI regression gate
                (bare ``--compare`` gates against the newest committed
                ``BENCH_*.json`` session, baseline as fallback)
``cache-power`` the Fig. 3 TCC-cache power analysis
``exec-status`` inspect (or ``--prune``, optionally ``--older-than`` /
                ``--label``) a result-cache directory; ``--json`` for
                the full machine-readable statistics
``obs``         observability runs (docs/observability.md): ``list``,
                ``show``, ``summary``, ``tail`` over the run manifests
                and event logs written under ``--obs-dir``
``list``        available workloads and contention managers

Execution control (``compare``, ``evaluate``, ``sweep``, ``suite run``)
-----------------------------------------------------------------------
``--jobs N``       fan simulation runs across N worker processes
                   (``0`` = one per CPU; default 1 = serial)
``--cache-dir P``  content-addressed result cache: re-running an
                   unchanged figure or sweep performs zero simulations
``--store B``      cache backend: ``jsonl``, ``sqlite``, or ``auto``
                   (detect from the cache directory; default)
``--no-cache``     ignore ``--cache-dir`` for this invocation
``--no-packs``     disable replicate packing on the pool path (also
                   ``REPRO_NO_PACKS=1``); results are bit-identical
                   with or without packs
``--progress``     per-job status lines + batch speed-up on stderr
``--obs-dir D``    structured tracing: spans/events + a run manifest
                   under D (``REPRO_OBS=1`` enables it by environment)
``--profile``      wrap each executed job in cProfile and merge the
                   hot spots into the run manifest
"""

from __future__ import annotations

import argparse
import dataclasses
import sys
from typing import Sequence

from .analysis.runreport import run_report
from .cm.registry import available_cms
from .config import GatingConfig, SystemConfig
from .errors import ExecutionError
from .exec.backends import BACKEND_CHOICES
from .exec.executor import BatchExecutionError, Executor
from .exec.progress import ConsoleProgress
from .exec.store import ResultStore
from .harness.compare import compare_gating
from .harness.experiments import EvaluationSuite
from .harness.reporting import format_matrix, format_table
from .harness.runner import run_workload, workload
from .harness.sweep import DEFAULT_W0_VALUES, w0_sensitivity
from .power.cacti import FIG3_CACHE_SIZES_KB, tcc_cache_power_curve, tcc_total_power_factor
from .power.report import format_energy_report
from .scenarios.builtin import available_suites, get_suite, suite_help
from .scenarios.runner import Shard, SuiteRun, plan_suite, run_suite
from .scenarios.suite import load_suite_file
from .sim.trace import TraceRecorder
from .workloads.registry import available_workloads, workload_schema

__all__ = ["main", "build_parser"]


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--procs", type=int, default=4,
                        help="number of processors (default 4)")
    parser.add_argument("--scale", default="small",
                        choices=("tiny", "small", "medium"))
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--w0", type=int, default=8,
                        help="gating-window constant W0 (default 8)")
    parser.add_argument("--cm", default="gating-aware",
                        help="contention manager (see `list`)")


def _add_exec(parser: argparse.ArgumentParser) -> None:
    """Parallel-execution and result-cache flags (repro.exec)."""
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="worker processes (0 = one per CPU; default 1)")
    parser.add_argument("--cache-dir", metavar="PATH",
                        help="content-addressed result cache directory")
    _add_store(parser)
    parser.add_argument("--no-cache", action="store_true",
                        help="ignore --cache-dir for this invocation")
    parser.add_argument("--no-packs", action="store_true",
                        help="disable replicate packing on the pool path "
                             "(one dispatch per job; results are identical "
                             "either way; REPRO_NO_PACKS=1 by environment)")
    parser.add_argument("--progress", action="store_true",
                        help="per-job status and batch speed-up on stderr")
    _add_obs(parser)


def _add_obs(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--obs-dir", metavar="DIR",
                        help="record structured spans/events and a run "
                             "manifest under DIR (REPRO_OBS=1 enables "
                             "this by environment; see docs/observability.md)")
    parser.add_argument("--profile", action="store_true",
                        help="wrap each executed job in cProfile and merge "
                             "the hot spots into the run manifest "
                             "(implies observability)")


def _add_store(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--store", choices=BACKEND_CHOICES, default="auto",
                        help="result-store backend (auto = detect from the "
                             "cache directory; new directories get jsonl)")


def _shard_arg(text: str) -> Shard:
    try:
        return Shard.parse(text)
    except ExecutionError as exc:
        raise argparse.ArgumentTypeError(str(exc)) from None


def _config(args: argparse.Namespace, gating_enabled: bool = True) -> SystemConfig:
    return dataclasses.replace(
        SystemConfig(num_procs=args.procs, seed=args.seed),
        gating=GatingConfig(
            enabled=gating_enabled, w0=args.w0, contention_manager=args.cm
        ),
    )


def _executor(args: argparse.Namespace) -> Executor:
    store = None
    if args.cache_dir and not args.no_cache:
        store = ResultStore(args.cache_dir, backend=args.store)
    progress = ConsoleProgress() if args.progress else None
    return Executor(jobs=args.jobs, store=store, progress=progress,
                    profile=getattr(args, "profile", False),
                    packs=False if getattr(args, "no_packs", False) else None)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Clock Gate on Abort (IPPS 2009) — reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_run = sub.add_parser("run", help="run one workload, print a report")
    p_run.add_argument("workload")
    _add_common(p_run)
    p_run.add_argument("--no-gating", action="store_true")
    p_run.add_argument("--check-serial", action="store_true",
                       help="verify TID-order serializability (slower)")
    p_run.add_argument("--csv-timelines", metavar="PATH",
                       help="export power-state timelines as CSV")

    p_cmp = sub.add_parser("compare", help="paired gated/ungated comparison")
    p_cmp.add_argument("workload")
    _add_common(p_cmp)
    _add_exec(p_cmp)

    p_eval = sub.add_parser("evaluate", help="regenerate Figs. 4-6 + averages")
    _add_common(p_eval)
    _add_exec(p_eval)
    p_eval.add_argument("--grid", type=int, nargs="+", default=[4, 8, 16],
                        help="processor counts (default 4 8 16)")

    p_sweep = sub.add_parser("sweep", help="Fig. 7 W0 sensitivity")
    p_sweep.add_argument("workload")
    _add_common(p_sweep)
    _add_exec(p_sweep)
    p_sweep.add_argument("--w0-values", type=int, nargs="+",
                         default=list(DEFAULT_W0_VALUES))

    p_suite = sub.add_parser(
        "suite", help="declarative scenario suites (list/describe/run)"
    )
    suite_sub = p_suite.add_subparsers(dest="action", required=True)
    suite_sub.add_parser("list", help="named suites with sizes")
    p_sdesc = suite_sub.add_parser(
        "describe", help="axes, expansion and per-scenario digests"
    )
    sdesc_src = p_sdesc.add_mutually_exclusive_group(required=True)
    sdesc_src.add_argument("--suite", metavar="NAME")
    sdesc_src.add_argument("--file", metavar="PATH",
                           help="user-defined ScenarioSuite JSON file")
    p_sdesc.add_argument("--scale", choices=("tiny", "small", "medium"),
                         help="override the suite's default scale")
    p_sdesc.add_argument("--seed", type=int, default=None,
                         help="override the suite's seed (default: the "
                              "suite's own; 0 for named suites)")
    p_sdesc.add_argument("--json", action="store_true",
                         help="emit the expanded scenario specs as JSON")
    p_srun = suite_sub.add_parser(
        "run", help="expand a suite and execute it through the exec cache"
    )
    srun_src = p_srun.add_mutually_exclusive_group(required=True)
    srun_src.add_argument("--suite", metavar="NAME")
    srun_src.add_argument("--file", metavar="PATH",
                          help="user-defined ScenarioSuite JSON file "
                               "(see docs/scenarios.md)")
    p_srun.add_argument("--scale", choices=("tiny", "small", "medium"),
                        help="override the suite's default scale")
    p_srun.add_argument("--seed", type=int, default=None,
                        help="override the suite's seed (default: the "
                             "suite's own; 0 for named suites)")
    p_srun.add_argument("--shard", type=_shard_arg, metavar="K/N",
                        help="run only shard K of N: the suite's deduped "
                             "job list is partitioned deterministically "
                             "by job digest (merge stores afterwards "
                             "with `suite merge`)")
    _add_exec(p_srun)

    p_splan = suite_sub.add_parser(
        "plan", help="cache-aware search: hit/miss per unique job digest, "
                     "no simulation"
    )
    splan_src = p_splan.add_mutually_exclusive_group(required=True)
    splan_src.add_argument("--suite", metavar="NAME")
    splan_src.add_argument("--file", metavar="PATH",
                           help="user-defined suite JSON file")
    p_splan.add_argument("--scale", choices=("tiny", "small", "medium"),
                         help="override the suite's default scale")
    p_splan.add_argument("--seed", type=int, default=None,
                         help="override the suite's seed (default: the "
                              "suite's own; 0 for named suites)")
    p_splan.add_argument("--shard", type=_shard_arg, metavar="K/N",
                         help="plan only shard K of N of the job list")
    p_splan.add_argument("--cache-dir", metavar="PATH",
                         help="result store to probe (omitted or missing: "
                              "every job is a miss)")
    _add_store(p_splan)
    p_splan.add_argument("--json", action="store_true",
                         help="emit the plan as JSON")
    p_splan.add_argument("--out", metavar="PATH",
                         help="write the residual misses as a dispatchable "
                              "spec-list suite JSON file")

    p_smerge = suite_sub.add_parser(
        "merge", help="fold shard result stores into one directory"
    )
    p_smerge.add_argument("sources", nargs="+", metavar="DIR",
                          help="source cache directories (backend "
                               "auto-detected per directory)")
    p_smerge.add_argument("--into", required=True, metavar="DIR",
                          help="destination cache directory (created if "
                               "missing)")
    _add_store(p_smerge)

    p_fig = sub.add_parser(
        "figures",
        help="declarative paper artifacts: incremental, store-driven "
             "regeneration (list/status/build)",
    )
    fig_sub = p_fig.add_subparsers(dest="action", required=True)
    fig_sub.add_parser("list", help="registered figures and tables")
    p_fstat = fig_sub.add_parser(
        "status", help="artifact freshness + store coverage, no simulation"
    )
    p_fbuild = fig_sub.add_parser(
        "build", help="plan suites against the store, simulate only the "
                      "residual misses, re-render stale artifacts"
    )
    for sub_parser in (p_fstat, p_fbuild):
        sub_parser.add_argument("--only", action="append", metavar="NAME",
                                help="restrict to one figure (repeatable)")
        sub_parser.add_argument("--out-dir", default="figures", metavar="DIR",
                                help="artifact directory (default figures/)")
        sub_parser.add_argument("--cache-dir", default=".repro-cache",
                                metavar="PATH",
                                help="result store feeding the figures "
                                     "(default .repro-cache)")
        _add_store(sub_parser)
        sub_parser.add_argument("--scale", default=None,
                                choices=("tiny", "small", "medium"))
        sub_parser.add_argument("--seed", type=int, default=None)
        sub_parser.add_argument("--apps", nargs="+", metavar="APP",
                                help="grid applications (default: the "
                                     "paper's three)")
        sub_parser.add_argument("--grid", type=int, nargs="+", metavar="N",
                                help="processor counts (default 4 8 16)")
        sub_parser.add_argument("--w0", type=int, default=None,
                                help="evaluation-grid W0 (default 8)")
        sub_parser.add_argument("--w0-values", type=int, nargs="+",
                                metavar="W0",
                                help="Fig. 7 sweep values (default "
                                     "1 2 4 8 16 32)")
    p_fbuild.add_argument("--force", action="store_true",
                          help="re-extract and rewrite fresh artifacts too")
    p_fbuild.add_argument("--show", action="store_true",
                          help="print each artifact as a paper-style text "
                               "table after building")
    p_fbuild.add_argument("--csv", action="store_true",
                          help="also export <name>.csv per artifact")
    p_fbuild.add_argument("--png", action="store_true",
                          help="also plot <name>.png (needs matplotlib)")
    p_fbuild.add_argument("--jobs", type=int, default=1, metavar="N",
                          help="worker processes for residual simulations "
                               "(0 = one per CPU; default 1)")
    p_fbuild.add_argument("--no-cache", action="store_true",
                          help="use a throw-away store: simulate "
                               "everything, persist nothing")
    p_fbuild.add_argument("--progress", action="store_true",
                          help="per-job status and batch speed-up on stderr")
    p_fbuild.add_argument("--shard", type=_shard_arg, metavar="K/N",
                          help="simulate only shard K of N of the residual "
                               "job list (merge stores, then re-build to "
                               "render)")
    _add_obs(p_fbuild)

    p_bench = sub.add_parser(
        "bench", help="micro/meso performance benchmarks (repro.bench)"
    )
    p_bench.add_argument("--bench", action="append", metavar="NAME",
                         help="benchmark to run (repeatable; default: all)")
    p_bench.add_argument("--list", action="store_true", dest="list_benches",
                         help="list available benchmarks and exit")
    p_bench.add_argument("--check", action="store_true",
                         help="CI smoke mode: tiny work sizes, one pass")
    p_bench.add_argument("--repeats", type=int, metavar="N",
                         help="timed repetitions per benchmark")
    p_bench.add_argument("--warmup", type=int, metavar="N",
                         help="untimed warmup passes per benchmark")
    p_bench.add_argument("--label", default="",
                         help="session label recorded in the JSON payload")
    p_bench.add_argument("--out", metavar="PATH",
                         help="write the machine-readable report here "
                              "(e.g. BENCH_local.json)")
    p_bench.add_argument("--baseline", metavar="PATH",
                         help="earlier bench JSON to compare against; the "
                              "report becomes a before/after comparison")
    p_bench.add_argument("--compare", metavar="PATH", nargs="?",
                         const="auto", default=None,
                         help="regression gate: compare against a committed "
                              "baseline bench JSON and exit non-zero when "
                              "any benchmark regresses more than "
                              "--max-regression percent; without PATH, the "
                              "newest committed BENCH_*.json session "
                              "matching the run's --check mode is used "
                              "(BENCH_baseline.json as the fallback)")
    p_bench.add_argument("--max-regression", type=float, default=25.0,
                         metavar="PCT",
                         help="allowed per-benchmark throughput drop for "
                              "--compare (default 25)")

    sub.add_parser("cache-power", help="Fig. 3 TCC-cache power analysis")

    p_status = sub.add_parser(
        "exec-status", help="inspect a repro.exec result cache"
    )
    p_status.add_argument("--cache-dir", required=True, metavar="PATH")
    _add_store(p_status)
    p_status.add_argument("--verbose", action="store_true",
                          help="list every cached run")
    p_status.add_argument("--digests", action="store_true",
                          help="print only the full digest of every entry, "
                               "sorted (for scripting, e.g. comparing a "
                               "merged store against an unsharded run)")
    p_status.add_argument("--prune", action="store_true",
                          help="compact tombstoned/corrupt/stale records "
                               "out of the store")
    p_status.add_argument("--older-than", type=float, default=None,
                          metavar="DAYS",
                          help="with --prune: also expire records written "
                               "more than DAYS days ago (age-based GC)")
    p_status.add_argument("--label", default=None, metavar="TEXT",
                          help="with --prune: restrict expiry to records "
                               "whose label contains TEXT")
    p_status.add_argument("--json", action="store_true",
                          help="emit the full store statistics (backend, "
                               "session hits/misses, skipped records, "
                               "per-workload entry counts) as JSON")

    p_obs = sub.add_parser(
        "obs", help="inspect observability runs: manifests + event logs "
                    "(see docs/observability.md)"
    )
    obs_sub = p_obs.add_subparsers(dest="action", required=True)
    p_olist = obs_sub.add_parser("list", help="recorded runs, oldest first")
    p_oshow = obs_sub.add_parser(
        "show", help="one run's manifest (metrics, batches, failures)"
    )
    p_osum = obs_sub.add_parser(
        "summary", help="aggregate metrics across every recorded run"
    )
    p_otail = obs_sub.add_parser(
        "tail", help="the last N records of a run's event log"
    )
    for sub_parser in (p_olist, p_oshow, p_osum, p_otail):
        sub_parser.add_argument("--obs-dir", default=None, metavar="DIR",
                                help="observability directory (default: "
                                     "$REPRO_OBS_DIR or obs/)")
        sub_parser.add_argument("--json", action="store_true",
                                help="emit machine-readable JSON")
    for sub_parser in (p_oshow, p_otail):
        sub_parser.add_argument("run", nargs="?", default=None,
                                help="run id or unique prefix "
                                     "(default: latest)")
    p_oshow.add_argument("--failures", type=int, default=5, metavar="N",
                         help="failure details to print (default 5)")
    p_otail.add_argument("-n", "--lines", type=int, default=20, metavar="N",
                         help="records to show (default 20)")

    p_check = sub.add_parser(
        "check", help="determinism-invariant lint over the source tree "
                      "(see docs/static-analysis.md)"
    )
    p_check.add_argument(
        "paths", nargs="*", default=["src", "tests", "scripts"],
        metavar="PATH", help="files/directories to check "
                             "(default: src tests scripts)")
    p_check.add_argument("--json", action="store_true",
                         help="emit the machine-readable JSON report")
    p_check.add_argument("--select", default=None, metavar="IDS",
                         help="comma-separated rule ids/names to run "
                              "(default: all)")
    p_check.add_argument("--ignore", default=None, metavar="IDS",
                         help="comma-separated rule ids/names to skip")
    p_check.add_argument("--list-rules", action="store_true",
                         help="print the registered rule catalog and exit")

    sub.add_parser("list", help="available workloads and policies")
    return parser


def _cmd_run(args: argparse.Namespace) -> int:
    trace = TraceRecorder(kinds=("tx", "gate"))
    config = _config(args, gating_enabled=not args.no_gating)
    result = run_workload(
        workload(args.workload, scale=args.scale, seed=args.seed),
        config,
        trace=trace,
        check_serial=args.check_serial,
    )
    print(run_report(result, trace))
    if args.check_serial:
        print("  serializability: OK (TID-order replay verified)")
    if args.csv_timelines:
        from .analysis.timelines import timelines_to_csv

        with open(args.csv_timelines, "w") as fh:
            fh.write(timelines_to_csv(result.machine_result.timelines))
        print(f"  timelines written to {args.csv_timelines}")
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    comparison = compare_gating(
        workload(args.workload, scale=args.scale, seed=args.seed),
        _config(args),
        executor=_executor(args),
    )
    print(format_energy_report(comparison.energy_report()))
    print()
    print(comparison.summary())
    return 0


def _cmd_evaluate(args: argparse.Namespace) -> int:
    suite = EvaluationSuite(
        scale=args.scale, seed=args.seed, procs=tuple(args.grid), w0=args.w0,
        executor=_executor(args),
    )
    suite.run_all()
    print(format_table(["app", "procs", "N1", "N2", "speed-up"],
                       suite.fig4_rows(), title="Fig. 4 — execution time"))
    print()
    print(format_table(
        ["app", "procs", "Eug", "Eg", "energy reduction"],
        [(a, p, round(eu, 1), round(eg, 1), r)
         for a, p, eu, eg, r in suite.fig5_rows()],
        title="Fig. 5 — energy",
    ))
    print()
    print(format_table(["app", "procs", "avgP ug", "avgP g", "power red."],
                       suite.fig6_rows(), title="Fig. 6 — average power"))
    headline = suite.headline()
    print()
    print(f"averages over {int(headline['points'])} points: "
          f"speed-up {headline['average_speedup_pct']:+.1f}%, "
          f"energy reduction {headline['average_energy_reduction_pct']:.1f}%, "
          f"power reduction {headline['average_power_reduction_pct']:.1f}%")
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    curves = w0_sensitivity(
        workload(args.workload, scale=args.scale, seed=args.seed),
        _config(args),
        w0_values=tuple(args.w0_values),
        executor=_executor(args),
    )
    rows = [
        (w0, point["speedup"], point["energy_reduction"],
         point["power_reduction"])
        for w0, point in curves.items()
    ]
    print(format_table(
        ["W0", "speed-up", "energy red.", "power red."],
        rows,
        title=f"Fig. 7 — {args.workload} @ {args.procs} procs",
    ))
    return 0


def _resolve_suite(args: argparse.Namespace):
    """A suite either by registered name or from a user JSON file.

    For file-based suites, ``--scale`` and ``--seed`` (when given —
    ``--seed 0`` counts) rewrite the base spec; axes that sweep those
    fields still win at expansion.
    """
    if getattr(args, "file", None):
        loaded = load_suite_file(args.file)
        updates = {}
        if args.scale:
            updates["scale"] = args.scale
        if args.seed is not None:
            updates["seed"] = args.seed
        if updates:
            loaded = loaded.with_base_updates(**updates)
        return loaded
    return get_suite(
        args.suite, scale=args.scale,
        seed=args.seed if args.seed is not None else 0,
    )


def _cmd_suite(args: argparse.Namespace) -> int:
    if args.action == "list":
        print(format_table(
            ["suite", "scenarios", "description"],
            suite_help(),
            title="Named scenario suites",
        ))
        return 0
    if args.action == "merge":
        return _suite_merge(args)

    named = _resolve_suite(args)
    if args.action == "describe":
        specs = named.expand()
        if args.json:
            import json as _json

            print(_json.dumps([spec.to_dict() for spec in specs], indent=2))
            return 0
        print(named.describe())
        unique_jobs = len({spec.to_job().digest for spec in specs})
        print(f"  unique jobs after dedup: {unique_jobs}")
        for spec in specs:
            print(f"  {spec.digest[:12]}  {spec.label()}")
        return 0
    if args.action == "plan":
        return _suite_plan(args, named)

    # action == "run"
    outcome = run_suite(named, executor=_executor(args), shard=args.shard)
    shard_note = f" [shard {args.shard}]" if args.shard is not None else ""
    print(format_table(
        list(SuiteRun.ROW_HEADERS),
        outcome.rows(),
        title=f"suite {named.name}{shard_note} — {len(outcome)} scenario(s)",
    ))
    paired = outcome.paired_rows()
    if paired:
        print()
        print(format_table(
            list(SuiteRun.PAIRED_HEADERS),
            paired,
            title="gated vs ungated pairs",
        ))
    if outcome.report is not None:
        # stderr, like the progress layer: stdout stays bit-identical
        # between a cold run and a pure-cache-hit re-run.
        print(outcome.report.summary(), file=sys.stderr)
    return 0


def _suite_plan(args: argparse.Namespace, named) -> int:
    """``suite plan``: probe the store per job digest, never simulate."""
    import os

    store = None
    if args.cache_dir:
        if os.path.isdir(args.cache_dir):
            store = ResultStore(args.cache_dir, backend=args.store)
        else:
            print(f"no result store at {args.cache_dir}; planning against "
                  f"an empty cache", file=sys.stderr)
    plan = plan_suite(named, store=store, shard=args.shard)
    if args.json:
        import json as _json

        print(_json.dumps(plan.to_dict(), indent=2))
    else:
        for entry in plan.entries:
            state = "HIT " if entry.cached else "MISS"
            multi = f"  (x{entry.scenarios})" if entry.scenarios > 1 else ""
            print(f"  {state} {entry.digest[:12]}  {entry.label}{multi}")
        print(plan.summary())
    if args.out:
        residual = plan.residual_suite()
        from pathlib import Path as _Path

        _Path(args.out).write_text(residual.to_json(indent=2) + "\n",
                                   encoding="utf-8")
        print(f"residual suite ({residual.size} spec(s)) written to "
              f"{args.out}", file=sys.stderr)
    return 0


def _suite_merge(args: argparse.Namespace) -> int:
    """``suite merge``: fold shard result stores into one directory."""
    import os

    for src in args.sources:
        if not os.path.isdir(src):
            print(f"no result store at {src}", file=sys.stderr)
            return 1
    dest = ResultStore(args.into, backend=args.store)
    for src in args.sources:
        source = ResultStore(src)
        written = dest.merge_from(source)
        print(f"  {src}: {len(source)} entr{'y' if len(source) == 1 else 'ies'}, "
              f"{written} new/updated")
        source.close()
    print(dest.stats().summary())
    dest.close()
    return 0


def _figure_params(args: argparse.Namespace):
    """FigureParams from the optional CLI overrides (defaults: the paper)."""
    from .figures import FigureParams

    overrides = {}
    if args.scale is not None:
        overrides["scale"] = args.scale
    if args.seed is not None:
        overrides["seed"] = args.seed
    if args.apps:
        overrides["apps"] = tuple(args.apps)
    if args.grid:
        overrides["procs"] = tuple(args.grid)
    if args.w0 is not None:
        overrides["w0"] = args.w0
    if args.w0_values:
        overrides["w0_values"] = tuple(args.w0_values)
    return FigureParams(**overrides)


def _figure_builder(args: argparse.Namespace, jobs: int = 1,
                    progress: bool = False):
    """A FigureBuilder wired to the CLI's store/out-dir/grid flags."""
    import os

    from .figures import FigureBuilder

    store = None  # a throw-away temporary store
    if not getattr(args, "no_cache", False):
        if args.action == "status" and not os.path.isdir(args.cache_dir):
            # status is read-only: never create the directory; an empty
            # throw-away store reports every job as a miss.
            print(f"no result store at {args.cache_dir}; reporting "
                  f"against an empty cache", file=sys.stderr)
        else:
            store = ResultStore(args.cache_dir, backend=args.store)
    return FigureBuilder(
        store=store,
        out_dir=args.out_dir,
        params=_figure_params(args),
        jobs=jobs,
        progress=ConsoleProgress() if progress else None,
        profile=getattr(args, "profile", False),
    )


def _cmd_figures(args: argparse.Namespace) -> int:
    from .figures import figure_help

    if args.action == "list":
        print(format_table(
            ["figure", "kind", "suite", "title"],
            figure_help(),
            title="Registered paper artifacts",
        ))
        return 0

    if args.action == "status":
        from .figures import FigureStatus

        builder = _figure_builder(args)
        # one resolve+plan pass; the residual count is unique across
        # figures (shared suites/jobs count once), matching what a
        # build would actually simulate
        statuses, misses, _total = builder.overview(names=args.only)
        print(format_table(
            list(FigureStatus.ROW_HEADERS),
            [status.row() for status in statuses],
            title=f"figures status — artifacts in {args.out_dir}/",
        ))
        stale = sum(
            1 for status in statuses if status.artifact != "fresh"
        )
        print(f"{stale} artifact(s) need building; "
              f"{misses} residual simulation(s) across requested figures")
        return 0

    # action == "build"
    builder = _figure_builder(args, jobs=args.jobs, progress=args.progress)
    report = builder.build(
        names=args.only, force=args.force, shard=args.shard,
        csv=args.csv, png=args.png,
    )
    for artifact in report.artifacts:
        where = f"  -> {artifact.path}" if artifact.path is not None else ""
        print(f"  {artifact.name}: {artifact.status}{where}")
    print(report.summary())
    if args.show:
        from .analysis.figreport import format_figure, load_figure

        for artifact in report.artifacts:
            if artifact.path is not None and artifact.path.exists():
                print()
                print(format_figure(load_figure(artifact.path)))
    if report.batch is not None:
        print(report.batch.summary(), file=sys.stderr)
    incomplete = [a.name for a in report.artifacts if a.status == "incomplete"]
    if incomplete:
        print(f"incomplete (store lacks runs; merge shards and re-build): "
              f"{', '.join(incomplete)}", file=sys.stderr)
        return 1 if args.shard is None else 0
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from .bench import (
        available_benchmarks,
        bench_payload,
        compare_payloads,
        load_bench_json,
        run_benchmarks,
        write_bench_json,
    )
    from .bench.report import format_results

    if args.list_benches:
        for name in available_benchmarks():
            print(name)
        return 0

    results = run_benchmarks(
        names=args.bench,
        check=args.check,
        repeats=args.repeats,
        warmup=args.warmup,
        progress=lambda name: print(f"running {name} ...", file=sys.stderr),
    )
    print(format_results(results))

    payload = bench_payload(results, label=args.label)
    gate_failures: list[str] = []
    compare_path = args.compare
    if compare_path == "auto":
        from .bench import find_baseline

        found = find_baseline(".", check=args.check)
        if found is None:
            print("bench gate: no committed BENCH_*.json session matches "
                  f"--check={args.check}; nothing to compare against",
                  file=sys.stderr)
            return 1
        compare_path = str(found)
        print(f"bench gate baseline: {compare_path} (newest committed "
              f"session)", file=sys.stderr)
    if compare_path:
        from .bench import regression_failures

        baseline = load_bench_json(compare_path)
        comparison = compare_payloads(baseline, payload)
        print(f"gate comparison vs {compare_path}:")
        for name, factor in sorted(comparison["speedup"].items()):
            print(f"  {name}: {factor:.2f}x vs baseline")
        gate_failures = regression_failures(
            baseline, payload, max_regression_pct=args.max_regression
        )
    if args.baseline:
        payload = compare_payloads(load_bench_json(args.baseline), payload)
        print(f"before/after comparison vs {args.baseline}:")
        for name, factor in sorted(payload["speedup"].items()):
            print(f"  {name}: {factor:.2f}x vs baseline")
    if args.out:
        path = write_bench_json(args.out, payload)
        print(f"report written to {path}", file=sys.stderr)
    if gate_failures:
        for failure in gate_failures:
            print(f"REGRESSION {failure}", file=sys.stderr)
        print(f"bench gate FAILED: {len(gate_failures)} benchmark(s) "
              f"regressed more than {args.max_regression:g}% vs "
              f"{compare_path}", file=sys.stderr)
        return 1
    if compare_path:
        print(f"bench gate OK: no benchmark regressed more than "
              f"{args.max_regression:g}% vs {compare_path}")
    return 0


def _cmd_cache_power(_args: argparse.Namespace) -> int:
    values = {
        f"{size}KB": dict(tcc_cache_power_curve(size))
        for size in FIG3_CACHE_SIZES_KB
    }
    print(format_matrix(
        [f"{s}KB" for s in FIG3_CACHE_SIZES_KB],
        [64, 32, 16, 8, 4, 2, 1],
        values,
        corner="cache \\ B/RW-bit",
        title="Fig. 3 — normalized TCC data-cache power",
    ))
    print(f"full TCC data-cache factor: {tcc_total_power_factor():.3f}x")
    return 0


def _cmd_exec_status(args: argparse.Namespace) -> int:
    import os

    if not os.path.isdir(args.cache_dir):
        # Read-only command: never create the directory (a typo'd path
        # would otherwise masquerade as an empty store).
        print(f"no result store at {args.cache_dir}", file=sys.stderr)
        return 1
    if (args.older_than is not None or args.label is not None) \
            and not args.prune:
        print("--older-than/--label are GC policies for --prune; "
              "add --prune to apply them", file=sys.stderr)
        return 2
    store = ResultStore(args.cache_dir, backend=args.store)
    if args.digests:
        for digest in sorted(digest for digest, _label in store.labels()):
            print(digest)
        return 0
    prune_report = None
    if args.prune:
        seconds = (
            args.older_than * 86400.0 if args.older_than is not None else None
        )
        prune_report = store.prune(older_than_seconds=seconds,
                                   label=args.label)
        if not args.json:
            print(prune_report.summary())
    stats = store.stats()
    by_workload: dict[str, int] = {}
    for _digest, label in store.labels():
        name = label.split("[", 1)[0] if label else "(unlabelled)"
        by_workload[name] = by_workload.get(name, 0) + 1
    if args.json:
        import json as _json

        # the FULL StoreStats — backend, schema, session hits/misses and
        # the skipped-record count included — so scripts never parse the
        # human summary text
        payload = dataclasses.asdict(stats)
        payload["by_workload"] = by_workload
        if prune_report is not None:
            payload["prune"] = dataclasses.asdict(prune_report)
        print(_json.dumps(payload, indent=2, sort_keys=True))
        return 0
    print(stats.summary())
    for name in sorted(by_workload):
        print(f"  {name}: {by_workload[name]} cached run(s)")
    if args.verbose:
        for digest, label in sorted(store.labels(), key=lambda e: e[1]):
            print(f"  {digest[:12]}  {label}")
    return 0


def _obs_directory(args: argparse.Namespace) -> str:
    from .obs import obs_dir_from_env

    return args.obs_dir if args.obs_dir else obs_dir_from_env()


def _cmd_obs(args: argparse.Namespace) -> int:
    import json as _json

    from .obs.summary import (list_runs, load_manifest, resolve_run,
                              summarize_runs, tail_events)

    directory = _obs_directory(args)

    if args.action == "list":
        runs = list_runs(directory)
        if args.json:
            print(_json.dumps({"directory": directory, "runs": runs},
                              indent=2))
            return 0
        if not runs:
            print(f"no observability runs in {directory}", file=sys.stderr)
            return 1
        for run in runs:
            try:
                manifest = load_manifest(directory, run)
            except Exception:
                print(f"  {run}  (no manifest)")
                continue
            metrics = manifest["metrics"]
            state = "finished" if manifest.get("finished") else "partial"
            print(f"  {run}  {state}: {metrics['jobs_executed']} executed, "
                  f"{metrics['cache_hits']} cache hit(s), "
                  f"{metrics['failures']} failure(s), "
                  f"{metrics['wall_seconds']:.2f}s wall")
        return 0

    if args.action == "summary":
        summary = summarize_runs(directory)
        if args.json:
            print(_json.dumps(summary, indent=2, sort_keys=True))
            return 0
        totals = summary["totals"]
        if not totals["runs"]:
            print(f"no observability runs in {directory}", file=sys.stderr)
            return 1
        print(f"{totals['runs']} run(s) in {directory}: "
              f"{totals['jobs_executed']} executed, "
              f"{totals['cache_hits']} cache hit(s), "
              f"{totals['failures']} failure(s)")
        if totals["hit_rate"] is not None:
            print(f"  cache hit rate: {totals['hit_rate'] * 100:.1f}%")
        if totals["sims_per_second"] is not None:
            print(f"  throughput: {totals['sims_per_second']:.1f} sims/s "
                  f"over {totals['wall_seconds']:.2f}s wall")
        for workload, count in sorted(
                totals["failures_by_workload"].items()):
            print(f"  failures in {workload}: {count}")
        return 0

    run = resolve_run(directory, args.run)
    if args.action == "tail":
        records = tail_events(directory, run, limit=args.lines)
        if args.json:
            print(_json.dumps(records, indent=2, sort_keys=True))
            return 0
        for record in records:
            dur = (f" {record['dur_s'] * 1000:.1f}ms"
                   if record.get("dur_s") is not None else "")
            attrs = record.get("attrs") or {}
            label = attrs.get("label") or attrs.get("figure") \
                or attrs.get("suite") or ""
            print(f"  {record.get('kind', '?'):7s} "
                  f"{record.get('name', '?'):18s}{dur}  {label}")
        return 0

    # action == "show"
    manifest = load_manifest(directory, run)
    if args.json:
        print(_json.dumps(manifest, indent=2, sort_keys=True))
        return 0
    metrics = manifest["metrics"]
    print(f"run {manifest['run']} "
          f"({'finished' if manifest.get('finished') else 'partial'})")
    print(f"  argv: {' '.join(manifest.get('argv', []))}")
    print(f"  git:  {manifest.get('git_sha') or '(unknown)'}")
    print(f"  jobs: {metrics['jobs_executed']} executed, "
          f"{metrics['cache_hits']} cache hit(s) of "
          f"{metrics['jobs_submitted']} submitted in "
          f"{metrics['batches']} batch(es)")
    if metrics["hit_rate"] is not None:
        print(f"  cache hit rate: {metrics['hit_rate'] * 100:.1f}%")
    if metrics["sims_per_second"] is not None:
        print(f"  throughput: {metrics['sims_per_second']:.1f} sims/s "
              f"over {metrics['wall_seconds']:.2f}s wall")
    latency = metrics["job_latency_s"]
    if latency["count"]:
        print(f"  job latency: p50 {latency['p50']:.3f}s, "
              f"p95 {latency['p95']:.3f}s, max {latency['max']:.3f}s "
              f"({latency['count']} job(s))")
    counters = manifest.get("counters", {})
    if counters:
        print("  counters:")
        for name in sorted(counters):
            value = counters[name]
            rendered = f"{value:.4f}" if isinstance(value, float) \
                and not value.is_integer() else f"{int(value)}"
            print(f"    {name}: {rendered}")
    failures = manifest.get("failures", {})
    detail = failures.get("detail", [])
    if detail:
        shown = detail[:max(args.failures, 0)]
        print(f"  failures ({len(shown)} of "
              f"{metrics['failures']} shown):")
        for failure in shown:
            print(f"    {failure['digest'][:12]}  {failure['label']}: "
                  f"{failure['error']}")
    if "profile" in manifest:
        top = manifest["profile"]["top"][:10]
        print(f"  profile ({manifest['profile']['jobs']} job(s), "
              f"top {len(top)} by cumulative time):")
        for row in top:
            print(f"    {row['cumtime_s']:8.3f}s  {row['ncalls']:>8d}  "
                  f"{row['func']}")
    return 0


def _cmd_check(args: argparse.Namespace) -> int:
    from .analysis.lint import (
        list_rules_text, render_json, render_text, run_check,
    )

    if args.list_rules:
        print(list_rules_text())
        return 0
    split = (lambda raw: [token.strip() for token in raw.split(",")
                          if token.strip()])
    report = run_check(
        args.paths,
        select=split(args.select) if args.select else None,
        ignore=split(args.ignore) if args.ignore else None,
    )
    print(render_json(report) if args.json else render_text(report))
    return report.exit_code


def _cmd_list(_args: argparse.Namespace) -> int:
    print("workloads:")
    for name in available_workloads():
        params = ", ".join(workload_schema(name).names()) or "(none)"
        print(f"  {name}  [{params}]")
    print("contention managers:")
    for name in available_cms():
        print(f"  {name}")
    print("scenario suites (see `suite list`):")
    for name in available_suites():
        print(f"  {name}")
    return 0


_COMMANDS = {
    "run": _cmd_run,
    "compare": _cmd_compare,
    "evaluate": _cmd_evaluate,
    "sweep": _cmd_sweep,
    "suite": _cmd_suite,
    "figures": _cmd_figures,
    "bench": _cmd_bench,
    "cache-power": _cmd_cache_power,
    "exec-status": _cmd_exec_status,
    "obs": _cmd_obs,
    "check": _cmd_check,
    "list": _cmd_list,
}

#: how many job failures the CLI details before truncating
FAILURES_SHOWN = 5


def _obs_setup(args: argparse.Namespace, argv: Sequence[str] | None):
    """Activate observability for this invocation when asked to.

    Returns ``(recorder, mode)`` where mode is ``"flag"`` (activated by
    ``--obs-dir``/``--profile`` — environment exports are cleaned up
    afterwards), ``"env"`` (``REPRO_OBS=1`` — the environment is left
    alone so sibling invocations keep recording), or ``None`` (off).
    The ``obs`` command itself never records a run about reading runs.
    """
    import os as _os

    from . import obs

    if args.command == "obs":
        return obs.get_recorder(), None
    recorded_argv = ["repro", *argv] if argv is not None else None
    if getattr(args, "obs_dir", None):
        return obs.configure(args.obs_dir, argv=recorded_argv), "flag"
    if obs.obs_enabled_from_env():
        run_id = _os.environ.get("REPRO_OBS_RUN", "").strip() or None
        return obs.configure(
            obs.obs_dir_from_env(), run_id=run_id, argv=recorded_argv
        ), "env"
    if getattr(args, "profile", False):
        # --profile without a destination: default observability dir
        return obs.configure(
            obs.obs_dir_from_env(), argv=recorded_argv
        ), "flag"
    return obs.get_recorder(), None


def _print_failures(exc: BatchExecutionError) -> None:
    """Per-failure digests and errors instead of a bare tally."""
    print(f"error: {exc}", file=sys.stderr)
    for failure in exc.failures[:FAILURES_SHOWN]:
        print(f"  FAILED {failure.digest[:12]}  {failure.label}: "
              f"{failure.error}", file=sys.stderr)
    hidden = len(exc.failures) - FAILURES_SHOWN
    if hidden > 0:
        print(f"  ... and {hidden} more failure(s)", file=sys.stderr)
    print("first failure traceback:", file=sys.stderr)
    print(exc.failures[0].traceback.rstrip(), file=sys.stderr)


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    recorder, obs_mode = _obs_setup(args, argv)
    try:
        return _COMMANDS[args.command](args)
    except BatchExecutionError as exc:
        _print_failures(exc)
        return 1
    finally:
        if obs_mode is not None:
            from . import obs

            recorder.close()
            if recorder.enabled and recorder.manifest_path.exists():
                print(f"obs: run manifest {recorder.manifest_path}",
                      file=sys.stderr)
            if obs_mode == "flag":
                obs.disable()
            obs.reset()


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
