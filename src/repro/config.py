"""Configuration objects for the simulated system.

The defaults reproduce Table II of the paper:

=============  ===============================================
Feature        Description
=============  ===============================================
CPU            1-16 single-issue in-order cores
L1D            64 KB, 64-byte line, 2-way associative, 1-cycle
Interconnect   common split-transaction bus
Directory      full-bit-vector sharer list, 10-cycle latency
Main memory    1 GB, 100-cycle latency, single read/write port
=============  ===============================================

All latencies are in processor clock cycles; the whole system shares one
clock domain (the paper's directories run timers on a "directory-local
clock tick" — we model a single global clock, which is equivalent for a
single-frequency system).

Every dataclass validates itself in ``__post_init__`` and raises
:class:`repro.errors.ConfigError` on inconsistency, so invalid systems
fail fast at construction rather than deep inside a simulation.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

from .errors import ConfigError

__all__ = [
    "CacheConfig",
    "BusConfig",
    "DirectoryConfig",
    "MemoryConfig",
    "CommitConfig",
    "GatingConfig",
    "SystemConfig",
]


def _require(condition: bool, message: str) -> None:
    """Raise :class:`ConfigError` with *message* unless *condition* holds."""
    if not condition:
        raise ConfigError(message)


def _is_pow2(n: int) -> bool:
    return n > 0 and (n & (n - 1)) == 0


@dataclass(frozen=True)
class CacheConfig:
    """Geometry and timing of the private L1 data cache.

    Defaults follow Table II: 64 KB, 64-byte lines, 2-way set
    associative, 1-cycle hit latency.  The cache additionally carries
    speculative read/write (``RW``) bits per line as required by TCC;
    their power cost is modelled separately in :mod:`repro.power.cacti`.
    """

    size_bytes: int = 64 * 1024
    line_bytes: int = 64
    ways: int = 2
    hit_latency: int = 1

    def __post_init__(self) -> None:
        _require(self.size_bytes > 0, "cache size must be positive")
        _require(_is_pow2(self.line_bytes), "line size must be a power of two")
        _require(self.ways > 0, "cache must have at least one way")
        _require(self.hit_latency >= 0, "hit latency must be non-negative")
        _require(
            self.size_bytes % (self.line_bytes * self.ways) == 0,
            "cache size must be divisible by line_bytes * ways",
        )
        _require(
            _is_pow2(self.num_sets),
            "number of sets must be a power of two (index by bit slice)",
        )

    @property
    def num_lines(self) -> int:
        """Total number of cache lines."""
        return self.size_bytes // self.line_bytes

    @property
    def num_sets(self) -> int:
        """Number of sets (``lines / ways``)."""
        return self.num_lines // self.ways


@dataclass(frozen=True)
class BusConfig:
    """The common split-transaction bus connecting cores and directories.

    Each message occupies the bus for ``occupancy`` cycles (address or
    data beat) and then takes ``wire_latency`` further cycles to arrive.
    Being split-transaction, a request and its reply are independent bus
    transactions — the bus is never held across a directory or memory
    access.
    """

    occupancy: int = 2
    data_occupancy: int = 4
    wire_latency: int = 1

    def __post_init__(self) -> None:
        _require(self.occupancy >= 1, "bus occupancy must be >= 1 cycle")
        _require(self.data_occupancy >= 1, "data occupancy must be >= 1 cycle")
        _require(self.wire_latency >= 0, "wire latency must be non-negative")


@dataclass(frozen=True)
class DirectoryConfig:
    """Directory timing (full-bit-vector sharer tracking, Table II)."""

    latency: int = 10
    commit_line_cycles: int = 1

    def __post_init__(self) -> None:
        _require(self.latency >= 0, "directory latency must be non-negative")
        _require(
            self.commit_line_cycles >= 0,
            "per-line commit cost must be non-negative",
        )


@dataclass(frozen=True)
class MemoryConfig:
    """Main memory (Table II: 1 GB, 100-cycle, single R/W port).

    ``port_occupancy`` models the single read/write port as a pipelined
    resource: a new access may begin every ``port_occupancy`` cycles
    while each access still takes ``latency`` cycles end-to-end.  Set
    ``port_occupancy = latency`` for a fully blocking port.
    """

    size_bytes: int = 1 << 30
    latency: int = 100
    ports: int = 1
    port_occupancy: int = 10

    def __post_init__(self) -> None:
        _require(self.size_bytes > 0, "memory size must be positive")
        _require(self.latency >= 0, "memory latency must be non-negative")
        _require(self.ports >= 1, "memory needs at least one port")
        _require(self.port_occupancy >= 1, "port occupancy must be >= 1")
        _require(
            self.port_occupancy <= max(1, self.latency),
            "port occupancy cannot exceed access latency",
        )


@dataclass(frozen=True)
class CommitConfig:
    """Timing of the commit path (token vendor and drain behaviour)."""

    token_vendor_latency: int = 1
    abort_drain_cycles: int = 2

    def __post_init__(self) -> None:
        _require(
            self.token_vendor_latency >= 0,
            "token vendor latency must be non-negative",
        )
        _require(
            self.abort_drain_cycles >= 0,
            "abort drain must be non-negative",
        )


@dataclass(frozen=True)
class GatingConfig:
    """Clock-gating-on-abort configuration (Sections III, V and VI).

    Attributes
    ----------
    enabled:
        Master switch.  With ``False`` the system behaves as the paper's
        baseline: aborts retry according to the contention manager
        (immediately, by default) and no processor is ever gated.
    w0:
        The constant :math:`W_0` of Eq. (8).  The paper uses ``8`` for
        its main experiments and sweeps 1–32 in Fig. 7.  "For large
        number of processors this constant should be small; for
        small-scale systems preset to a high value."
    abort_counter_bits:
        Width of the per-(directory, processor) abort up-counter; the
        paper suggests 8 bits, saturating at 255.
    or_circuit_cycles:
        Extra cycles consumed by the high fan-in bitwise-OR ungating
        circuit of Fig. 2(e).  The paper notes this "will take multiple
        cycles ... extending the clock gating period by a small amount".
        ``None`` derives ``ceil(log2(num_procs))`` at system build time.
    contention_manager:
        Name of the contention-management policy used to compute gating
        windows (see :mod:`repro.cm.registry`).  Defaults to the paper's
        gating-aware staircase policy.
    """

    enabled: bool = True
    w0: int = 8
    abort_counter_bits: int = 8
    or_circuit_cycles: int | None = None
    contention_manager: str = "gating-aware"

    def __post_init__(self) -> None:
        _require(self.w0 >= 1, "W0 must be at least 1 cycle")
        _require(
            1 <= self.abort_counter_bits <= 64,
            "abort counter width must be in [1, 64] bits",
        )
        if self.or_circuit_cycles is not None:
            _require(
                self.or_circuit_cycles >= 0,
                "OR-circuit delay must be non-negative",
            )

    @property
    def abort_counter_max(self) -> int:
        """Saturation value of the abort counter (255 for 8 bits)."""
        return (1 << self.abort_counter_bits) - 1


@dataclass(frozen=True)
class SystemConfig:
    """Complete description of one simulated machine.

    ``num_dirs`` defaults to ``num_procs`` (the paper's Fig. 2 example
    pairs four processors with four directories); physical memory is
    interleaved across directories at cache-line granularity.
    """

    num_procs: int = 4
    num_dirs: int | None = None
    cache: CacheConfig = field(default_factory=CacheConfig)
    bus: BusConfig = field(default_factory=BusConfig)
    directory: DirectoryConfig = field(default_factory=DirectoryConfig)
    memory: MemoryConfig = field(default_factory=MemoryConfig)
    commit: CommitConfig = field(default_factory=CommitConfig)
    gating: GatingConfig = field(default_factory=GatingConfig)
    seed: int = 0
    max_cycles: int | None = None

    def __post_init__(self) -> None:
        _require(1 <= self.num_procs <= 1024, "num_procs must be in [1, 1024]")
        if self.num_dirs is not None:
            _require(self.num_dirs >= 1, "num_dirs must be >= 1")
        _require(self.seed >= 0, "seed must be non-negative")
        if self.max_cycles is not None:
            _require(self.max_cycles > 0, "max_cycles must be positive")

    @property
    def effective_num_dirs(self) -> int:
        """Directory count actually instantiated (defaults to cores)."""
        return self.num_dirs if self.num_dirs is not None else self.num_procs

    @property
    def effective_or_circuit_cycles(self) -> int:
        """OR-circuit delay, deriving ``ceil(log2(p))`` when unset."""
        if self.gating.or_circuit_cycles is not None:
            return self.gating.or_circuit_cycles
        return max(1, (self.num_procs - 1).bit_length())

    def with_gating(self, enabled: bool, **gating_overrides: object) -> "SystemConfig":
        """Return a copy with gating toggled (and optional field overrides).

        Convenience for the paired "with / without clock-gating" runs of
        Figs. 4–6: the architectural parameters stay identical and only
        the gating switch flips.
        """
        gating = dataclasses.replace(
            self.gating, enabled=enabled, **gating_overrides  # type: ignore[arg-type]
        )
        return dataclasses.replace(self, gating=gating)

    def with_w0(self, w0: int) -> "SystemConfig":
        """Return a copy with a different :math:`W_0` (Fig. 7 sweeps)."""
        return dataclasses.replace(
            self, gating=dataclasses.replace(self.gating, w0=w0)
        )

    def table2_rows(self) -> list[tuple[str, str]]:
        """Render this configuration as Table II-style (feature, value) rows."""
        cache = self.cache
        return [
            ("CPU", f"{self.num_procs} single issue in-order cores"),
            (
                "L1D",
                f"{cache.size_bytes // 1024}KB {cache.line_bytes} byte line size, "
                f"{cache.ways}-way associative, {cache.hit_latency} cycle latency",
            ),
            ("Interconnect", "Common Split-Transaction Bus"),
            (
                "Directory",
                f"Full-bit vector sharer, {self.directory.latency} cycle latency",
            ),
            (
                "Main Memory",
                f"{self.memory.size_bytes >> 30}GB, {self.memory.latency} cycle "
                f"latency, {'Single' if self.memory.ports == 1 else self.memory.ports} "
                "Read/Write Port",
            ),
        ]
