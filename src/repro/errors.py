"""Exception hierarchy for the ``repro`` package.

All exceptions raised intentionally by the library derive from
:class:`ReproError` so callers can catch library failures with a single
``except`` clause while letting genuine programming errors (``TypeError``,
``KeyError`` from internal bugs, ...) propagate.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ConfigError",
    "SimulationError",
    "DeadlockError",
    "ProtocolError",
    "MemoryModelError",
    "CacheOverflowError",
    "WorkloadError",
    "HarnessError",
    "ExecutionError",
    "BenchmarkError",
    "FigureError",
]


class ReproError(Exception):
    """Base class for every error raised by the ``repro`` library."""


class ConfigError(ReproError, ValueError):
    """Raised when a configuration object is inconsistent or out of range.

    Examples: a processor count that is not positive, a cache whose line
    size does not divide its total size, or a gating configuration that
    requests a zero back-off constant.
    """


class SimulationError(ReproError, RuntimeError):
    """Raised when the discrete-event simulation reaches an invalid state."""


class DeadlockError(SimulationError):
    """Raised when the event queue drains while threads are still blocked.

    The clock-gating protocol is proved deadlock-free in the paper
    (Section V: a gated processor cannot abort any other processor), so
    hitting this error indicates a bug in the protocol implementation or
    a malformed workload (e.g. a barrier that not all threads reach).
    """


class ProtocolError(SimulationError):
    """Raised when an HTM/coherence protocol invariant is violated.

    Examples: a directory granting commit access out of TID order, a
    gated processor issuing a load, or a commit for a line with no
    registered owner.
    """


class MemoryModelError(ReproError, ValueError):
    """Raised for invalid memory accesses (unaligned/negative addresses)."""


class CacheOverflowError(SimulationError):
    """Raised internally when speculative state can no longer fit in L1.

    TCC tracks the transactional read/write sets in the private L1 data
    cache.  If every way of a set holds speculative state, the victim
    transaction cannot continue speculating; the simulator converts this
    condition into an *overflow abort* (the transaction retries).  The
    exception type exists so the processor model can distinguish the
    overflow path from a genuine conflict abort.
    """


class WorkloadError(ReproError, ValueError):
    """Raised when a workload is malformed or given invalid parameters."""


class HarnessError(ReproError, RuntimeError):
    """Raised by the experiment harness for invalid experiment requests."""


class ExecutionError(ReproError, RuntimeError):
    """Raised by :mod:`repro.exec` when a job batch cannot be resolved.

    Examples: a worker process failing while executing a job (the
    original exception is chained), an unwritable cache directory, or
    an invalid worker count.
    """


class FigureError(ReproError, RuntimeError):
    """Raised by :mod:`repro.figures` when an artifact cannot be produced.

    Examples: an unknown figure or extractor name, a result store that
    lacks the runs a figure needs (e.g. after a sharded build), or a
    renderer whose optional dependency (matplotlib) is unavailable.
    """


class BenchmarkError(ReproError, RuntimeError):
    """Raised by :mod:`repro.bench` for misconfigured or broken benchmarks.

    Examples: a non-positive repetition count, a benchmark whose
    repetitions do not perform a fixed amount of work, or a request for
    an unknown benchmark name.
    """
