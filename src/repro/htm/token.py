"""The centralized token vendor.

Scalable TCC serializes conflicting commits with a monotonically
increasing *token id* (TID) handed out by a central vendor when a
processor reaches its commit instruction; "the older transaction will
possess low TID and will be able to commit first" (Section II).

Beyond issuing TIDs, this vendor implements the *completion barrier*
that stands in for Scalable TCC's skew/probe machinery (DESIGN.md §5,
substitution list): a committer may flush its write-set only once every
older TID has finished (committed — including delivery of its
invalidations, which the FIFO bus orders before the commit ack — or
aborted and released its token).  This conservatively serializes commit
*completion* in TID order, which is exactly the property the
serializability invariant needs, while still letting a committer flush
to all its directories in parallel.

Waiter callbacks are dispatched through the event engine (at +0 cycles)
rather than synchronously: a retiring commit can release a long chain
of waiting committers, and trampolining through the engine keeps that
iteration instead of recursion.
"""

from __future__ import annotations

import heapq
from typing import Callable

from ..errors import ProtocolError
from ..sim.engine import Engine
from ..sim.stats import StatsRegistry

__all__ = ["TokenVendor"]


class TokenVendor:
    """Issues TIDs and releases committers in TID order."""

    def __init__(self, engine: Engine, stats: StatsRegistry):
        self._engine = engine
        self._stats = stats
        self._next_tid = 1
        self._live: set[int] = set()
        # min-heap of (tid, callback) waiting for their barrier turn
        self._waiters: list[tuple[int, Callable[[], None]]] = []
        self._c_tids_issued = stats.counter("vendor.tids_issued")
        self._c_barrier_waits = stats.counter("vendor.barrier_waits")
        self._c_commits = stats.counter("vendor.commits")
        self._c_releases = stats.counter("vendor.releases")

    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Return to the just-constructed state (TIDs restart at 1)."""
        self._next_tid = 1
        self._live.clear()
        self._waiters.clear()

    def issue(self, proc: int) -> int:
        """Hand out the next TID (the commit timestamp)."""
        tid = self._next_tid
        self._next_tid += 1
        self._live.add(tid)
        self._c_tids_issued.add()
        return tid

    def min_live(self) -> int | None:
        return min(self._live) if self._live else None

    def is_live(self, tid: int) -> bool:
        return tid in self._live

    # ------------------------------------------------------------------
    def wait_for_turn(
        self, tid: int, callback: Callable[..., None], *args
    ) -> None:
        """Invoke ``callback(*args)`` once ``tid`` is the smallest live TID.

        The callback fires via a zero-delay engine event; callers guard
        against their own abort in the interim (epoch discipline).
        Accepting args directly saves the per-commit closure the caller
        would otherwise build (every commit passes through here).
        """
        if tid not in self._live:
            raise ProtocolError(f"TID {tid} is not live")
        if min(self._live) == tid:
            self._engine.schedule(0, callback, *args)
            return
        # TIDs are unique, so heap ordering never compares past them.
        heapq.heappush(self._waiters, (tid, callback, args))
        self._c_barrier_waits.add()

    # ------------------------------------------------------------------
    def finish(self, tid: int) -> None:
        """Retire a committed TID (its flushes and invals are delivered)."""
        self._retire(tid, self._c_commits)

    def release(self, tid: int) -> None:
        """Retire an aborted TID (its owner rolled back while spinning)."""
        self._retire(tid, self._c_releases)

    def _retire(self, tid: int, counter) -> None:
        if tid not in self._live:
            raise ProtocolError(f"retiring TID {tid} that is not live")
        self._live.remove(tid)
        counter.add()
        self._drain_waiters()

    def _drain_waiters(self) -> None:
        while self._waiters:
            tid, callback, args = self._waiters[0]
            if tid not in self._live:
                # Waiter aborted after queueing; drop the dead entry.
                heapq.heappop(self._waiters)
                continue
            if min(self._live) != tid:
                return
            heapq.heappop(self._waiters)
            self._engine.schedule(0, callback, *args)
