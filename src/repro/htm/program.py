"""Thread programs: the software the simulated cores run.

A :class:`ThreadProgram` is the unit of work bound to one processor.
Its :meth:`~ThreadProgram.generate` method receives a
:class:`ThreadContext` (thread id, thread count, deterministic RNG,
free-form parameters) and returns the generator of intents that the
processor executes.

Programs are written once per workload and instantiated per thread;
see :mod:`repro.workloads` for the STAMP-equivalent kernels.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Generator

import numpy as np

from ..errors import WorkloadError

__all__ = ["ThreadContext", "ThreadProgram"]


@dataclass
class ThreadContext:
    """Per-thread execution context handed to the program generator."""

    proc_id: int
    num_threads: int
    rng: np.random.Generator
    params: dict[str, Any] = field(default_factory=dict)


class ThreadProgram:
    """Binds a generator function to a name.

    ``fn`` must accept a single :class:`ThreadContext` argument and
    return a generator yielding :class:`~repro.htm.ops.Op` intents.
    """

    def __init__(self, fn: Callable[[ThreadContext], Generator], name: str = ""):
        if not callable(fn):
            raise WorkloadError("thread program must be callable")
        self.fn = fn
        self.name = name or getattr(fn, "__name__", "program")

    def generate(self, ctx: ThreadContext) -> Generator:
        gen = self.fn(ctx)
        if not hasattr(gen, "send"):
            raise WorkloadError(
                f"thread program {self.name!r} must return a generator "
                f"(got {type(gen).__name__}); did you forget a yield?"
            )
        return gen

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<ThreadProgram {self.name}>"
