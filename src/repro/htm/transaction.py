"""Per-attempt transactional state: read/write sets and the store buffer.

``TxState`` is the processor-side bookkeeping for one *attempt* of a
transaction: which lines were speculatively read (conflict detection),
which words were speculatively written (lazy versioning — the paper's
store-address FIFO holds up to 1024 word addresses), and the lifecycle
status.  A fresh ``TxState`` is created for every attempt; aborted
attempts are discarded wholesale, which is precisely TCC's rollback.

``TxHandle`` is the restricted view handed to workload transaction
bodies.
"""

from __future__ import annotations

import enum
from typing import Any

import numpy as np

from ..errors import CacheOverflowError

__all__ = ["TxStatus", "TxState", "TxHandle", "STORE_FIFO_DEPTH"]

#: Depth of the store-address FIFO modelled by the paper's power study
#: (Section VII: "a store address FIFO of 1024 words").  A transaction
#: writing more distinct words than this cannot be buffered.
STORE_FIFO_DEPTH = 1024


class TxStatus(enum.Enum):
    RUNNING = "running"
    COMMITTING = "committing"
    COMMITTED = "committed"
    ABORTED = "aborted"


class TxHandle:
    """What a transaction body may see: identity, attempt and RNG.

    The RNG is seeded per *static transaction instance*, not per
    attempt, so pure re-execution makes the same choices each attempt
    (matching real re-execution of deterministic code).  Bodies that
    want attempt-dependent behaviour can mix in :attr:`attempt`.

    Construction is on the abort/retry hot path, so ``rng`` accepts
    either an integer seed — the generator is then built lazily on
    first access, and bodies that never draw randomness (all of the
    bundled workloads) skip ``default_rng`` construction entirely — or
    a ready-made :class:`numpy.random.Generator`.
    """

    __slots__ = (
        "proc_id", "num_threads", "site", "attempt",
        "_rng_seed", "_rng", "_result",
    )

    def __init__(
        self,
        proc_id: int,
        num_threads: int,
        site: str,
        attempt: int,
        rng: "int | np.random.Generator",
    ):
        self.proc_id = proc_id
        self.num_threads = num_threads
        self.site = site
        self.attempt = attempt
        if isinstance(rng, np.random.Generator):
            self._rng_seed = None
            self._rng: np.random.Generator | None = rng
        else:
            self._rng_seed = rng
            self._rng = None
        self._result: Any = None

    @property
    def rng(self) -> np.random.Generator:
        generator = self._rng
        if generator is None:
            generator = self._rng = np.random.default_rng(self._rng_seed)
        return generator

    def set_result(self, value: Any) -> None:
        """Stash a value delivered to the program iff this attempt commits."""
        self._result = value

    @property
    def result(self) -> Any:
        return self._result


class TxState:
    """One attempt of one transaction on one processor."""

    __slots__ = (
        "proc_id",
        "site",
        "index",
        "attempt",
        "start_time",
        "status",
        "tid",
        "read_lines",
        "write_lines",
        "writes",
        "read_log",
        "handle",
        "flush_acks_pending",
    )

    def __init__(
        self,
        proc_id: int,
        site: str,
        index: int,
        attempt: int,
        start_time: int,
        handle: TxHandle,
    ):
        self.proc_id = proc_id
        self.site = site
        #: per-processor static instance counter (which TxOp this is)
        self.index = index
        self.attempt = attempt
        self.start_time = start_time
        self.status = TxStatus.RUNNING
        self.tid: int | None = None
        self.read_lines: set[int] = set()
        self.write_lines: set[int] = set()
        #: word address -> value (the store buffer)
        self.writes: dict[int, int] = {}
        #: (addr, observed value) pairs, recorded in validation mode
        self.read_log: list[tuple[int, int]] | None = None
        self.handle = handle
        self.flush_acks_pending = 0

    # ------------------------------------------------------------------
    @property
    def live(self) -> bool:
        return self.status in (TxStatus.RUNNING, TxStatus.COMMITTING)

    @property
    def footprint_lines(self) -> set[int]:
        return self.read_lines | self.write_lines

    def buffer_store(self, addr: int, value: int, line: int) -> None:
        """Record a speculative store, enforcing the FIFO depth."""
        if addr not in self.writes and len(self.writes) >= STORE_FIFO_DEPTH:
            raise CacheOverflowError(
                f"transaction {self.site!r} on proc {self.proc_id} exceeded "
                f"the {STORE_FIFO_DEPTH}-entry store buffer; split the "
                "transaction or reduce its write footprint"
            )
        self.writes[addr] = value
        self.write_lines.add(line)

    def forwarded_value(self, addr: int) -> int | None:
        """Store-to-load forwarding from the transaction's own buffer."""
        return self.writes.get(addr)

    def conflicts_with(self, lines) -> bool:
        """Would an invalidation of ``lines`` abort this attempt?

        Per the paper, only committed writes to *speculatively read*
        lines abort; blind writes are merged at word granularity by the
        store buffer and need no abort.
        """
        read = self.read_lines
        return any(line in read for line in lines)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<TxState {self.site}#{self.index} proc={self.proc_id} "
            f"attempt={self.attempt} {self.status.value} "
            f"r={len(self.read_lines)} w={len(self.write_lines)}>"
        )
