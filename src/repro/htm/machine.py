"""The machine: wiring, global services and the run loop.

``Machine`` assembles one simulated system from a
:class:`~repro.config.SystemConfig` and a list of thread programs: the
event engine, bus, main memory, directories (with optional gating
units), token vendor, contention manager, per-processor caches and
power-state timelines.

It also provides the few *global* services the models need:

* token-vendor access with bus timing (:meth:`request_tid`),
* ``TxInfoReq`` round-trips for the gating units (:meth:`query_tx_site`),
* program-level barriers,
* the parallel-section window (first transaction begin to last commit
  completion — the measurement interval of Section IV), and
* commit bookkeeping fan-out (gating-counter resets; the paper resets a
  processor's abort counters when it commits).

``run()`` drives the event loop until every thread program finishes,
then finalizes the timelines and returns a :class:`MachineResult`.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Callable, Sequence

from ..cm.base import ContentionManager
from ..cm.registry import create_cm
from ..config import SystemConfig
from ..errors import ConfigError, DeadlockError, SimulationError
from ..gating.protocol import GatingUnit
from ..mem.address import AddressMap
from ..mem.bus import Bus
from ..mem.cache import L1Cache
from ..mem.directory import Directory
from ..mem.memory import MainMemory
from ..power.states import ProcState
from ..sim.engine import Engine
from ..sim.rng import derive_seed, spawn_rngs
from ..sim.stats import StatsRegistry
from ..sim.timeline import StateTimeline
from ..sim.trace import NullTrace
from .processor import Processor
from .program import ThreadContext, ThreadProgram
from .token import TokenVendor
from .transaction import TxState

__all__ = ["Machine", "MachineResult", "CommittedTx"]


class _AllThreadsFinished(Exception):
    """Control-flow sentinel: the last thread program completed.

    Raised by :meth:`Machine.proc_finished` (only while
    :meth:`Machine.run` is driving the engine) so the event loop can be
    the engine's inlined drain loop instead of one ``step()`` call —
    and one completion comparison — per event.
    """


@dataclass(frozen=True)
class CommittedTx:
    """Snapshot of one committed transaction (validation mode only)."""

    tid: int
    proc: int
    site: str
    commit_time: int
    reads: tuple[tuple[int, int], ...]
    writes: tuple[tuple[int, int], ...]


@dataclass
class MachineResult:
    """Raw outcome of one simulation run."""

    config: SystemConfig
    end_cycle: int
    parallel_start: int
    parallel_end: int
    timelines: list[StateTimeline]
    stats: StatsRegistry
    commit_log: list[CommittedTx] = field(default_factory=list)
    memory_snapshot: dict[int, int] = field(default_factory=dict)

    @property
    def parallel_time(self) -> int:
        """The paper's N: last transaction end minus first transaction start."""
        return self.parallel_end - self.parallel_start

    def counters(self) -> dict[str, int]:
        return self.stats.counters()


class _BarrierState:
    __slots__ = ("waiters",)

    def __init__(self) -> None:
        self.waiters: list[tuple[int, Callable[[Any], None]]] = []


class Machine:
    """One fully-wired simulated system."""

    def __init__(
        self,
        config: SystemConfig,
        programs: Sequence[ThreadProgram],
        program_params: dict[str, Any] | None = None,
        initial_memory: dict[int, int] | None = None,
        trace: NullTrace | None = None,
        validation_mode: bool = False,
    ):
        if len(programs) != config.num_procs:
            raise ConfigError(
                f"{config.num_procs} processors but {len(programs)} thread "
                "programs; they must match one-to-one"
            )
        self.config = config
        self.validation_mode = validation_mode
        self.engine = Engine()
        self.stats = StatsRegistry()
        self.trace = trace if trace is not None else NullTrace()
        # A disabled trace must cost nothing on machine-level paths
        # (barriers, thread completion) — same guard the processors use.
        self._trace_on = self.trace.enabled
        self.addr_map = AddressMap(
            line_bytes=config.cache.line_bytes,
            num_dirs=config.effective_num_dirs,
            memory_bytes=config.memory.size_bytes,
        )
        self.memory = MainMemory(
            self.engine, config.memory, self.stats, record_versions=validation_mode
        )
        if initial_memory:
            self.memory.load_image(initial_memory)
        self.bus = Bus(self.engine, config.bus, self.stats)
        self.vendor = TokenVendor(self.engine, self.stats)
        self.cm: ContentionManager = create_cm(config.gating, config.seed)

        self._timelines = [
            StateTimeline(ProcState.RUN) for _ in range(config.num_procs)
        ]

        self.dirs: list[Directory] = [
            Directory(
                d,
                self.engine,
                self.bus,
                self.memory,
                config.directory,
                self.addr_map,
                self.stats,
                self.trace,
            )
            for d in range(config.effective_num_dirs)
        ]
        self.gating_units: list[GatingUnit] = []
        for directory in self.dirs:
            unit = None
            if config.gating.enabled:
                unit = GatingUnit(
                    directory, self, self.cm, config, self.stats, self.trace
                )
                self.gating_units.append(unit)
            directory.attach(self, unit)

        self.procs: list[Processor] = [
            Processor(p, self) for p in range(config.num_procs)
        ]

        self._c_stale_grants = self.stats.counter("vendor.stale_grants")
        self._c_txinfo_requests = self.stats.counter("gating.txinfo_requests")
        self._vendor_latency = config.commit.token_vendor_latency

        self._programs = list(programs)
        self._program_params = dict(program_params or {})
        self._barriers: dict[str, _BarrierState] = {}
        self._finished = 0
        self._raise_on_complete = False
        self.parallel_start: int | None = None
        self.parallel_end: int | None = None
        self.commit_log: list[CommittedTx] = []

    # ------------------------------------------------------------------
    # reset-not-rebuild (pack-shared warm state)
    # ------------------------------------------------------------------
    def reset(
        self,
        config: SystemConfig,
        programs: Sequence[ThreadProgram],
        program_params: dict[str, Any] | None = None,
        initial_memory: dict[int, int] | None = None,
        validation_mode: bool = False,
    ) -> None:
        """Restore pristine state for a new run without rebuilding.

        The replicate-pack warm path: the topology (engine, bus, memory,
        directories, gating units, processors, caches, stats handle
        bindings) is reused; everything mutable is returned to its
        just-constructed state and the seed-dependent pieces (contention
        manager, per-processor tx seed prefixes, timelines, thread RNGs
        drawn in :meth:`run`) are re-derived from ``config.seed``.  A
        reset machine is pinned bit-identical to a freshly constructed
        one per (config, programs) by the rebuild-vs-reset parity tests
        and the golden captures.

        Contract: ``config`` must describe the *same topology* as the
        construction config — only ``seed`` may differ (enforced here).
        The trace bound at construction stays; callers wanting tracing
        must rebuild.  Resetting zeroes the shared :class:`StatsRegistry`,
        so counters of a previous run's ``MachineResult`` must be copied
        out before calling this.
        """
        if len(programs) != config.num_procs:
            raise ConfigError(
                f"{config.num_procs} processors but {len(programs)} thread "
                "programs; they must match one-to-one"
            )
        if replace(config, seed=0) != replace(self.config, seed=0):
            raise ConfigError(
                "Machine.reset() requires a config identical to the "
                "construction config up to `seed`; rebuild for a new topology"
            )
        self.config = config
        self.validation_mode = validation_mode
        self.engine.reset()
        self.stats.reset()
        self.memory.reset(initial_memory or {}, record_versions=validation_mode)
        self.bus.reset()
        self.vendor.reset()
        self.cm = create_cm(config.gating, config.seed)
        self._timelines = [
            StateTimeline(ProcState.RUN) for _ in range(config.num_procs)
        ]
        for directory in self.dirs:
            directory.reset()
        for unit in self.gating_units:
            unit.reset(self.cm, config)
        for proc in self.procs:
            proc.reset()
        self._programs = list(programs)
        self._program_params = dict(program_params or {})
        self._barriers.clear()
        self._finished = 0
        self._raise_on_complete = False
        self.parallel_start = None
        self.parallel_end = None
        self.commit_log = []

    # ------------------------------------------------------------------
    # component access
    # ------------------------------------------------------------------
    def proc(self, proc_id: int) -> Processor:
        return self.procs[proc_id]

    def dir(self, dir_id: int) -> Directory:
        return self.dirs[dir_id]

    def timeline(self, proc_id: int) -> StateTimeline:
        return self._timelines[proc_id]

    def build_cache(self, proc_id: int) -> L1Cache:
        return L1Cache(self.config.cache, proc_id, self.stats)

    # ------------------------------------------------------------------
    # global services
    # ------------------------------------------------------------------
    def request_tid(self, proc: Processor, epoch: int) -> None:
        """Token request: bus to the vendor, vendor latency, bus back.

        The three hops are plain methods taking ``(proc, epoch)`` as
        event args rather than nested closures: every commit walks this
        chain, and closure/cell construction was measurable there.  The
        send/schedule sequence (and hence event ordering) is unchanged.
        """
        self.bus.send_ctrl(self._tid_at_vendor, proc, epoch)

    def _tid_at_vendor(self, proc: Processor, epoch: int) -> None:
        self.engine.schedule(self._vendor_latency, self._tid_grant, proc, epoch)

    def _tid_grant(self, proc: Processor, epoch: int) -> None:
        tid = self.vendor.issue(proc.proc_id)
        self.bus.send_ctrl(self._tid_deliver, proc, epoch, tid)

    def _tid_deliver(self, proc: Processor, epoch: int, tid: int) -> None:
        if not proc.accept_tid(epoch, tid):
            # Processor aborted while the grant was in flight.
            self.vendor.release(tid)
            self._c_stale_grants.add()

    def query_tx_site(self, target: int, cont: Callable[[str | None], None]) -> None:
        """TxInfoReq/Reply round-trip over the bus.

        The target's transaction identity is sampled at request-arrival
        time (what the hardware's reply would carry) and handed to
        ``cont`` after the return bus hop.
        """

        def at_target() -> None:
            site = self.proc(target).current_tx_site()
            self.bus.send_ctrl(cont, site)

        self.bus.send_ctrl(at_target)
        self._c_txinfo_requests.add()

    # -- barriers --------------------------------------------------------
    def barrier_arrive(
        self, name: str, proc_id: int, cont: Callable[[Any], None]
    ) -> None:
        state = self._barriers.setdefault(name, _BarrierState())
        state.waiters.append((proc_id, cont))
        if self._trace_on:
            self.trace.emit(
                self.engine.now, "barrier.arrive", name=name, proc=proc_id
            )
        if len(state.waiters) == self.config.num_procs:
            waiters = state.waiters
            state.waiters = []
            for _, waiter_cont in waiters:
                self.engine.schedule(1, waiter_cont, None)
            if self._trace_on:
                self.trace.emit(self.engine.now, "barrier.release", name=name)

    # -- parallel-section window ------------------------------------------
    def note_first_tx(self, time: int) -> None:
        if self.parallel_start is None:
            self.parallel_start = time

    def note_tx_end(self, time: int) -> None:
        if self.parallel_end is None or time > self.parallel_end:
            self.parallel_end = time

    # -- commit fan-out ----------------------------------------------------
    def notify_commit(self, proc_id: int) -> None:
        """Reset the committer's abort counters in every directory."""
        for unit in self.gating_units:
            unit.notify_commit(proc_id)

    def record_committed_tx(self, tx: TxState) -> None:
        self.commit_log.append(
            CommittedTx(
                tid=tx.tid,
                proc=tx.proc_id,
                site=tx.site,
                commit_time=self.engine.now,
                reads=tuple(tx.read_log or ()),
                writes=tuple(sorted(tx.writes.items())),
            )
        )

    def proc_finished(self, proc_id: int) -> None:
        self._finished += 1
        if self._trace_on:
            self.trace.emit(self.engine.now, "proc.finished", proc=proc_id)
        if self._raise_on_complete and self._finished >= self.config.num_procs:
            raise _AllThreadsFinished

    # ------------------------------------------------------------------
    # run loop
    # ------------------------------------------------------------------
    def run(self) -> MachineResult:
        """Execute until every thread program completes."""
        num = self.config.num_procs
        rngs = spawn_rngs(derive_seed(self.config.seed, "threads"), num)
        for proc_id, (program, rng) in enumerate(zip(self._programs, rngs)):
            ctx = ThreadContext(
                proc_id=proc_id,
                num_threads=num,
                rng=rng,
                params=dict(self._program_params),
            )
            self.procs[proc_id].start(program, ctx)

        # The dispatch loop is the whole-simulation hot loop.  In the
        # common (unbounded) case the engine's inlined drain loop runs
        # and the last-finishing program stops it via the
        # _AllThreadsFinished sentinel — no per-event method call or
        # completion comparison.  With a cycle budget, fall back to one
        # step() per event so the budget is enforced between events.
        max_cycles = self.config.max_cycles
        engine = self.engine
        # The sentinel is armed only for the unbounded loop: the step
        # loop must keep the historical ordering where a max_cycles
        # overrun raises even if the offending event finished the last
        # thread.
        self._raise_on_complete = max_cycles is None
        try:
            if max_cycles is None:
                engine.run()
                if self._finished < num:
                    raise DeadlockError(self._deadlock_report())
            else:
                step = engine.step
                while self._finished < num:
                    if not step():
                        raise DeadlockError(self._deadlock_report())
                    if engine.now > max_cycles:
                        raise SimulationError(
                            f"exceeded max_cycles={max_cycles} with "
                            f"{num - self._finished} threads unfinished"
                        )
        except _AllThreadsFinished:
            pass
        finally:
            self._raise_on_complete = False

        end = engine.now
        for timeline in self._timelines:
            timeline.finalize(end)

        if self.parallel_start is None:
            # No transactions at all: degenerate window.
            self.parallel_start = 0
            self.parallel_end = end
        elif self.parallel_end is None:
            raise SimulationError("transactions began but none committed")

        return MachineResult(
            config=self.config,
            end_cycle=end,
            parallel_start=self.parallel_start,
            parallel_end=self.parallel_end,
            timelines=self._timelines,
            stats=self.stats,
            commit_log=self.commit_log,
            memory_snapshot=self.memory.snapshot(),
        )

    def _deadlock_report(self) -> str:
        lines = [
            "event queue drained with unfinished threads "
            f"({self._finished}/{self.config.num_procs} done at "
            f"t={self.engine.now}):"
        ]
        for proc in self.procs:
            lines.append(f"  {proc!r}")
        for name, state in self._barriers.items():
            if state.waiters:
                lines.append(
                    f"  barrier {name!r} waiting: "
                    f"{sorted(p for p, _ in state.waiters)}"
                )
        return "\n".join(lines)
