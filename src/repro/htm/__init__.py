"""Scalable-TCC hardware transactional memory (systems S3+S4).

The processor model executes *thread programs* — generator coroutines
yielding architectural intents (:mod:`~repro.htm.ops`) — against the
memory hierarchy, with lazy versioning (stores buffered privately until
commit) and lazy conflict detection (aborts arrive as directory
invalidations at commit time), exactly the TCC execution model the
paper builds on.
"""

from .ops import Load, Store, Compute, TxOp, BarrierOp, transaction
from .program import ThreadContext, ThreadProgram
from .transaction import TxHandle, TxState, TxStatus
from .token import TokenVendor
from .processor import Processor
from .machine import Machine, MachineResult

__all__ = [
    "Load",
    "Store",
    "Compute",
    "TxOp",
    "BarrierOp",
    "transaction",
    "ThreadContext",
    "ThreadProgram",
    "TxHandle",
    "TxState",
    "TxStatus",
    "TokenVendor",
    "Processor",
    "Machine",
    "MachineResult",
]
