"""Architectural intents yielded by thread programs.

A thread program is a generator; every ``yield`` hands the processor an
intent and suspends until the processor has executed it with full
timing.  ``Load`` yields back the loaded value (data-dependent control
flow works naturally), the others yield ``None``.

Intents are deliberately minimal — the simulator models *memory system
behaviour*, not an ISA.  Straight-line computation between memory
references is abstracted as ``Compute(cycles)``, the standard
trace/intent-driven simulation idiom (one event instead of one event
per instruction keeps 16-core runs tractable in CPython; see the
optimization guide's "algorithmic optimization first").  The intent
classes are slotted but not frozen: workload bodies construct one per
yield, so they sit on the dispatch hot path alongside the protocol
messages, and frozen-dataclass construction (``object.__setattr__``
per field) was a measured cost there.  They are immutable by
convention — programs hand them to the processor and never touch them
again.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Generator, Any

from ..errors import WorkloadError

__all__ = ["Op", "Load", "Store", "Compute", "TxOp", "BarrierOp", "transaction"]


class Op:
    """Base class for all intents (useful for isinstance dispatch)."""

    __slots__ = ()


@dataclass(slots=True)
class Load(Op):
    """Read the 8-byte word at byte address ``addr``; yields the value.

    Inside a transaction the load is speculative: the line enters the
    transaction's read-set and a later conflicting commit aborts the
    attempt.  Loads see the transaction's own buffered stores
    (store-to-load forwarding).
    """

    addr: int


@dataclass(slots=True)
class Store(Op):
    """Write ``value`` to the word at ``addr``.

    Inside a transaction the store is buffered in the store-address
    FIFO (the paper's 1024-entry write buffer) and becomes globally
    visible only at commit flush.  Outside transactions it writes
    memory directly and must only target thread-private data.
    """

    addr: int
    value: int


@dataclass(slots=True)
class Compute(Op):
    """Spend ``cycles`` of pure computation (no memory traffic)."""

    cycles: int

    def __post_init__(self) -> None:
        if self.cycles < 0:
            raise WorkloadError(f"negative compute time: {self.cycles}")


@dataclass(slots=True)
class TxOp(Op):
    """Run ``body`` as one atomic transaction; yields ``tx.result``.

    ``body`` is called with a fresh :class:`~repro.htm.transaction.TxHandle`
    on *every attempt* and must return a generator yielding
    ``Load``/``Store``/``Compute`` intents.  Re-execution after an abort
    simply re-instantiates the generator, which is why transaction
    bodies must route all shared state through ``Load``/``Store`` and
    keep no external side effects.

    ``site`` is the static identity of the transaction — the program
    counter value of the instruction that started it, in the paper's
    terms (Section III).  The gating renewal check compares sites.
    """

    body: Callable[["Any"], Generator]
    site: str

    def __post_init__(self) -> None:
        if not callable(self.body):
            raise WorkloadError("transaction body must be callable")
        if not self.site:
            raise WorkloadError("transaction site id must be non-empty")


@dataclass(slots=True)
class BarrierOp(Op):
    """Block until every thread has reached the barrier named ``name``.

    Only valid at program level (not inside a transaction body).
    Spinning at a barrier consumes full run-mode power, per the paper's
    power model ("at synchronization points the processor consumes full
    run mode power while executing spin-locks").
    """

    name: str


def transaction(site: str) -> Callable:
    """Decorator sugar: turn a body generator function into a TxOp factory.

    Example::

        @transaction("deposit")
        def deposit(tx, account_addr, amount):
            balance = yield Load(account_addr)
            yield Store(account_addr, balance + amount)

        # inside a thread program:
        yield deposit(account_addr=a, amount=5)
    """

    def wrap(body_fn: Callable) -> Callable[..., TxOp]:
        def make(*args: Any, **kwargs: Any) -> TxOp:
            def bound(tx: Any) -> Generator:
                return body_fn(tx, *args, **kwargs)

            return TxOp(bound, site)

        make.__name__ = f"tx_{getattr(body_fn, '__name__', site)}"
        make.site = site  # type: ignore[attr-defined]
        return make

    return wrap
