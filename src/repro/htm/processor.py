"""The processor model: in-order core executing a thread program.

One :class:`Processor` owns one thread program, one private L1 cache
and one power-state timeline.  It is a message-driven FSM: intents from
the program generator are executed with timing against the memory
system, and asynchronous protocol messages (invalidations, Stop-Clock,
Turn-On, flush acknowledgements) arrive as bus-delivered callbacks.

Transactional execution model (TCC)
-----------------------------------
* *Lazy versioning* — stores are buffered in the per-attempt store
  buffer (:class:`~repro.htm.transaction.TxState`); memory and caches
  never see speculative data.
* *Lazy conflict detection* — the only abort source is a directory
  invalidation for a speculatively-read line (plus the wake-up
  self-abort of the gating protocol).
* *Re-execution* — an abort discards the attempt's ``TxState`` and
  re-instantiates the body generator.

Epoch discipline
----------------
Every abort bumps ``self._epoch``; every deferred continuation carries
the epoch it was scheduled in and becomes a no-op if stale.  This is
how "cancel all in-flight work" is implemented without hunting down
individual events (the engine's lazy cancellation plus the epoch guard
are belt and braces).

Clock gating (Section V of the paper)
-------------------------------------
A Stop-Clock command rides with the aborting invalidation; the
processor freezes (no events scheduled, power state GATED) until any
directory delivers Turn-On.  Rollback is performed at freeze time —
while frozen the processor does nothing, so performing the paper's
"Self Abort" at wake-up or at freeze is timing-equivalent; we do it at
freeze and the wake-up merely restarts the attempt.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator

from ..errors import ProtocolError, WorkloadError
from ..mem.messages import FillReply, FillRequest, FlushDone, FlushRequest, Invalidation, TurnOn
from ..power.states import ProcState
from ..sim.rng import derive_seed_from, seed_prefix
from .ops import BarrierOp, Compute, Load, Op, Store, TxOp
from .program import ThreadContext, ThreadProgram
from .transaction import TxHandle, TxState, TxStatus

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .machine import Machine

__all__ = ["Processor"]


class Processor:
    """One single-issue in-order core with TCC support."""

    def __init__(self, proc_id: int, machine: "Machine"):
        self.proc_id = proc_id
        self._m = machine
        self._engine = machine.engine
        self._bus = machine.bus
        self._memory = machine.memory
        self._addr_map = machine.addr_map
        self._vendor = machine.vendor
        self._stats = machine.stats
        self._trace = machine.trace
        self._cm = machine.cm
        self.cache = machine.build_cache(proc_id)
        self.timeline = machine.timeline(proc_id)

        self._program_gen: Generator | None = None
        self._program_send = None  # bound .send of the program generator
        self._ctx: ThreadContext | None = None

        # transactional state
        self._txop: TxOp | None = None
        self._tx: TxState | None = None
        self._tx_gen: Generator | None = None
        self._tx_send = None  # bound .send of the live attempt's generator
        self._tx_index = -1
        self._tx_seed_index = -1
        self._tx_seed = 0
        self._tx_seed_prefix = seed_prefix(machine.config.seed, "tx", proc_id)
        self._attempt = 0
        self._tx_first_start = 0
        self._commit_start = 0
        self._consecutive_aborts = 0
        self._epoch = 0
        #: directories involved in the in-flight commit, computed once
        #: at TID-accept time (the footprint is frozen from then on)
        self._commit_dirs: list[int] | None = None
        #: (line, addr, epoch, in_tx, req_id) of the outstanding miss
        self._awaiting_fill: tuple[int, int, int, bool, int] | None = None
        self._fill_seq = 0
        self._restart_event = None

        # gating state
        self.gated = False
        self._gated_by: set[int] = set()
        self._gate_start = 0

        self.finished = False
        self._prefix = f"proc{proc_id}"

        # Hot-path bindings: counter/histogram handles resolved once
        # (see repro.sim.stats — no per-access f-string keys), plus the
        # constant hit latency every cache access schedules with.
        stats = machine.stats
        prefix = self._prefix
        self._hit_latency = machine.config.cache.hit_latency
        # Bound-method fast paths: the per-op dispatch loop goes through
        # these thousands of times per run, so the two-level attribute
        # chains (engine/bus/map/cache lookups) are resolved once here.
        self._schedule = self._engine.schedule
        self._check_word_addr = machine.addr_map.check_word_addr
        self._line_of = machine.addr_map.line_of
        self._home_of_line = machine.addr_map.home_of_line
        self._lines_by_home = machine.addr_map.lines_by_home
        # Constants for the inlined per-access address math (the checked
        # slow path _check_word_addr re-raises with the full message).
        self._mem_bytes = machine.addr_map.memory_bytes
        self._line_bytes = machine.addr_map.line_bytes
        self._num_dirs = machine.addr_map.num_dirs
        self._dirs = machine.dirs
        self._read_word = machine.memory.read_word
        self._send_ctrl = machine.bus.send_ctrl
        self._send_data = machine.bus.send_data
        self._dir_of = machine.dir
        self._tl_set_state = self.timeline.set_state
        # Mirror of the timeline's current state: set_state with an
        # unchanged state is a recorded no-op, so _set_state can skip
        # the call entirely — most ops run RUN → RUN.  Must start as
        # the timeline's initial state (ProcState.RUN).
        self._cur_state = ProcState.RUN
        self._cache_touch = self.cache.touch
        self._cache_fill = self.cache.fill
        #: footprint of the in-flight commit, computed once at TID
        #: accept (it cannot grow while COMMITTING) and shared by the
        #: involved-directory pass and the finalize cleanup
        self._commit_footprint: set[int] | None = None
        # Tracing is decided per run; a disabled trace must cost
        # nothing, not even the kwargs dict an emit() call builds.
        self._trace_on = self._trace.enabled
        self._c_cache_hits = stats.counter(f"{prefix}.cache.hits")
        self._c_cache_misses = stats.counter(f"{prefix}.cache.misses")
        self._c_stale_fills = stats.counter(f"{prefix}.stale_fills")
        self._c_proc_commits = stats.counter(f"{prefix}.commits")
        self._c_proc_aborts = stats.counter(f"{prefix}.aborts")
        self._c_tx_attempts = stats.counter("tx.attempts")
        self._c_tx_commit_attempts = stats.counter("tx.commit_attempts")
        self._c_tx_commits = stats.counter("tx.commits")
        self._c_aborts_conflict = stats.counter("tx.aborts.conflict")
        self._c_aborts_self = stats.counter("tx.aborts.self")
        self._c_aborts_total = stats.counter("tx.aborts.total")
        self._c_wasted_cycles = stats.counter("tx.wasted_cycles")
        self._c_aborts_while_committing = stats.counter(
            "tx.aborts_while_committing"
        )
        self._c_gated = stats.counter("gating.gated")
        self._c_redundant_on = stats.counter("gating.redundant_on")
        self._c_wakeups = stats.counter("gating.wakeups")
        self._h_attempts_to_commit = stats.histogram("tx.attempts_to_commit")
        self._h_tx_latency = stats.histogram("tx.latency")
        self._h_commit_phase = stats.histogram("tx.commit_phase")
        self._h_gated_cycles = stats.histogram("gating.gated_cycles")

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Restore the just-constructed state for a machine reset.

        Called by :meth:`repro.htm.machine.Machine.reset` after the
        machine has installed the member's config, contention manager
        and fresh timelines — seed-dependent bindings (the tx seed
        prefix, the CM) are recomputed from the machine here.  The
        structural fast-path bindings (engine/bus/memory/directory
        methods, counter handles, config-derived latencies) survive:
        those objects are reset in place and the non-seed config is
        identical by the reset contract.
        """
        m = self._m
        self.cache.reset()
        self._cm = m.cm
        self.timeline = m.timeline(self.proc_id)
        self._tl_set_state = self.timeline.set_state
        self._cur_state = ProcState.RUN
        self._tx_seed_prefix = seed_prefix(m.config.seed, "tx", self.proc_id)

        self._program_gen = None
        self._program_send = None
        self._ctx = None
        self._txop = None
        self._tx = None
        self._tx_gen = None
        self._tx_send = None
        self._tx_index = -1
        self._tx_seed_index = -1
        self._tx_seed = 0
        self._attempt = 0
        self._tx_first_start = 0
        self._commit_start = 0
        self._consecutive_aborts = 0
        self._epoch = 0
        self._commit_dirs = None
        self._commit_footprint = None
        self._awaiting_fill = None
        self._fill_seq = 0
        self._restart_event = None
        self.gated = False
        self._gated_by = set()
        self._gate_start = 0
        self.finished = False

    def start(self, program: ThreadProgram, ctx: ThreadContext) -> None:
        """Bind and launch the thread program at the current cycle."""
        self._ctx = ctx
        self._program_gen = program.generate(ctx)
        self._program_send = self._program_gen.send
        self._engine.schedule(0, self._advance_program, None)

    def _set_state(self, state: ProcState) -> None:
        if state is not self._cur_state:
            self._cur_state = state
            self._tl_set_state(self._engine.now, state)

    def _finish_program(self) -> None:
        # A finished thread spins at the final synchronization point at
        # full run power until the parallel section ends (Section VII).
        self.finished = True
        self._set_state(ProcState.RUN)
        self._m.proc_finished(self.proc_id)

    # ------------------------------------------------------------------
    # program-level execution
    # ------------------------------------------------------------------
    def _advance_program(self, value: Any) -> None:
        try:
            op = self._program_send(value)
        except StopIteration:
            self._finish_program()
            return
        self._dispatch_program_op(op)

    def _dispatch_program_op(self, op: Op) -> None:
        if isinstance(op, TxOp):
            self._begin_tx(op)
        elif isinstance(op, Compute):
            self._set_state(ProcState.RUN)
            self._schedule(op.cycles, self._advance_program, None)
        elif isinstance(op, Load):
            self._plain_load(op)
        elif isinstance(op, Store):
            self._plain_store(op)
        elif isinstance(op, BarrierOp):
            self._set_state(ProcState.RUN)
            self._m.barrier_arrive(op.name, self.proc_id, self._advance_program)
        else:
            raise WorkloadError(f"unknown program-level op: {op!r}")

    # -- non-transactional accesses (setup / thread-private data) ------
    def _plain_load(self, op: Load) -> None:
        addr = op.addr
        if addr < 0 or addr + 8 > self._mem_bytes or addr & 7:
            self._check_word_addr(addr)  # raises the detailed error
        line = addr // self._line_bytes
        entry = self._cache_touch(line)
        if entry is not None and not entry.partial:
            self._c_cache_hits.value += 1
            self._schedule(self._hit_latency, self._plain_load_done, addr)
        else:
            self._c_cache_misses.value += 1
            self._set_state(ProcState.MISS)
            self._send_fill(line, addr, in_tx=False)

    def _plain_load_done(self, addr: int) -> None:
        value = self._read_word(addr)
        self._set_state(ProcState.RUN)
        self._advance_program(value)

    def _plain_store(self, op: Store) -> None:
        addr = op.addr
        if addr < 0 or addr + 8 > self._mem_bytes or addr & 7:
            self._check_word_addr(addr)
        # Non-transactional stores bypass coherence: they are only legal
        # for thread-private data (documented restriction), so the write
        # is applied functionally and cached locally.
        self._memory.write_word(addr, op.value, writer_tid=-1)
        self._cache_fill(addr // self._line_bytes, partial=True)
        self._set_state(ProcState.RUN)
        self._schedule(self._hit_latency, self._advance_program, None)

    # ------------------------------------------------------------------
    # transactional execution
    # ------------------------------------------------------------------
    def _begin_tx(self, op: TxOp) -> None:
        self._txop = op
        self._tx_index += 1
        self._attempt = 0
        self._tx_first_start = self._engine.now
        self._m.note_first_tx(self._engine.now)
        self._start_attempt()

    def _tx_rng_seed(self) -> int:
        # The derived seed depends only on (config.seed, proc, tx_index),
        # so retries of the same transaction reuse it.  The TxHandle
        # builds a *fresh* generator from it on first use per attempt,
        # so every attempt sees an identical stream.  The FNV prefix
        # over (seed, "tx", proc) is hashed once (constructor); only
        # the tx_index suffix is folded per transaction — identical
        # output to derive_seed(seed, "tx", proc, tx_index).
        if self._tx_seed_index != self._tx_index:
            self._tx_seed_index = self._tx_index
            self._tx_seed = derive_seed_from(self._tx_seed_prefix, self._tx_index)
        return self._tx_seed

    def _start_attempt(self) -> None:
        # Drop the handle first: once this callback runs (or is reached
        # directly), the restart event must never be cancelled again —
        # the engine's reuse pool may hand the object to a new event.
        self._restart_event = None
        if self.gated:
            # A Stop-Clock raced with a scheduled retry; the wake-up
            # will restart the attempt instead.
            return
        op = self._txop
        if op is None:  # pragma: no cover - defensive
            raise ProtocolError(f"proc {self.proc_id}: attempt with no TxOp")
        self._attempt += 1
        self._epoch += 1
        handle = TxHandle(
            self.proc_id,
            self._ctx.num_threads,
            op.site,
            self._attempt,
            self._tx_rng_seed(),
        )
        tx = TxState(
            self.proc_id,
            op.site,
            self._tx_index,
            self._attempt,
            self._engine.now,
            handle,
        )
        if self._m.validation_mode:
            tx.read_log = []
        self._tx = tx
        gen = op.body(handle)
        if not hasattr(gen, "send"):
            raise WorkloadError(
                f"transaction body for site {op.site!r} must return a "
                f"generator (got {type(gen).__name__})"
            )
        self._tx_gen = gen
        self._tx_send = gen.send
        self._c_tx_attempts.value += 1
        if self._trace_on:
            self._trace.emit(
                self._engine.now,
                "tx.begin",
                proc=self.proc_id,
                site=op.site,
                attempt=self._attempt,
            )
        self._set_state(ProcState.RUN)
        self._advance_tx(None)

    def _advance_tx(self, value: Any) -> None:
        try:
            op = self._tx_send(value)
        except StopIteration:
            self._begin_commit()
            return
        if isinstance(op, Load):
            self._tx_load(op)
        elif isinstance(op, Store):
            self._tx_store(op)
        elif isinstance(op, Compute):
            self._set_state(ProcState.RUN)
            self._schedule(op.cycles, self._tx_cont, self._epoch)
        elif isinstance(op, (TxOp, BarrierOp)):
            raise WorkloadError(
                f"{type(op).__name__} is not allowed inside a transaction "
                f"(site {self._tx.site!r}); TCC transactions are flat"
            )
        else:
            raise WorkloadError(f"unknown transactional op: {op!r}")

    def _tx_cont(self, epoch: int) -> None:
        if epoch != self._epoch:
            return
        self._advance_tx(None)

    # -- transactional loads -------------------------------------------
    def _tx_load(self, op: Load) -> None:
        addr = op.addr
        if addr < 0 or addr + 8 > self._mem_bytes or addr & 7:
            self._check_word_addr(addr)
        tx = self._tx
        forwarded = tx.writes.get(addr)  # store-to-load forwarding
        hit_latency = self._hit_latency
        if forwarded is not None:
            # Reading our own buffered store: no read-set registration,
            # no conflict exposure.
            self._schedule(
                hit_latency, self._tx_forwarded_done, self._epoch, forwarded
            )
            return

        line = addr // self._line_bytes
        # Register at issue time: an invalidation arriving between issue
        # and data return must abort this attempt (fill/flush race).
        tx.read_lines.add(line)
        entry = self._cache_touch(line)
        # A partial (store-allocated) line cannot serve loads of words
        # the transaction did not write: the data was never fetched and
        # the processor is not registered as a sharer (the fuzzer found
        # the resulting stale-read serializability hole).
        if entry is not None and not entry.partial:
            entry.spec_read = True
            self._c_cache_hits.value += 1
            self._schedule(hit_latency, self._tx_load_done, self._epoch, addr)
        else:
            self._c_cache_misses.value += 1
            self._set_state(ProcState.MISS)
            self._send_fill(line, addr, in_tx=True)

    def _tx_load_done(self, epoch: int, addr: int) -> None:
        if epoch != self._epoch:
            return
        value = self._read_word(addr)
        tx = self._tx
        if tx.read_log is not None:
            tx.read_log.append((addr, value))
        self._advance_tx(value)

    def _tx_forwarded_done(self, epoch: int, value: int) -> None:
        if epoch != self._epoch:
            return
        self._advance_tx(value)

    def _send_fill(self, line: int, addr: int, in_tx: bool) -> None:
        """Issue a fill request for an L1 miss (one outstanding at most)."""
        self._fill_seq += 1
        self._awaiting_fill = (line, addr, self._epoch, in_tx, self._fill_seq)
        home = self._dirs[line % self._num_dirs]
        self._send_ctrl(
            home.receive_fill_request,
            FillRequest(self.proc_id, line, self._engine.now, self._fill_seq),
        )

    def receive_fill_reply(self, msg: FillReply) -> None:
        """Bus-arrival handler for the data of an earlier L1 miss.

        The request-id match is load-bearing: a reply belonging to an
        aborted attempt must not satisfy a newer attempt's miss on the
        same line (its data may predate a commit whose invalidation the
        newer attempt — not yet registered as a sharer — never saw).
        """
        pending = self._awaiting_fill
        if (
            pending is None
            or pending[4] != msg.req_id
            or pending[0] != msg.line
            or pending[2] != self._epoch
        ):
            self._c_stale_fills.add()
            return
        line, addr, epoch, in_tx, _req_id = pending
        self._awaiting_fill = None
        self._cache_fill(line)
        self._set_state(ProcState.RUN)
        # The consuming load still pays the load-to-use latency after
        # the fill returns (data forwarding into the pipeline).
        hit_latency = self._hit_latency
        if in_tx:
            if self._tx is not None and line in self._tx.read_lines:
                self.cache.mark_spec_read(line)
            self._schedule(hit_latency, self._tx_load_done, epoch, addr)
        else:
            self._schedule(hit_latency, self._plain_load_done, addr)

    # -- transactional stores --------------------------------------------
    def _tx_store(self, op: Store) -> None:
        addr = op.addr
        if addr < 0 or addr + 8 > self._mem_bytes or addr & 7:
            self._check_word_addr(addr)
        line = addr // self._line_bytes
        self._tx.buffer_store(addr, op.value, line)
        # Write-allocate into the store buffer: the line is installed
        # locally without any directory traffic (hence *partial* — it
        # holds only the written words); data merges at commit.
        self._cache_fill(line, partial=True)
        self.cache.mark_spec_written(line)
        self._schedule(self._hit_latency, self._tx_cont, self._epoch)

    # ------------------------------------------------------------------
    # commit protocol (processor side)
    # ------------------------------------------------------------------
    def _begin_commit(self) -> None:
        tx = self._tx
        tx.status = TxStatus.COMMITTING
        self._commit_start = self._engine.now
        self._set_state(ProcState.COMMIT)
        self._c_tx_commit_attempts.value += 1
        if self._trace_on:
            self._trace.emit(
                self._engine.now, "tx.commit_request", proc=self.proc_id,
                site=tx.site,
            )
        self._m.request_tid(self, self._epoch)

    def accept_tid(self, epoch: int, tid: int) -> bool:
        """Token-vendor grant arrival; False rejects a stale grant."""
        if epoch != self._epoch or self._tx is None or not self._tx.live:
            return False
        tx = self._tx
        tx.tid = tid
        # The footprint cannot grow once the tx is COMMITTING, so it and
        # the involved-directory set are computed once here and reused
        # by the finalize (and abort-while-spinning) unmark pass.
        footprint = tx.read_lines | tx.write_lines
        self._commit_footprint = footprint
        home_of = self._home_of_line
        self._commit_dirs = sorted({home_of(line) for line in footprint})
        dirs = self._dirs
        for dir_id in self._commit_dirs:
            dirs[dir_id].mark_commit(self.proc_id)
        self._vendor.wait_for_turn(tid, self._commit_go, epoch, tid)
        return True

    def _commit_go(self, epoch: int, tid: int) -> None:
        """Completion-barrier release: all older TIDs have finished."""
        if epoch != self._epoch:
            return
        tx = self._tx
        if tx is None or tx.tid != tid:  # pragma: no cover - defensive
            raise ProtocolError(f"commit-go for unknown TID {tid}")
        groups = self._lines_by_home(tx.write_lines)
        if not groups:
            self._commit_finalize()
            return
        tx.flush_acks_pending = len(groups)
        now = self._engine.now
        send_data = self._send_data
        all_writes = sorted(tx.writes.items())  # once, not per directory
        if len(groups) == 1:
            # Single homed directory (every commit on a 1-directory
            # machine, and most small transactions): the whole sorted
            # store buffer is that directory's flush body.
            dir_id, lines = next(iter(groups.items()))
            req = FlushRequest(
                self.proc_id, tid, tuple(lines), tuple(all_writes), now, tx.site
            )
            send_data(self._dirs[dir_id].receive_flush_request, req)
            return
        # Multi-directory commit: partition the sorted store buffer in
        # one pass (order within each directory stays address-sorted),
        # instead of re-filtering all writes once per directory.
        line_of = self._line_of
        home_of = self._home_of_line
        writes_by_dir: dict[int, list[tuple[int, int]]] = {d: [] for d in groups}
        for pair in all_writes:
            writes_by_dir[home_of(line_of(pair[0]))].append(pair)
        for dir_id, lines in sorted(groups.items()):
            req = FlushRequest(
                self.proc_id,
                tid,
                tuple(lines),
                tuple(writes_by_dir[dir_id]),
                now,
                tx.site,
            )
            send_data(self._dirs[dir_id].receive_flush_request, req)

    def receive_flush_done(self, msg: FlushDone) -> None:
        tx = self._tx
        if tx is None or tx.status is not TxStatus.COMMITTING or tx.tid != msg.tid:
            raise ProtocolError(
                f"proc {self.proc_id}: FlushDone for TID {msg.tid} but no "
                "matching in-flight commit (post-barrier flushes must not abort)"
            )
        tx.flush_acks_pending -= 1
        if tx.flush_acks_pending == 0:
            self._commit_finalize()

    def _commit_finalize(self) -> None:
        tx = self._tx
        now = self._engine.now
        tx.status = TxStatus.COMMITTED
        self.cache.clear_speculative(self._commit_footprint, commit=True)
        dirs = self._dirs
        for dir_id in self._commit_dirs:
            dirs[dir_id].unmark_commit(self.proc_id)
        self._commit_dirs = None
        self._commit_footprint = None
        self._m.notify_commit(self.proc_id)
        self._vendor.finish(tx.tid)
        self._m.note_tx_end(now)
        if self._m.validation_mode:
            self._m.record_committed_tx(tx)

        self._c_tx_commits.value += 1
        self._c_proc_commits.value += 1
        self._h_attempts_to_commit.record(tx.attempt)
        self._h_tx_latency.record(now - self._tx_first_start)
        self._h_commit_phase.record(now - self._commit_start)
        if self._trace_on:
            self._trace.emit(
                now, "tx.commit", proc=self.proc_id, site=tx.site, tid=tx.tid,
                attempt=tx.attempt,
            )

        result = tx.handle.result
        self._consecutive_aborts = 0
        self._tx = None
        self._tx_gen = None
        self._tx_send = None
        self._txop = None
        self._set_state(ProcState.RUN)
        self._advance_program(result)

    # ------------------------------------------------------------------
    # abort and gating
    # ------------------------------------------------------------------
    def would_abort_on(self, lines) -> bool:
        """Directory-side probe: does ``lines`` conflict with the live tx?"""
        tx = self._tx
        return tx is not None and tx.live and tx.conflicts_with(lines)

    def receive_invalidation(self, msg: Invalidation, gate: bool) -> None:
        """Bus-arrival handler for a committed-line invalidation."""
        for line in msg.lines:
            self.cache.invalidate(line)
        if self.gated:
            # Already frozen; the directory-side table was updated, and
            # our rollback already happened at freeze time.
            if gate:
                self._gated_by.add(msg.directory)
            return
        tx = self._tx
        conflict = tx is not None and tx.live and tx.conflicts_with(msg.lines)
        if gate:
            self._abort_tx(
                conflict=conflict,
                gate=True,
                from_dir=msg.directory,
                aborter=msg.committer,
            )
        elif conflict:
            self._abort_tx(
                conflict=True,
                gate=False,
                from_dir=msg.directory,
                aborter=msg.committer,
            )

    def _abort_tx(
        self,
        conflict: bool,
        gate: bool,
        from_dir: int | None = None,
        aborter: int | None = None,
    ) -> None:
        now = self._engine.now
        tx = self._tx
        if tx is None or not tx.live:
            # Stop-Clock caught us between attempts (retry scheduled but
            # not started): freeze; the wake-up restarts the attempt.
            if gate:
                self._enter_gated(from_dir)
            return

        if tx.status is TxStatus.COMMITTING:
            if tx.flush_acks_pending:
                raise ProtocolError(
                    f"proc {self.proc_id} aborted mid-flush (TID {tx.tid}); "
                    "the completion barrier should make this impossible"
                )
            if tx.tid is not None:
                for dir_id in self._commit_dirs:
                    self._dirs[dir_id].unmark_commit(self.proc_id)
                self._commit_dirs = None
                self._commit_footprint = None
                self._vendor.release(tx.tid)
                self._c_aborts_while_committing.add()

        # Counter semantics (see repro.sim.stats "counts versus sums"):
        # tx.aborts.{conflict,self} and tx.aborts.total are *event
        # counts* (one per abort); tx.wasted_cycles is the paired
        # *cycle sum* — the cycles this attempt had invested when it
        # died.  Rates divide counts by tx.attempts; never divide the
        # cycle sum by anything but its paired count.
        if conflict:
            kind = "conflict"
            self._c_aborts_conflict.value += 1
        else:
            kind = "self"
            self._c_aborts_self.value += 1
        self._c_aborts_total.value += 1
        self._c_proc_aborts.value += 1
        self._c_wasted_cycles.value += now - tx.start_time
        self._consecutive_aborts += 1
        self._epoch += 1
        self._awaiting_fill = None
        if self._tx_gen is not None:
            self._tx_gen.close()
        self.cache.clear_speculative(tx.footprint_lines, commit=False)
        tx.status = TxStatus.ABORTED
        self._tx = None
        self._tx_gen = None
        self._tx_send = None
        if self._trace_on:
            self._trace.emit(
                now,
                "tx.abort",
                proc=self.proc_id,
                site=self._txop.site,
                cause=kind,
                aborter=aborter,
                directory=from_dir,
                gated=gate,
            )

        if gate:
            self._enter_gated(from_dir)
        else:
            delay = self._m.config.commit.abort_drain_cycles + max(
                0, self._cm.retry_delay(self.proc_id, self._consecutive_aborts)
            )
            self._set_state(ProcState.RUN)
            self._restart_event = self._engine.schedule(
                max(1, delay), self._start_attempt
            )

    def _enter_gated(self, from_dir: int | None) -> None:
        if self._txop is None:
            raise ProtocolError(
                f"proc {self.proc_id} gated with no transaction in progress"
            )
        if self._restart_event is not None:
            self._restart_event.cancel()
            self._restart_event = None
        self.gated = True
        self._gated_by = {from_dir} if from_dir is not None else set()
        self._gate_start = self._engine.now
        self._set_state(ProcState.GATED)
        self._c_gated.add()
        if self._trace_on:
            self._trace.emit(
                self._engine.now, "gate.off", proc=self.proc_id,
                directory=from_dir,
            )

    def receive_turn_on(self, msg: TurnOn) -> None:
        """Bus-arrival handler for the directory's "on" command."""
        if not self.gated:
            self._c_redundant_on.add()
            return
        now = self._engine.now
        self.gated = False
        self._gated_by.clear()
        self._c_wakeups.add()
        self._h_gated_cycles.record(now - self._gate_start)
        if self._trace_on:
            self._trace.emit(
                now, "gate.on", proc=self.proc_id, directory=msg.directory
            )
        self._set_state(ProcState.RUN)
        # The paper's "Self Abort" happened (timing-equivalently) at
        # freeze; waking simply restarts the transaction.
        self._start_attempt()

    # ------------------------------------------------------------------
    # gating-protocol queries
    # ------------------------------------------------------------------
    def attempt_age(self) -> int:
        """Cycles the live attempt has invested (its *momentum*).

        Zero when no transaction is live.  Sampled by the directory at
        abort time for momentum-aware contention management
        (Section VI's future work).
        """
        tx = self._tx
        if tx is not None and tx.live:
            return self._engine.now - tx.start_time
        return 0

    def current_tx_site(self) -> str | None:
        """TxInfoReq reply: the live transaction's site, or None.

        A gated processor replies null (the paper: "the reply to the
        TxInfoReq message will be null and therefore the comparator
        output will be zero, turning the victim processor on").
        """
        if self.gated:
            return None
        tx = self._tx
        if tx is not None and tx.live:
            return tx.site
        return None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        tx = f" tx={self._tx.site}#{self._tx.attempt}" if self._tx else ""
        flags = " GATED" if self.gated else (" done" if self.finished else "")
        return f"<Processor {self.proc_id}{tx}{flags}>"
