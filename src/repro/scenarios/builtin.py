"""Built-in named suites: the paper's figure grids and extensions, as data.

Each entry is a factory ``(scale, seed) -> ScenarioSuite`` so the same
grid can run at unit-test (``tiny``), benchmark (``small``) or
paper-approximation (``medium``) size.  ``repro suite list/describe/run``
is the CLI surface; :func:`get_suite` is the programmatic one.
"""

from __future__ import annotations

from typing import Callable

from ..errors import WorkloadError
from ..harness.sweep import DEFAULT_W0_VALUES
from ..workloads.registry import PAPER_APPS, STAMP_APPS
from .spec import ScenarioSpec
from .suite import ScenarioSuite, suite

__all__ = ["available_suites", "get_suite", "register_suite", "suite_help"]

_EVAL_PROCS = (4, 8, 16)


def _base(workload: str, scale: str, seed: int, **kw: object) -> ScenarioSpec:
    return ScenarioSpec(workload=workload, scale=scale, seed=seed, **kw)


def _paper_fig7(scale: str, seed: int) -> ScenarioSuite:
    return suite(
        "paper-fig7",
        _base("genome", scale, seed),
        axes={
            "workload": PAPER_APPS,
            "threads": _EVAL_PROCS,
            "gating": (False, True),
            "w0": DEFAULT_W0_VALUES,
        },
        description=(
            "Fig. 7 sensitivity grid: speed-up vs W0 and Np for the "
            "paper's three applications (ungated baselines are shared "
            "across the W0 axis by job-digest dedup)"
        ),
    )


def _paper_eval(scale: str, seed: int) -> ScenarioSuite:
    return suite(
        "paper-eval",
        _base("genome", scale, seed),
        axes={
            "workload": PAPER_APPS,
            "threads": _EVAL_PROCS,
            "gating": (False, True),
        },
        description=(
            "Figs. 4-6 evaluation grid: every (application x processor "
            "count) point with and without clock gating at W0=8"
        ),
    )


def _stamp_extended(scale: str, seed: int) -> ScenarioSuite:
    return suite(
        "stamp-extended",
        _base("genome", scale, seed, threads=8),
        axes={
            "workload": STAMP_APPS,
            "gating": (False, True),
        },
        description=(
            "all six STAMP-style kernels (the paper's three plus "
            "kmeans/vacation/labyrinth) gated vs ungated at 8 cores — "
            "the contention-profile spread from read-mostly to "
            "long-transaction worst case"
        ),
    )


def _cm_shootout(scale: str, seed: int) -> ScenarioSuite:
    return suite(
        "cm-shootout",
        _base("intruder", scale, seed),
        axes={
            "workload": ("intruder", "labyrinth"),
            "cm": ("gating-aware", "immediate", "linear", "exponential",
                   "polite", "momentum"),
            "gating": (False, True),
        },
        description=(
            "contention-manager comparison on the two highest-abort "
            "kernels, gated vs ungated"
        ),
    )


def _micro_contention(scale: str, seed: int) -> ScenarioSuite:
    return suite(
        "micro-contention",
        _base("counter", scale, seed),
        axes={
            "workload": ("counter", "bank", "array_walk", "llist"),
            "threads": (4, 8),
            "gating": (False, True),
        },
        description=(
            "microbenchmark contention ladder from zero-conflict "
            "(array_walk) to maximum (counter)"
        ),
    )


def _smoke(scale: str, seed: int) -> ScenarioSuite:
    return suite(
        "smoke",
        _base("counter", scale, seed, threads=2),
        axes={
            "gating": (False, True),
            "w0": (2, 8),
        },
        description=(
            "4 scenarios / 3 unique jobs in seconds — the CI end-to-end "
            "check that suite expansion, dedup and the result cache work"
        ),
    )


_FACTORIES: dict[str, tuple[Callable[[str, int], ScenarioSuite], str]] = {
    "paper-fig7": (_paper_fig7, "small"),
    "paper-eval": (_paper_eval, "small"),
    "stamp-extended": (_stamp_extended, "small"),
    "cm-shootout": (_cm_shootout, "small"),
    "micro-contention": (_micro_contention, "small"),
    "smoke": (_smoke, "tiny"),
}


def available_suites() -> list[str]:
    return sorted(_FACTORIES)


def register_suite(
    name: str,
    factory: Callable[[str, int], ScenarioSuite],
    default_scale: str = "small",
) -> None:
    """Register a custom named suite (overwrites allowed)."""
    if not name:
        raise WorkloadError("suite name must be non-empty")
    _FACTORIES[name] = (factory, default_scale)


def get_suite(
    name: str, scale: str | None = None, seed: int = 0
) -> ScenarioSuite:
    """Instantiate a named suite (``scale=None`` uses its default)."""
    try:
        factory, default_scale = _FACTORIES[name]
    except KeyError:
        raise WorkloadError(
            f"unknown suite {name!r}; available: "
            f"{', '.join(available_suites())}"
        ) from None
    return factory(scale if scale is not None else default_scale, seed)


def suite_help() -> list[tuple[str, int, str]]:
    """(name, size, description) rows for every registered suite."""
    rows = []
    for name in available_suites():
        instantiated = get_suite(name)
        rows.append((name, instantiated.size, instantiated.description))
    return rows
