"""Declarative scenarios: specs, suites, and spec-driven execution.

The scenario layer turns evaluation matrices into *data*:

* :class:`~repro.scenarios.spec.ScenarioSpec` — one run, fully
  described (workload + schema-validated parameters + machine shape +
  contention management), with a stable content digest and exact JSON
  round-trip.
* :class:`~repro.scenarios.suite.ScenarioSuite` — a base spec plus
  axes; expansion takes the cartesian product and validates every
  point before anything is simulated.
* :mod:`~repro.scenarios.runner` — lowers specs to
  :class:`~repro.exec.jobs.RunJob` values and submits the whole grid
  as one batch through the executor and its content-addressed cache.
* :mod:`~repro.scenarios.builtin` — the paper's figure grids (and
  extensions over the new kernels) as named suites:
  ``repro suite run --suite paper-fig7``.
"""

from __future__ import annotations

from .builtin import available_suites, get_suite, register_suite, suite_help
from .runner import (
    PlanEntry,
    ScenarioResult,
    Shard,
    SuitePlan,
    SuiteRun,
    plan_suite,
    run_specs,
    run_suite,
)
from .spec import SCENARIO_SCHEMA_VERSION, ScenarioSpec, scenario
from .suite import ScenarioSuite, SpecListSuite, load_suite_file, suite

__all__ = [
    "SCENARIO_SCHEMA_VERSION",
    "ScenarioSpec",
    "scenario",
    "ScenarioSuite",
    "SpecListSuite",
    "suite",
    "load_suite_file",
    "ScenarioResult",
    "SuiteRun",
    "Shard",
    "PlanEntry",
    "SuitePlan",
    "plan_suite",
    "run_specs",
    "run_suite",
    "available_suites",
    "get_suite",
    "register_suite",
    "suite_help",
]
