"""Suite execution: lower scenarios to jobs, run them through the cache.

The runner is a thin, deterministic bridge between the declarative
layer and :mod:`repro.exec`: every spec lowers to a
:class:`~repro.exec.jobs.RunJob`, the whole list goes to the executor
as ONE batch (so shared baselines deduplicate across the entire suite
and the result store answers repeat runs with zero simulations), and
results come back paired with the spec that requested them, in
submission order.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..exec.executor import BatchReport, Executor
from ..exec.jobs import ExecResult
from ..power.model import PowerModel
from .spec import ScenarioSpec
from .suite import ScenarioSuite

__all__ = ["ScenarioResult", "SuiteRun", "run_specs", "run_suite"]


@dataclass(frozen=True)
class ScenarioResult:
    """One executed scenario: what was asked, and what came back."""

    spec: ScenarioSpec
    result: ExecResult


@dataclass
class SuiteRun:
    """Everything one suite execution produced."""

    suite: ScenarioSuite
    results: list[ScenarioResult]
    report: BatchReport | None = None

    def __len__(self) -> int:
        return len(self.results)

    # ------------------------------------------------------------------
    def rows(self) -> list[tuple]:
        """One flat row per scenario, ready for table rendering."""
        rows = []
        for entry in self.results:
            spec, result = entry.spec, entry.result
            rows.append(
                (
                    spec.workload,
                    spec.scale,
                    spec.threads,
                    "gated" if spec.gating else "ungated",
                    spec.w0,
                    spec.cm,
                    result.parallel_time,
                    round(result.energy.total, 1),
                    result.commits,
                    result.aborts,
                )
            )
        return rows

    ROW_HEADERS = (
        "workload", "scale", "threads", "mode", "W0", "cm",
        "N", "energy", "commits", "aborts",
    )

    def paired_rows(self) -> list[tuple]:
        """Gated/ungated pairs with the paper's three reduction metrics.

        A gated scenario pairs with the ungated scenario that is
        identical in every other spec field (same W0 point first, any
        W0 otherwise — ungated runs do not depend on W0 for the CMs
        that declare so).  Suites without such pairs return [].
        """
        from ..power.energy import average_power_reduction, energy_reduction

        ungated: dict[tuple, ScenarioResult] = {}
        for entry in self.results:
            if not entry.spec.gating:
                ungated[self._pair_key(entry.spec, with_w0=True)] = entry
                ungated.setdefault(
                    self._pair_key(entry.spec, with_w0=False), entry
                )
        rows = []
        for entry in self.results:
            if not entry.spec.gating:
                continue
            baseline = ungated.get(
                self._pair_key(entry.spec, with_w0=True)
            ) or ungated.get(self._pair_key(entry.spec, with_w0=False))
            if baseline is None:
                continue
            n1 = baseline.result.parallel_time
            n2 = entry.result.parallel_time
            rows.append(
                (
                    entry.spec.workload,
                    entry.spec.threads,
                    entry.spec.w0,
                    round(n1 / n2, 3),
                    round(
                        energy_reduction(
                            baseline.result.energy, entry.result.energy
                        ),
                        3,
                    ),
                    round(
                        average_power_reduction(
                            baseline.result.energy, entry.result.energy
                        ),
                        3,
                    ),
                )
            )
        return rows

    PAIRED_HEADERS = (
        "workload", "threads", "W0", "speed-up", "energy red.", "power red.",
    )

    @staticmethod
    def _pair_key(spec: ScenarioSpec, with_w0: bool) -> tuple:
        return (
            spec.workload,
            spec.scale,
            spec.threads,
            spec.seed,
            spec.params,
            spec.cm,
            spec.system,
            spec.w0 if with_w0 else None,
        )


def run_specs(
    specs: Sequence[ScenarioSpec],
    executor: Executor | None = None,
    power_model: PowerModel | None = None,
    validate: bool = True,
) -> list[ScenarioResult]:
    """Execute scenarios as one batch; results in submission order."""
    exe = executor if executor is not None else Executor()
    model = power_model if power_model is not None else PowerModel.derive()
    jobs = [spec.to_job(power=model, validate=validate) for spec in specs]
    results = exe.run(jobs)
    return [
        ScenarioResult(spec=spec, result=result)
        for spec, result in zip(specs, results)
    ]


def run_suite(
    suite: ScenarioSuite,
    executor: Executor | None = None,
    power_model: PowerModel | None = None,
    validate: bool = True,
) -> SuiteRun:
    """Expand and execute a whole suite through one executor batch."""
    exe = executor if executor is not None else Executor()
    results = run_specs(
        suite.expand(), executor=exe, power_model=power_model,
        validate=validate,
    )
    return SuiteRun(suite=suite, results=results, report=exe.last_report)
