"""Suite execution: lower scenarios to jobs, run them through the cache.

The runner is a thin, deterministic bridge between the declarative
layer and :mod:`repro.exec`: every spec lowers to a
:class:`~repro.exec.jobs.RunJob`, the whole list goes to the executor
as ONE batch (so shared baselines deduplicate across the entire suite
and the result store answers repeat runs with zero simulations), and
results come back paired with the spec that requested them, in
submission order.

Two multi-host primitives live here as well:

* :class:`Shard` — a deterministic ``K/N`` slice of a suite's deduped
  job list, partitioned by job digest, so N hosts each run
  ``suite run --shard k/N`` against the same suite JSON and cover the
  grid exactly once between them (``repro suite merge`` folds their
  stores back together).
* :func:`plan_suite` — cache-aware scenario search: walk an expanded
  grid, probe the result store per job digest *without simulating*,
  and emit the residual misses as a dispatchable
  :class:`~repro.scenarios.suite.SpecListSuite`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence

from ..errors import ExecutionError
from ..exec.executor import BatchReport, Executor
from ..exec.jobs import ExecResult
from ..exec.store import ResultStore
from ..obs import get_recorder
from ..power.model import PowerModel
from .spec import ScenarioSpec
from .suite import ScenarioSuite, SpecListSuite

__all__ = [
    "ScenarioResult",
    "SuiteRun",
    "Shard",
    "PlanEntry",
    "SuitePlan",
    "plan_suite",
    "run_specs",
    "run_suite",
]


@dataclass(frozen=True)
class Shard:
    """One deterministic slice, ``index`` of ``count``, of a job list.

    Jobs are assigned by content digest — ``int(digest, 16) % count`` —
    so the partition depends only on *what must be simulated*: every
    host that expands the same suite agrees on the split without
    coordination, and scenarios that collapse onto one job digest
    (e.g. ungated W0 variants) always land in the same shard.
    """

    index: int  # 1-based, as written on the command line
    count: int

    def __post_init__(self) -> None:
        if self.count < 1 or not 1 <= self.index <= self.count:
            raise ExecutionError(
                f"invalid shard {self.index}/{self.count}: need "
                f"1 <= K <= N"
            )

    @classmethod
    def parse(cls, text: str) -> "Shard":
        """Parse the CLI spelling ``K/N`` (e.g. ``2/4``)."""
        try:
            index, count = (int(part) for part in text.split("/"))
        except ValueError:
            raise ExecutionError(
                f"invalid shard spec {text!r}: expected K/N (e.g. 2/4)"
            ) from None
        return cls(index=index, count=count)

    def owns(self, digest: str) -> bool:
        """Does this shard own the job with hex content digest *digest*?"""
        return int(digest, 16) % self.count == self.index - 1

    def filter_specs(
        self,
        specs: Sequence[ScenarioSpec],
        power_model: PowerModel | None = None,
        validate: bool = True,
    ) -> list[ScenarioSpec]:
        """The sub-list of *specs* whose lowered job digest this shard
        owns (``power_model``/``validate`` must match the run's, since
        both enter the digest)."""
        model = power_model if power_model is not None else PowerModel.derive()
        return [
            spec
            for spec in specs
            if self.owns(spec.to_job(power=model, validate=validate).digest)
        ]

    def __str__(self) -> str:
        return f"{self.index}/{self.count}"


@dataclass(frozen=True)
class ScenarioResult:
    """One executed scenario: what was asked, and what came back."""

    spec: ScenarioSpec
    result: ExecResult


@dataclass
class SuiteRun:
    """Everything one suite execution produced."""

    suite: ScenarioSuite
    results: list[ScenarioResult]
    report: BatchReport | None = None
    #: set when the run covered only one shard of the suite's job list
    shard: Shard | None = None

    def __len__(self) -> int:
        return len(self.results)

    # ------------------------------------------------------------------
    def rows(self) -> list[tuple]:
        """One flat row per scenario, ready for table rendering."""
        rows = []
        for entry in self.results:
            spec, result = entry.spec, entry.result
            rows.append(
                (
                    spec.workload,
                    spec.scale,
                    spec.threads,
                    "gated" if spec.gating else "ungated",
                    spec.w0,
                    spec.cm,
                    result.parallel_time,
                    round(result.energy.total, 1),
                    result.commits,
                    result.aborts,
                )
            )
        return rows

    ROW_HEADERS = (
        "workload", "scale", "threads", "mode", "W0", "cm",
        "N", "energy", "commits", "aborts",
    )

    def paired_rows(self) -> list[tuple]:
        """Gated/ungated pairs with the paper's three reduction metrics.

        Pairing (gated scenario ↔ the ungated scenario identical in
        every other spec field, same W0 point first) is the shared
        :func:`repro.figures.extract.pair_results` derivation — the one
        the figure pipeline's extractors use.  Suites without such
        pairs return [].
        """
        # Lazy: repro.figures builds on the scenario layer; importing it
        # here (like the harness sweep does for scenarios) avoids a cycle.
        from ..figures.extract import pair_results
        from ..power.energy import average_power_reduction, energy_reduction

        rows = []
        for gated, baseline in pair_results(self.results):
            n1 = baseline.result.parallel_time
            n2 = gated.result.parallel_time
            rows.append(
                (
                    gated.spec.workload,
                    gated.spec.threads,
                    gated.spec.w0,
                    round(n1 / n2, 3),
                    round(
                        energy_reduction(
                            baseline.result.energy, gated.result.energy
                        ),
                        3,
                    ),
                    round(
                        average_power_reduction(
                            baseline.result.energy, gated.result.energy
                        ),
                        3,
                    ),
                )
            )
        return rows

    PAIRED_HEADERS = (
        "workload", "threads", "W0", "speed-up", "energy red.", "power red.",
    )


def run_specs(
    specs: Sequence[ScenarioSpec],
    executor: Executor | None = None,
    power_model: PowerModel | None = None,
    validate: bool = True,
) -> list[ScenarioResult]:
    """Execute scenarios as one batch; results in submission order."""
    exe = executor if executor is not None else Executor()
    model = power_model if power_model is not None else PowerModel.derive()
    jobs = [spec.to_job(power=model, validate=validate) for spec in specs]
    results = exe.run(jobs)
    return [
        ScenarioResult(spec=spec, result=result)
        for spec, result in zip(specs, results)
    ]


def run_suite(
    suite: ScenarioSuite,
    executor: Executor | None = None,
    power_model: PowerModel | None = None,
    validate: bool = True,
    shard: Shard | None = None,
) -> SuiteRun:
    """Expand and execute a whole suite through one executor batch.

    With ``shard``, only the scenarios whose job digest the shard owns
    are executed — run every shard of the same suite (on as many hosts
    as you like, each with its own cache directory) and ``repro suite
    merge`` the stores to reassemble the full grid.
    """
    exe = executor if executor is not None else Executor()
    model = power_model if power_model is not None else PowerModel.derive()
    recorder = get_recorder()
    with recorder.span(
        "suite.run", suite=suite.name,
        shard=str(shard) if shard is not None else None,
    ) as span:
        specs = suite.expand()
        # lower once: the same jobs serve the shard filter and the execution
        jobs = [spec.to_job(power=model, validate=validate) for spec in specs]
        if shard is not None:
            kept = [
                (spec, job)
                for spec, job in zip(specs, jobs)
                if shard.owns(job.digest)
            ]
            specs = [spec for spec, _job in kept]
            jobs = [job for _spec, job in kept]
        span.annotate(scenarios=len(specs))
        if recorder.enabled and jobs:
            import hashlib

            recorder.note_suite(
                suite.name,
                hashlib.sha256(
                    "\n".join(sorted(job.digest for job in jobs)).encode()
                ).hexdigest(),
            )
        results = exe.run(jobs)
        scenario_results = [
            ScenarioResult(spec=spec, result=result)
            for spec, result in zip(specs, results)
        ]
        return SuiteRun(
            suite=suite, results=scenario_results, report=exe.last_report,
            shard=shard,
        )


# ----------------------------------------------------------------------
# cache-aware scenario search
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class PlanEntry:
    """One unique job in a plan: its digest, cache state, and scenarios."""

    digest: str
    cached: bool
    #: how many expanded scenarios collapse onto this job digest
    scenarios: int
    #: the first expanded scenario that lowers to this job
    spec: ScenarioSpec

    @property
    def label(self) -> str:
        return self.spec.label()


@dataclass
class SuitePlan:
    """Hit/miss map of a suite against a result store — no simulation.

    This is the cache-aware scenario search the W0 × CM × workload
    grids need: expanding and probing a fig-7-style matrix costs
    milliseconds, so a coordinator can walk large grids, dispatch only
    :meth:`residual_suite` to workers, and re-plan after a merge to
    verify full coverage (0 misses).
    """

    suite: Any  # ScenarioSuite or SpecListSuite (duck-typed)
    entries: list[PlanEntry] = field(default_factory=list)
    shard: Shard | None = None

    @property
    def total_scenarios(self) -> int:
        return sum(entry.scenarios for entry in self.entries)

    @property
    def unique_jobs(self) -> int:
        return len(self.entries)

    @property
    def hits(self) -> int:
        return sum(1 for entry in self.entries if entry.cached)

    @property
    def misses(self) -> int:
        return sum(1 for entry in self.entries if not entry.cached)

    def miss_specs(self) -> list[ScenarioSpec]:
        """One representative spec per uncached job, in plan order."""
        return [entry.spec for entry in self.entries if not entry.cached]

    def residual_suite(self, name: str | None = None) -> SpecListSuite:
        """The misses as a dispatchable explicit-spec suite."""
        return SpecListSuite(
            name=name if name else f"{self.suite.name}-misses",
            specs=tuple(self.miss_specs()),
            description=(
                f"residual cache misses of suite {self.suite.name!r} "
                f"({self.misses} of {self.unique_jobs} unique jobs)"
            ),
        )

    def summary(self) -> str:
        shard = f" [shard {self.shard}]" if self.shard is not None else ""
        return (
            f"plan {self.suite.name}{shard}: {self.unique_jobs} unique "
            f"job(s) from {self.total_scenarios} scenario(s) — "
            f"{self.hits} hit(s), {self.misses} miss(es)"
        )

    def to_dict(self) -> dict[str, Any]:
        return {
            "suite": self.suite.name,
            "shard": str(self.shard) if self.shard is not None else None,
            "total_scenarios": self.total_scenarios,
            "unique_jobs": self.unique_jobs,
            "hits": self.hits,
            "misses": self.misses,
            "entries": [
                {
                    "digest": entry.digest,
                    "cached": entry.cached,
                    "scenarios": entry.scenarios,
                    "label": entry.label,
                }
                for entry in self.entries
            ],
        }


def plan_suite(
    suite: ScenarioSuite,
    store: ResultStore | None = None,
    power_model: PowerModel | None = None,
    validate: bool = True,
    shard: Shard | None = None,
) -> SuitePlan:
    """Walk a suite's expanded grid and report hit/miss per job digest.

    Nothing is simulated: every spec lowers to its job digest and the
    store is probed with ``in`` (which counts toward the store's
    session hit/miss statistics — the documented accounting contract).
    ``store=None`` plans against an empty cache (everything a miss);
    ``shard`` restricts the plan to one slice of the job list, mirroring
    ``run_suite``'s partition exactly.
    """
    model = power_model if power_model is not None else PowerModel.derive()
    with get_recorder().span(
        "suite.plan", suite=suite.name,
        shard=str(shard) if shard is not None else None,
    ) as span:
        first_spec: dict[str, ScenarioSpec] = {}
        counts: dict[str, int] = {}
        for spec in suite.expand():
            digest = spec.to_job(power=model, validate=validate).digest
            if shard is not None and not shard.owns(digest):
                continue
            first_spec.setdefault(digest, spec)
            counts[digest] = counts.get(digest, 0) + 1
        entries = [
            PlanEntry(
                digest=digest,
                cached=(store is not None and digest in store),
                scenarios=counts[digest],
                spec=spec,
            )
            for digest, spec in first_spec.items()
        ]
        plan = SuitePlan(suite=suite, entries=entries, shard=shard)
        span.annotate(
            unique_jobs=plan.unique_jobs, hits=plan.hits, misses=plan.misses
        )
        return plan
