"""Parameter-grid expansion: a suite is a base spec plus axes.

A :class:`ScenarioSuite` describes a whole evaluation matrix as data: a
base :class:`~repro.scenarios.spec.ScenarioSpec` and an ordered mapping
of *axes* — each a spec dimension and the values it sweeps.  Expansion
takes the cartesian product (the last axis varies fastest, so related
runs sit next to each other in one executor batch) and validates every
resulting spec before anything is simulated.

Axis names resolve in three namespaces:

* spec fields — ``workload``, ``scale``, ``threads``, ``seed``,
  ``gating``, ``w0``, ``cm``;
* ``system.<dotted path>`` — a :class:`~repro.config.SystemConfig`
  override, e.g. ``system.memory.latency``;
* anything else — a workload parameter override (validated against the
  workload's schema), optionally written ``params.<name>``.

This is the layer the ROADMAP's "cache-aware scenario search over
W0 × CM × workload grids" builds on: a suite is a declarative object
that enumerates, serializes, and digests its whole grid without running
it.
"""

from __future__ import annotations

import dataclasses
import itertools
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Mapping, Sequence

from ..errors import WorkloadError
from .spec import ScenarioSpec

__all__ = ["ScenarioSuite", "SpecListSuite", "suite", "load_suite_file"]

_SPEC_FIELDS = ("workload", "scale", "threads", "seed", "gating", "w0", "cm")


def _suite_data_from_json(text: str) -> dict[str, Any]:
    """Decode suite JSON text to its object, with the shared errors."""
    try:
        data = json.loads(text)
    except ValueError as exc:
        raise WorkloadError(f"invalid suite JSON: {exc}") from exc
    if not isinstance(data, dict):
        raise WorkloadError("suite JSON must be an object")
    return data


def _describe_header(name: str, description: str) -> str:
    return f"suite {name}: {description}".rstrip().rstrip(":")


@dataclass(frozen=True)
class ScenarioSuite:
    """A named grid of scenarios: base spec × axes."""

    name: str
    base: ScenarioSpec
    #: ordered (axis name, swept values) pairs; last axis varies fastest
    axes: tuple[tuple[str, tuple[Any, ...]], ...] = ()
    description: str = ""

    def __post_init__(self) -> None:
        seen = set()
        for axis, values in self.axes:
            if axis in seen:
                raise WorkloadError(f"suite {self.name!r}: duplicate axis {axis!r}")
            seen.add(axis)
            if not values:
                raise WorkloadError(
                    f"suite {self.name!r}: axis {axis!r} has no values"
                )

    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        """Number of scenarios the suite expands to."""
        total = 1
        for _axis, values in self.axes:
            total *= len(values)
        return total

    def expand(self) -> list[ScenarioSpec]:
        """The full grid, validated, in deterministic order."""
        specs = []
        value_lists = [values for _axis, values in self.axes]
        for combo in itertools.product(*value_lists):
            spec = self.base
            for (axis, _values), value in zip(self.axes, combo):
                spec = _apply_axis(spec, axis, value)
            specs.append(spec.validate())
        return specs

    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "description": self.description,
            "base": self.base.to_dict(),
            "axes": [[axis, list(values)] for axis, values in self.axes],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ScenarioSuite":
        if "base" not in data:
            raise WorkloadError("suite is missing its base scenario")
        return cls(
            name=data.get("name", "unnamed"),
            base=ScenarioSpec.from_dict(data["base"]),
            axes=_axes_from_data(data.get("axes", [])),
            description=data.get("description", ""),
        )

    def to_json(self, indent: int | None = None) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "ScenarioSuite":
        return cls.from_dict(_suite_data_from_json(text))

    def with_base_updates(self, **changes: Any) -> "ScenarioSuite":
        """Copy with base-spec field changes (axes still win at expansion)."""
        return dataclasses.replace(
            self, base=self.base.with_updates(**changes)
        )

    # ------------------------------------------------------------------
    def describe(self) -> str:
        lines = [_describe_header(self.name, self.description)]
        lines.append(f"  base: {self.base.label()}")
        for axis, values in self.axes:
            lines.append(f"  axis {axis}: {list(values)}")
        lines.append(f"  expands to {self.size} scenario(s)")
        return "\n".join(lines)


@dataclass(frozen=True)
class SpecListSuite:
    """An explicit list of scenarios — no axes, no cartesian product.

    The dispatch format: ``repro suite plan --out`` writes the residual
    cache misses of a grid as one of these, and ``suite run --file``
    executes it anywhere, so arbitrary subsets of a grid (which a
    base × axes suite cannot express) still travel as one JSON file.
    Duck-type-compatible with :class:`ScenarioSuite` everywhere the
    runner and CLI care (``name``/``description``/``size``/``expand``/
    ``describe``/``with_base_updates``/JSON round-trip).
    """

    name: str
    specs: tuple[ScenarioSpec, ...] = ()
    description: str = ""

    @property
    def size(self) -> int:
        return len(self.specs)

    def expand(self) -> list[ScenarioSpec]:
        """The listed scenarios, validated, in listed order."""
        return [spec.validate() for spec in self.specs]

    def with_base_updates(self, **changes: Any) -> "SpecListSuite":
        """Copy with field changes applied to *every* listed spec."""
        return dataclasses.replace(
            self,
            specs=tuple(spec.with_updates(**changes) for spec in self.specs),
        )

    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "description": self.description,
            "specs": [spec.to_dict() for spec in self.specs],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SpecListSuite":
        specs = data.get("specs")
        if not isinstance(specs, Sequence) or isinstance(specs, str):
            raise WorkloadError(
                f"spec-list suite 'specs' must be a list, got {specs!r}"
            )
        return cls(
            name=data.get("name", "unnamed"),
            specs=tuple(ScenarioSpec.from_dict(entry) for entry in specs),
            description=data.get("description", ""),
        )

    def to_json(self, indent: int | None = None) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "SpecListSuite":
        return cls.from_dict(_suite_data_from_json(text))

    # ------------------------------------------------------------------
    def describe(self) -> str:
        lines = [_describe_header(self.name, self.description)]
        for spec in self.specs:
            lines.append(f"  spec: {spec.label()}")
        lines.append(f"  expands to {self.size} scenario(s)")
        return "\n".join(lines)


def _axes_from_data(axes: Any) -> tuple[tuple[str, tuple[Any, ...]], ...]:
    """Decode axes from JSON data: [[name, values], ...] or a mapping."""
    if isinstance(axes, Mapping):
        entries = list(axes.items())
    elif isinstance(axes, Sequence) and not isinstance(axes, str):
        entries = []
        for item in axes:
            if (
                not isinstance(item, Sequence)
                or isinstance(item, str)
                or len(item) != 2
            ):
                raise WorkloadError(
                    f"suite axis entries must be [name, values] pairs, "
                    f"got {item!r}"
                )
            entries.append((item[0], item[1]))
    else:
        raise WorkloadError(
            f"suite axes must be a mapping or a list of [name, values] "
            f"pairs, got {type(axes).__name__}"
        )
    out = []
    for axis, values in entries:
        if not isinstance(axis, str):
            raise WorkloadError(f"axis name must be a string, got {axis!r}")
        if isinstance(values, str) or not isinstance(values, Sequence):
            raise WorkloadError(
                f"axis {axis!r} values must be a list, got {values!r}"
            )
        out.append((axis, tuple(values)))
    return tuple(out)


def _apply_axis(spec: ScenarioSpec, axis: str, value: Any) -> ScenarioSpec:
    """Set one axis value on a spec, resolving the axis namespace."""
    if axis in _SPEC_FIELDS:
        return spec.with_updates(**{axis: value})
    if axis.startswith("system."):
        return spec.with_updates(system={axis[len("system."):]: value})
    if axis.startswith("params."):
        return spec.with_updates(params={axis[len("params."):]: value})
    # bare name: a workload parameter (schema validation catches typos)
    return spec.with_updates(params={axis: value})


def load_suite_file(path: str | Path) -> "ScenarioSuite | SpecListSuite":
    """Load a user-defined suite from a JSON file.

    Two formats are accepted, keyed on which field is present:

    * ``{"name", "description", "base": {spec fields}, "axes": [[axis,
      values], ...]}`` — exactly what :meth:`ScenarioSuite.to_json`
      writes; a hand-written grid works the same way.
    * ``{"name", "description", "specs": [{spec fields}, ...]}`` — an
      explicit :class:`SpecListSuite`, the format ``repro suite plan
      --out`` emits for dispatching residual cache misses.

    A suite with no ``name`` field is named after the file stem.
    """
    path = Path(path)
    try:
        text = path.read_text(encoding="utf-8")
    except OSError as exc:
        raise WorkloadError(f"cannot read suite file {path}: {exc}") from exc
    try:
        data = json.loads(text)
    except ValueError as exc:
        raise WorkloadError(f"suite file {path} is not valid JSON: {exc}") from exc
    if not isinstance(data, dict):
        raise WorkloadError(f"suite file {path} must hold a JSON object")
    if not data.get("name"):
        data = dict(data, name=path.stem)
    if "specs" in data:
        if "base" in data or "axes" in data:
            raise WorkloadError(
                f"suite file {path} mixes 'specs' with 'base'/'axes'; "
                f"use one format or the other"
            )
        return SpecListSuite.from_dict(data)
    return ScenarioSuite.from_dict(data)


def suite(
    name: str,
    base: ScenarioSpec,
    axes: Mapping[str, Sequence[Any]] | None = None,
    description: str = "",
) -> ScenarioSuite:
    """Convenience constructor preserving the mapping's axis order."""
    pairs = tuple(
        (axis, tuple(values)) for axis, values in (axes or {}).items()
    )
    return ScenarioSuite(name=name, base=base, axes=pairs,
                         description=description)
