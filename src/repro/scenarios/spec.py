"""One evaluation scenario as a validatable, serializable value.

A :class:`ScenarioSpec` names everything that defines one simulation
run *declaratively*: the workload (name + schema-validated parameter
overrides + scale + seed), the machine shape (thread count + dotted
:class:`~repro.config.SystemConfig` overrides), and the
contention-management choice (gating switch, :math:`W_0`, policy name).
Unlike :class:`~repro.exec.jobs.RunJob` — which carries live config and
power-model objects — a spec is plain data: it round-trips exactly
through JSON, has a stable content digest, and validates completely
(workload exists, parameters typed, config keys real) *before* any
simulation runs.

Lowering: :meth:`ScenarioSpec.to_job` produces the ``RunJob`` the
executor actually runs; :meth:`ScenarioSpec.from_workload_config` goes
the other way, diffing a concrete ``SystemConfig`` against the defaults
so existing harness entry points can re-express their grids as specs.

System overrides use dotted paths into the config dataclasses
(``"memory.latency"``, ``"cache.ways"``, ``"num_dirs"``).  The fields
owned by first-class spec attributes — ``num_procs`` (= ``threads``)
and the gating switch/W0/policy — are rejected as dotted keys so a spec
has exactly one spelling.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass, fields, replace
from typing import Any, Mapping

from ..config import SystemConfig
from ..errors import WorkloadError
from ..exec.serialize import canonical_json
from ..harness.runner import WorkloadSpec
from ..power.model import PowerModel
from ..workloads.base import SCALES

__all__ = ["SCENARIO_SCHEMA_VERSION", "ScenarioSpec", "scenario"]

#: bump when the spec payload layout changes incompatibly
SCENARIO_SCHEMA_VERSION = 1

#: dotted system-override keys shadowed by first-class spec fields
_SHADOWED_KEYS = {
    "num_procs": "threads",
    "gating.enabled": "gating",
    "gating.w0": "w0",
    "gating.contention_manager": "cm",
}

#: SystemConfig fields holding nested config dataclasses
_SECTIONS = ("cache", "bus", "directory", "memory", "commit", "gating")


def _sorted_items(mapping: Mapping[str, Any] | None) -> tuple[tuple[str, Any], ...]:
    if not mapping:
        return ()
    return tuple(sorted(mapping.items()))


@dataclass(frozen=True)
class ScenarioSpec:
    """One (workload × machine × contention management) scenario."""

    workload: str
    scale: str = "small"
    threads: int = 4
    seed: int = 0
    #: schema-validated workload parameter overrides, sorted by name
    params: tuple[tuple[str, Any], ...] = ()
    gating: bool = True
    w0: int = 8
    cm: str = "gating-aware"
    #: dotted SystemConfig overrides, sorted by path
    system: tuple[tuple[str, Any], ...] = ()

    # ------------------------------------------------------------------
    # validation
    # ------------------------------------------------------------------
    def validate(self) -> "ScenarioSpec":
        """Check every field against the live registries; returns self.

        Raises :class:`~repro.errors.WorkloadError` (unknown workload,
        bad parameter, unknown scale), :class:`~repro.errors.ConfigError`
        (bad contention manager or config value) — always *before* any
        simulation work.
        """
        from ..cm.registry import create_cm
        from ..workloads.registry import workload_schema

        self._check_field_types()
        if self.scale not in SCALES:
            raise WorkloadError(
                f"unknown scale {self.scale!r}; choose from {sorted(SCALES)}"
            )
        if self.threads < 1:
            raise WorkloadError(f"thread count must be positive: {self.threads}")
        workload_schema(self.workload).validate(dict(self.params))
        config = self.system_config()  # validates dotted keys + values
        create_cm(config.gating, config.seed)  # validates the CM name
        return self

    def _check_field_types(self) -> None:
        """Type-check the first-class fields (JSON is untyped on entry).

        ``"4"`` for ``threads`` or ``"false"`` for ``gating`` must fail
        loudly here — a truthy string silently running a scenario gated
        is exactly the spec mistake this layer exists to catch.
        """
        for name, expected in (
            ("workload", str), ("scale", str), ("cm", str),
        ):
            if not isinstance(getattr(self, name), str):
                raise WorkloadError(
                    f"scenario field {name!r} expects a string, got "
                    f"{type(getattr(self, name)).__name__} "
                    f"({getattr(self, name)!r})"
                )
        for name in ("threads", "seed", "w0"):
            value = getattr(self, name)
            if isinstance(value, bool) or not isinstance(value, int):
                raise WorkloadError(
                    f"scenario field {name!r} expects an integer, got "
                    f"{type(value).__name__} ({value!r})"
                )
        if not isinstance(self.gating, bool):
            raise WorkloadError(
                f"scenario field 'gating' expects a boolean, got "
                f"{type(self.gating).__name__} ({self.gating!r})"
            )

    # ------------------------------------------------------------------
    # lowering
    # ------------------------------------------------------------------
    def workload_spec(self) -> WorkloadSpec:
        return WorkloadSpec(
            name=self.workload,
            scale=self.scale,
            seed=self.seed,
            overrides=_sorted_items(dict(self.params)),
        )

    def system_config(self) -> SystemConfig:
        """Build the concrete machine configuration this spec names."""
        base = SystemConfig(num_procs=self.threads, seed=self.seed)
        sections: dict[str, dict[str, Any]] = {}
        scalars: dict[str, Any] = {}
        for key, value in self.system:
            self._check_system_key(key)
            if "." in key:
                section, attr = key.split(".", 1)
                sections.setdefault(section, {})[attr] = value
            else:
                scalars[key] = value
        gating_overrides = sections.pop("gating", {})
        updates: dict[str, Any] = dict(scalars)
        for section, attrs in sections.items():
            updates[section] = replace(getattr(base, section), **attrs)
        updates["gating"] = replace(
            base.gating,
            enabled=self.gating,
            w0=self.w0,
            contention_manager=self.cm,
            **gating_overrides,
        )
        return replace(base, **updates)

    @staticmethod
    def _check_system_key(key: str) -> None:
        if key in _SHADOWED_KEYS:
            raise WorkloadError(
                f"system override {key!r} shadows the spec field "
                f"{_SHADOWED_KEYS[key]!r}; set that field instead"
            )
        top_fields = {f.name for f in fields(SystemConfig)}
        if "." in key:
            section, attr = key.split(".", 1)
            if section not in _SECTIONS or "." in attr:
                raise WorkloadError(
                    f"unknown system override {key!r}; sections: "
                    f"{', '.join(_SECTIONS)}"
                )
            section_type = type(getattr(SystemConfig(), section))
            if attr not in {f.name for f in fields(section_type)}:
                raise WorkloadError(
                    f"unknown system override {key!r}; {section} fields: "
                    f"{', '.join(f.name for f in fields(section_type))}"
                )
        elif key in _SECTIONS:
            raise WorkloadError(
                f"system override {key!r} names a whole config section; "
                f"override individual fields as {key!r}.<field>"
            )
        elif key not in top_fields:
            raise WorkloadError(
                f"unknown system override {key!r}; top-level fields: "
                f"{', '.join(sorted(top_fields - {'num_procs'} - set(_SECTIONS)))}"
            )

    def to_job(
        self,
        power: PowerModel | None = None,
        validate: bool = True,
    ) -> "Any":
        """Lower to the :class:`~repro.exec.jobs.RunJob` the executor runs."""
        from ..exec.jobs import RunJob

        model = power if power is not None else PowerModel.derive()
        return RunJob(
            spec=self.workload_spec(),
            config=self.system_config(),
            power=model,
            validate=validate,
        )

    # ------------------------------------------------------------------
    # identity / serialization
    # ------------------------------------------------------------------
    def payload(self) -> dict[str, Any]:
        """Canonical plain-data content (the digest input)."""
        return {
            "schema": SCENARIO_SCHEMA_VERSION,
            "workload": self.workload,
            "scale": self.scale,
            "threads": self.threads,
            "seed": self.seed,
            "params": {key: value for key, value in self.params},
            "gating": self.gating,
            "w0": self.w0,
            "cm": self.cm,
            "system": {key: value for key, value in self.system},
        }

    @property
    def digest(self) -> str:
        """Stable SHA-256 content digest (hex) of the canonical payload.

        This is the *scenario* identity (what was asked for).  Distinct
        scenario digests may still lower to one :class:`RunJob` digest —
        e.g. ungated specs differing only in :math:`W_0` — which is
        exactly how suites share baselines through the executor.
        """
        return hashlib.sha256(
            canonical_json(self.payload()).encode()
        ).hexdigest()

    def to_dict(self) -> dict[str, Any]:
        return self.payload()

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ScenarioSpec":
        schema = data.get("schema", SCENARIO_SCHEMA_VERSION)
        if schema != SCENARIO_SCHEMA_VERSION:
            raise WorkloadError(
                f"scenario schema v{schema} not supported "
                f"(current: v{SCENARIO_SCHEMA_VERSION})"
            )
        known = {
            "schema", "workload", "scale", "threads", "seed", "params",
            "gating", "w0", "cm", "system",
        }
        unknown = sorted(set(data) - known)
        if unknown:
            raise WorkloadError(
                f"unknown scenario field(s): {', '.join(unknown)}"
            )
        if "workload" not in data:
            raise WorkloadError("scenario is missing the workload name")
        return cls(
            workload=data["workload"],
            scale=data.get("scale", "small"),
            threads=data.get("threads", 4),
            seed=data.get("seed", 0),
            params=_sorted_items(data.get("params")),
            gating=data.get("gating", True),
            w0=data.get("w0", 8),
            cm=data.get("cm", "gating-aware"),
            system=_sorted_items(data.get("system")),
        ).validate()

    def to_json(self, indent: int | None = None) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "ScenarioSpec":
        try:
            data = json.loads(text)
        except ValueError as exc:
            raise WorkloadError(f"invalid scenario JSON: {exc}") from exc
        if not isinstance(data, dict):
            raise WorkloadError("scenario JSON must be an object")
        return cls.from_dict(data)

    # ------------------------------------------------------------------
    # derivation
    # ------------------------------------------------------------------
    def with_updates(self, **changes: Any) -> "ScenarioSpec":
        """Copy with field changes; ``params``/``system`` accept dicts
        that are *merged* into (not substituted for) the current pairs."""
        for key in ("params", "system"):
            if key in changes and isinstance(changes[key], Mapping):
                merged = dict(getattr(self, key))
                merged.update(changes[key])
                changes[key] = _sorted_items(merged)
        return dataclasses.replace(self, **changes)

    @classmethod
    def from_workload_config(
        cls, spec: WorkloadSpec, config: SystemConfig
    ) -> "ScenarioSpec":
        """Re-express a (workload spec, concrete config) pair as a scenario.

        Non-default configuration fields become dotted ``system``
        overrides, so ``from_workload_config(s, c).system_config() == c``
        and the harness's existing grids lower to identical jobs.
        """
        default = SystemConfig()
        system: dict[str, Any] = {}
        for name in ("num_dirs", "max_cycles"):
            if getattr(config, name) != getattr(default, name):
                system[name] = getattr(config, name)
        if config.seed != spec.seed:
            system["seed"] = config.seed
        for section in _SECTIONS:
            current = getattr(config, section)
            base = getattr(default, section)
            for f in fields(type(current)):
                dotted = f"{section}.{f.name}"
                if dotted in _SHADOWED_KEYS:
                    continue
                if getattr(current, f.name) != getattr(base, f.name):
                    system[dotted] = getattr(current, f.name)
        return cls(
            workload=spec.name,
            scale=spec.scale,
            threads=config.num_procs,
            seed=spec.seed,
            params=_sorted_items(dict(spec.overrides)),
            gating=config.gating.enabled,
            w0=config.gating.w0,
            cm=config.gating.contention_manager,
            system=_sorted_items(system),
        )

    # ------------------------------------------------------------------
    def label(self) -> str:
        mode = f"gated w0={self.w0}" if self.gating else "ungated"
        extras = ""
        if self.params:
            extras = " " + ",".join(f"{k}={v}" for k, v in self.params)
        return (
            f"{self.workload}[{self.scale}] x{self.threads} {mode} "
            f"cm={self.cm}{extras}"
        )


def scenario(
    workload: str,
    scale: str = "small",
    threads: int = 4,
    seed: int = 0,
    gating: bool = True,
    w0: int = 8,
    cm: str = "gating-aware",
    params: Mapping[str, Any] | None = None,
    system: Mapping[str, Any] | None = None,
) -> ScenarioSpec:
    """Convenience constructor taking plain dicts, with validation."""
    return ScenarioSpec(
        workload=workload,
        scale=scale,
        threads=threads,
        seed=seed,
        params=_sorted_items(params),
        gating=gating,
        w0=w0,
        cm=cm,
        system=_sorted_items(system),
    ).validate()
