"""Processor power states.

The paper's energy accounting (Section IV) distinguishes four
operating modes, each with a power factor from Table I:

========  ======================================  ============
State     Meaning                                 Power factor
========  ======================================  ============
RUN       executing code / transactions, and      1.00
          spinning on synchronization locks
MISS      core stalled waiting for an L1 miss     0.32
COMMIT    spinning at the commit instruction or   0.44
          flushing the write-set to directories
GATED     all clocks gated after an abort         0.20
========  ======================================  ============

The interval formulations differ between the gated run (Eq. 1 counts
processors that are "gated or waiting for a cache miss or performing
commit") and the ungated run (Eq. 5 has no gated term); the two
low-power state sets below encode exactly that.
"""

from __future__ import annotations

import enum

__all__ = ["ProcState", "LOW_POWER_STATES_GATED", "LOW_POWER_STATES_UNGATED"]


class ProcState(enum.Enum):
    """Power-relevant processor activity state."""

    RUN = "run"
    MISS = "miss"
    COMMIT = "commit"
    GATED = "gated"

    def __repr__(self) -> str:
        return f"ProcState.{self.name}"


#: States counted inside :math:`X_i` of Eq. (1).
LOW_POWER_STATES_GATED = frozenset(
    {ProcState.MISS, ProcState.COMMIT, ProcState.GATED}
)

#: States counted inside :math:`Y_i` of Eq. (5).
LOW_POWER_STATES_UNGATED = frozenset({ProcState.MISS, ProcState.COMMIT})
