"""Human-readable energy reports.

Formats one run's :class:`~repro.power.energy.EnergyBreakdown`, or a
gated/ungated pair with the Eq. (6)/(7) reduction factors, as fixed-
width text tables (the style EXPERIMENTS.md embeds).
"""

from __future__ import annotations

from dataclasses import dataclass

from .energy import (
    EnergyBreakdown,
    average_power_reduction,
    energy_reduction,
)
from .states import ProcState

__all__ = ["EnergyReport", "format_energy_report"]

_STATE_ORDER = [ProcState.RUN, ProcState.MISS, ProcState.COMMIT, ProcState.GATED]


@dataclass(frozen=True)
class EnergyReport:
    """Paired gated/ungated accounting for one workload configuration."""

    label: str
    ungated: EnergyBreakdown
    gated: EnergyBreakdown

    @property
    def speedup(self) -> float:
        """N1 / N2 (> 1: clock gating made the run faster)."""
        n2 = self.gated.parallel_time
        return self.ungated.parallel_time / n2 if n2 else float("inf")

    @property
    def energy_reduction(self) -> float:
        """Eq. (6)."""
        return energy_reduction(self.ungated, self.gated)

    @property
    def power_reduction(self) -> float:
        """Eq. (7)."""
        return average_power_reduction(self.ungated, self.gated)


def _breakdown_lines(tag: str, b: EnergyBreakdown) -> list[str]:
    lines = [
        f"  {tag}: N = {b.parallel_time} cycles, E = {b.total:.1f} cycle·Prun, "
        f"avg power = {b.average_power:.3f} Prun/proc"
    ]
    total_cycles = b.parallel_time * b.num_procs
    for state in _STATE_ORDER:
        cycles, energy = b.by_state.get(state, (0, 0.0))
        if cycles == 0 and state is ProcState.GATED and not b.gated_run:
            continue
        share = cycles / total_cycles if total_cycles else 0.0
        lines.append(
            f"    {state.name:<7} {cycles:>12} cycles ({share:6.1%})  "
            f"E = {energy:12.1f}"
        )
    return lines


def format_energy_report(report: EnergyReport) -> str:
    """Render a paired report as fixed-width text."""
    lines = [f"Energy report — {report.label}"]
    lines += _breakdown_lines("without clock gating", report.ungated)
    lines += _breakdown_lines("with clock gating   ", report.gated)
    lines.append(
        f"  speed-up (N1/N2)          = {report.speedup:.4f}x"
    )
    lines.append(
        f"  energy reduction (Eq. 6)  = {report.energy_reduction:.4f}x"
    )
    lines.append(
        f"  avg-power reduction (Eq.7)= {report.power_reduction:.4f}x"
    )
    return "\n".join(lines)
