"""Alpha 21264 @ 65 nm analytic power model (Section VII, Table I).

The paper *derives* its four power factors rather than asserting them;
this module reproduces the derivation so that every constant can be
traced to its stated source:

* Original Alpha 21264 power distribution (Gowan et al., DAC'98):
  caches 15 %, clock 32 %, I/O 5 %, leakage 2.8 % — of which the data
  cache contributes 10 % of total power.
* At 65 nm with high-Vt cells / stacked transistors, active leakage is
  taken as 20 % of total power; the PLL's few milliwatts are negligible
  against several watts of leakage, so the clock-gated state consumes
  exactly the leakage fraction: ``P_gate = 0.20``.
* The TCC data cache (RW bits + 1024×10 b store-address FIFO + commit
  controller) costs 1.5× a normal data cache: ``0.10 × 1.5 = 0.15`` of
  total power.
* During commit the core idles; the TCC data cache (0.15), I/O (0.05)
  and their clocks (0.10) stay active:
  ``P_commit = 0.2 + 0.8 × (0.15 + 0.05 + 0.10) = 0.44``.
* During a cache miss the same structures are active at roughly 50 %
  switching (Chandra & Roy, VLSI-DAT'08):
  ``P_miss = 0.2 + 0.8 × 0.5 × (0.15 + 0.05 + 0.10) = 0.32``.

All factors are fractions of run-mode power (``P_run = 1``); the paper
works in these normalized units and so do we.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigError
from .states import ProcState

__all__ = ["PowerModelParams", "PowerModel"]


@dataclass(frozen=True)
class PowerModelParams:
    """Inputs to the Table I derivation (all fractions of total power)."""

    #: active-mode leakage fraction at 65 nm with leakage-control techniques
    leakage_fraction: float = 0.20
    #: normal data cache share of total power (Alpha 21264: 10 %)
    dcache_fraction: float = 0.10
    #: TCC data cache cost relative to a normal data cache (Section VII)
    tcc_dcache_factor: float = 1.5
    #: I/O interface share of total power
    io_fraction: float = 0.05
    #: clocks feeding the data cache and I/O interfaces
    cache_io_clock_fraction: float = 0.10
    #: cache dynamic activity during a miss relative to a hit (ref. [6])
    miss_activity: float = 0.5

    def __post_init__(self) -> None:
        for name in (
            "leakage_fraction",
            "dcache_fraction",
            "io_fraction",
            "cache_io_clock_fraction",
            "miss_activity",
        ):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ConfigError(f"{name} must be in [0, 1], got {value}")
        if self.tcc_dcache_factor < 1.0:
            raise ConfigError("TCC data cache cannot cost less than a normal one")

    @property
    def tcc_dcache_fraction(self) -> float:
        """TCC data cache share of total power (0.15 in the paper)."""
        return self.dcache_fraction * self.tcc_dcache_factor

    @property
    def active_during_stall(self) -> float:
        """Fraction of dynamic power still switching during commit."""
        return (
            self.tcc_dcache_fraction
            + self.io_fraction
            + self.cache_io_clock_fraction
        )


@dataclass(frozen=True)
class PowerModel:
    """The four Table I factors, in units of run-mode power."""

    run: float = 1.0
    miss: float = 0.32
    commit: float = 0.44
    gated: float = 0.20

    def __post_init__(self) -> None:
        for name in ("run", "miss", "commit", "gated"):
            value = getattr(self, name)
            if value < 0:
                raise ConfigError(f"power factor {name} cannot be negative")
        if not (self.gated <= self.miss <= self.commit <= self.run):
            raise ConfigError(
                "power factors must satisfy gated <= miss <= commit <= run "
                f"(got {self})"
            )

    @classmethod
    def derive(cls, params: PowerModelParams | None = None) -> "PowerModel":
        """Reproduce the Section VII derivation from first principles."""
        p = params if params is not None else PowerModelParams()
        leak = p.leakage_fraction
        dynamic = 1.0 - leak
        commit = leak + dynamic * p.active_during_stall
        miss = leak + dynamic * p.miss_activity * p.active_during_stall
        return cls(run=1.0, miss=round(miss, 10), commit=round(commit, 10), gated=leak)

    def power_of(self, state: ProcState) -> float:
        """Power factor for a processor state."""
        return _STATE_ATTR[state](self)

    def table1_rows(self) -> list[tuple[str, float]]:
        """Render as Table I (operation, power factor) rows."""
        return [
            ("Run", self.run),
            ("Cache Miss", self.miss),
            ("Transaction Commit", self.commit),
            ("Clock Gated", self.gated),
        ]


_STATE_ATTR = {
    ProcState.RUN: lambda m: m.run,
    ProcState.MISS: lambda m: m.miss,
    ProcState.COMMIT: lambda m: m.commit,
    ProcState.GATED: lambda m: m.gated,
}
