"""Energy accounting: the paper's Eqs. (1)–(7), plus a cross-check.

Two independent formulations are implemented:

**Direct integration** (:func:`direct_energy`) — sum over processors
and timeline segments of ``duration × P(state)``.  This is the
"equivalent way to compute the total energy consumption ... to track
and sum up the individual contribution of each processor in each
state" that the paper mentions at the end of Section IV.

**Interval formulation** (:func:`interval_breakdown` +
:func:`energy_from_intervals`) — the paper's Eqs. (1)–(5) literally:
sweep the global timeline for the intervals :math:`\\Delta_{ik}` during
which exactly *i* processors sit in low-power states, build

.. math::

    X_i = \\sum_k \\Delta_{ik}, \\qquad
    \\alpha_i = \\frac{\\sum_k n^i_{mk} \\Delta_{ik}}{i X_i}, \\qquad
    \\beta_i = \\frac{\\sum_k n^i_{ck} \\Delta_{ik}}{i X_i}

and evaluate Eq. (1) (gated runs; low-power = {gated, miss, commit})
or Eq. (5) (ungated runs; low-power = {miss, commit}, with
:math:`\\delta_i = \\alpha_i` and the commit share as the complement).

The two must agree to floating-point tolerance — property-tested over
random timelines, and asserted by :func:`compute_energy` on every run.

Eq. (6): ``EnergyReduction = Eug / Eg`` — a factor **> 1** means the
gated run saved energy.  Eq. (7): ``AveragePowerReduction =
(Eug / Eg) × (N2 / N1)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..errors import SimulationError
from ..sim.timeline import StateTimeline
from .model import PowerModel
from .states import (
    LOW_POWER_STATES_GATED,
    LOW_POWER_STATES_UNGATED,
    ProcState,
)

__all__ = [
    "EnergyBreakdown",
    "IntervalBreakdown",
    "direct_energy",
    "interval_breakdown",
    "energy_from_intervals",
    "compute_energy",
    "energy_reduction",
    "average_power_reduction",
]


@dataclass(frozen=True)
class EnergyBreakdown:
    """Energy of one run over its parallel window.

    ``total`` is in cycle·P_run units.  ``by_state`` maps each state to
    (cycles, energy).  ``interval_total`` is the Eq. (1)/(5) evaluation;
    it must equal ``total``.
    """

    window: tuple[int, int]
    num_procs: int
    gated_run: bool
    total: float
    by_state: dict[ProcState, tuple[int, float]]
    interval_total: float

    @property
    def parallel_time(self) -> int:
        return self.window[1] - self.window[0]

    @property
    def average_power(self) -> float:
        """Mean power per processor in units of P_run."""
        denom = self.parallel_time * self.num_procs
        return self.total / denom if denom else 0.0

    def state_cycles(self, state: ProcState) -> int:
        return self.by_state.get(state, (0, 0.0))[0]


@dataclass(frozen=True)
class IntervalBreakdown:
    """The Eq. (2)–(4) quantities.

    Index ``i`` runs from 1 to ``num_procs``; index 0 is unused (the
    paper's sums start at ``i = 1``).
    """

    num_procs: int
    window: tuple[int, int]
    low_states: frozenset[ProcState]
    #: X_i — total time with exactly i processors in low-power states
    x: np.ndarray
    #: Σ_k n^i_mk Δ_ik — miss-weighted interval time
    miss_weight: np.ndarray
    #: Σ_k n^i_ck Δ_ik — commit-weighted interval time
    commit_weight: np.ndarray
    #: Σ_k n^i_gk Δ_ik — gated-weighted interval time
    gate_weight: np.ndarray

    def alpha(self, i: int) -> float:
        """:math:`\\alpha_i` (or :math:`\\delta_i` for ungated runs)."""
        if self.x[i] == 0:
            return 0.0
        return float(self.miss_weight[i] / (i * self.x[i]))

    def beta(self, i: int) -> float:
        if self.x[i] == 0:
            return 0.0
        return float(self.commit_weight[i] / (i * self.x[i]))


def direct_energy(
    timelines: Sequence[StateTimeline],
    window: tuple[int, int],
    model: PowerModel,
) -> tuple[float, dict[ProcState, tuple[int, float]]]:
    """Integrate ``P(state)`` over every processor's clipped timeline.

    Consumes the timelines' lazy array materialisation
    (:meth:`~repro.sim.timeline.StateTimeline.as_arrays`) instead of
    per-segment objects: clipped durations come from one vectorised
    ``diff(clip(times))``, and the remaining per-segment work is plain
    arithmetic.  The accumulation order (timelines in order, segments
    in time order, zero-length clips skipped) is the same as the
    historical segment-object loop, so totals are bit-identical.
    """
    lo, hi = window
    if hi < lo:
        raise SimulationError(f"invalid clip window [{lo}, {hi})")
    by_state: dict[ProcState, tuple[int, float]] = {}
    if hi == lo:
        # Zero-width window: nothing to integrate, but keep the
        # historical finalization check each clipped-segment walk did.
        for timeline in timelines:
            timeline.end  # noqa: B018 - raises on an unfinalized timeline
        return 0.0, by_state

    # Map every timeline's local state table onto one shared code space
    # so all segments reduce in a single concatenated pass.
    all_states = list(ProcState)
    index_of = {state: i for i, state in enumerate(all_states)}
    powers = np.asarray(
        [model.power_of(s) for s in all_states], dtype=np.float64
    )
    dur_parts: list[np.ndarray] = []
    code_parts: list[np.ndarray] = []
    for timeline in timelines:
        times, codes, states = timeline.as_arrays()
        dur_parts.append(np.diff(np.clip(times, lo, hi)))
        lookup = np.asarray([index_of[s] for s in states], dtype=np.intp)
        code_parts.append(lookup[codes])
    if not dur_parts:
        return 0.0, by_state
    durations = np.concatenate(dur_parts)
    gcodes = np.concatenate(code_parts)
    nz = np.nonzero(durations)[0]
    if nz.size == 0:
        return 0.0, by_state
    durations = durations[nz]
    gcodes = gcodes[nz]
    energies = durations * powers[gcodes]

    # Bit-identity with the historical per-segment Python loop: cumsum
    # accumulates strictly left to right, and add.at folds repeated
    # indices in element order, so the global total and each state's
    # accumulator perform exactly the float additions — in exactly the
    # order — the sequential walk performed (float addition is not
    # associative; a per-timeline partial-sum merge would NOT match).
    total = float(np.cumsum(energies)[-1])
    acc = np.zeros(len(all_states), dtype=np.float64)
    np.add.at(acc, gcodes, energies)
    cycles = np.zeros(len(all_states), dtype=np.int64)
    np.add.at(cycles, gcodes, durations)

    # Dict keys in historical order: first nonzero occurrence globally.
    uniq, first = np.unique(gcodes, return_index=True)
    for code in uniq[np.argsort(first)].tolist():
        by_state[all_states[code]] = (int(cycles[code]), float(acc[code]))
    return total, by_state


def interval_breakdown(
    timelines: Sequence[StateTimeline],
    window: tuple[int, int],
    low_states: frozenset[ProcState],
) -> IntervalBreakdown:
    """Sweep state-change events to build :math:`X_i, \\alpha_i, \\beta_i`.

    Fully vectorised over the timelines' array materialisation: each
    timeline contributes its in-window change-points as *count deltas*
    (did the processor enter/leave a low-power kind), a stable merge
    sort plus cumulative sums reconstruct the low-power population
    between every pair of boundaries, and ``np.add.at`` scatters the
    interval lengths into :math:`X_i` and the weighted sums.  All
    quantities are int64 throughout, so the result is exactly the one
    the historical per-event Python sweep produced.
    """
    lo, hi = window
    if hi < lo:
        raise SimulationError(f"invalid clip window [{lo}, {hi})")
    p = len(timelines)
    x = np.zeros(p + 1, dtype=np.int64)
    miss_w = np.zeros(p + 1, dtype=np.int64)
    commit_w = np.zeros(p + 1, dtype=np.int64)
    gate_w = np.zeros(p + 1, dtype=np.int64)

    def classify(state: ProcState) -> int:
        # 0 = not low-power, 1 = miss, 2 = commit, 3 = gated
        if state not in low_states:
            return 0
        if state is ProcState.MISS:
            return 1
        if state is ProcState.COMMIT:
            return 2
        return 3

    # Initial per-kind populations at `lo`, plus per-timeline deltas at
    # every change-point strictly inside (lo, hi).
    n0 = [0, 0, 0, 0]  # [low, miss, commit, gate]
    t_parts: list[np.ndarray] = []
    d_parts: list[np.ndarray] = []
    for timeline in timelines:
        state0 = timeline.state_at(lo) if hi > lo else ProcState.RUN
        k0 = classify(state0)
        if k0:
            n0[0] += 1
            n0[k0] += 1
        if hi <= lo:
            continue
        times, codes, states = timeline.as_arrays()
        kind_of = np.asarray([classify(s) for s in states], dtype=np.int64)
        kinds = kind_of[codes]
        starts = times[:-1]
        idx = np.nonzero((starts > lo) & (starts < hi))[0]
        if idx.size == 0:
            continue
        # idx >= 1 always: times[0] is the timeline start, which cannot
        # exceed `lo` (state_at(lo) above would have raised), so every
        # in-window event has an in-array predecessor carrying the kind
        # the processor held just before the change.
        new_k = kinds[idx]
        old_k = kinds[idx - 1]
        t_parts.append(starts[idx])
        d_parts.append(np.stack([
            (new_k != 0).astype(np.int64) - (old_k != 0),
            (new_k == 1).astype(np.int64) - (old_k == 1),
            (new_k == 2).astype(np.int64) - (old_k == 2),
            (new_k == 3).astype(np.int64) - (old_k == 3),
        ]))

    if hi > lo:
        if t_parts:
            all_t = np.concatenate(t_parts)
            all_d = np.concatenate(d_parts, axis=1)
            order = np.argsort(all_t, kind="stable")
            t_sorted = all_t[order]
            d_sorted = all_d[:, order]
            counts = n0[0] + np.cumsum(d_sorted[0])
            n_low = np.concatenate(([n0[0]], counts))
            n_miss = np.concatenate(([n0[1]], n0[1] + np.cumsum(d_sorted[1])))
            n_commit = np.concatenate(([n0[2]], n0[2] + np.cumsum(d_sorted[2])))
            n_gate = np.concatenate(([n0[3]], n0[3] + np.cumsum(d_sorted[3])))
            bounds = np.concatenate(
                (np.asarray([lo], dtype=np.int64), t_sorted,
                 np.asarray([hi], dtype=np.int64))
            )
        else:
            n_low = np.asarray([n0[0]], dtype=np.int64)
            n_miss = np.asarray([n0[1]], dtype=np.int64)
            n_commit = np.asarray([n0[2]], dtype=np.int64)
            n_gate = np.asarray([n0[3]], dtype=np.int64)
            bounds = np.asarray([lo, hi], dtype=np.int64)
        deltas = np.diff(bounds)
        mask = (deltas > 0) & (n_low > 0)
        population = n_low[mask]
        length = deltas[mask]
        np.add.at(x, population, length)
        np.add.at(miss_w, population, n_miss[mask] * length)
        np.add.at(commit_w, population, n_commit[mask] * length)
        np.add.at(gate_w, population, n_gate[mask] * length)

    return IntervalBreakdown(
        num_procs=p,
        window=window,
        low_states=low_states,
        x=x,
        miss_weight=miss_w,
        commit_weight=commit_w,
        gate_weight=gate_w,
    )


def energy_from_intervals(
    intervals: IntervalBreakdown,
    model: PowerModel,
    gated_run: bool,
) -> float:
    """Evaluate Eq. (1) (``gated_run=True``) or Eq. (5) (``False``).

    Using :math:`X_i \\alpha_i i = \\sum_k n^i_{mk} \\Delta_{ik}` the sums
    reduce to the precomputed weights; the run-mode term is
    :math:`(N p - \\sum_i X_i i) P_{run}`.
    """
    lo, hi = intervals.window
    n = hi - lo
    p = intervals.num_procs
    i_vec = np.arange(p + 1, dtype=np.int64)
    low_proc_cycles = int(np.dot(intervals.x, i_vec))
    run_term = (n * p - low_proc_cycles) * model.run
    miss_term = float(intervals.miss_weight.sum()) * model.miss
    commit_term = float(intervals.commit_weight.sum()) * model.commit
    if gated_run:
        gate_cycles = low_proc_cycles - int(intervals.miss_weight.sum()) - int(
            intervals.commit_weight.sum()
        )
        gate_term = gate_cycles * model.gated
        return run_term + miss_term + commit_term + gate_term
    if int(intervals.gate_weight.sum()) != 0:
        raise SimulationError(
            "ungated energy (Eq. 5) evaluated on a timeline containing "
            "gated intervals — use gated_run=True"
        )
    # Eq. (5): the non-miss share of Y_i is commit by construction.
    return run_term + miss_term + commit_term


def compute_energy(
    timelines: Sequence[StateTimeline],
    window: tuple[int, int],
    model: PowerModel,
    gated_run: bool,
    tolerance: float = 1e-6,
) -> EnergyBreakdown:
    """Full accounting for one run, cross-checking both formulations."""
    low = LOW_POWER_STATES_GATED if gated_run else LOW_POWER_STATES_UNGATED
    total, by_state = direct_energy(timelines, window, model)
    intervals = interval_breakdown(timelines, window, low)
    via_eq = energy_from_intervals(intervals, model, gated_run)
    if abs(via_eq - total) > tolerance * max(1.0, abs(total)):
        raise SimulationError(
            f"energy accounting mismatch: direct={total!r} interval={via_eq!r}"
        )
    return EnergyBreakdown(
        window=window,
        num_procs=len(timelines),
        gated_run=gated_run,
        total=total,
        by_state=by_state,
        interval_total=via_eq,
    )


def energy_reduction(ungated: EnergyBreakdown, gated: EnergyBreakdown) -> float:
    """Eq. (6): :math:`E_{ug} / E_g` (> 1 means the gated run saves)."""
    if gated.total <= 0:
        raise SimulationError("gated run consumed no energy")
    return ungated.total / gated.total


def average_power_reduction(
    ungated: EnergyBreakdown, gated: EnergyBreakdown
) -> float:
    """Eq. (7): :math:`(E_{ug}/E_g) \\times (N_2/N_1)`."""
    n1 = ungated.parallel_time
    n2 = gated.parallel_time
    if n1 <= 0:
        raise SimulationError("ungated run has an empty parallel section")
    return energy_reduction(ungated, gated) * (n2 / n1)
