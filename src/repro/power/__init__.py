"""Power and energy modelling (systems S7+S8 in DESIGN.md).

* :mod:`~repro.power.states` — the four processor power states.
* :mod:`~repro.power.model`  — Alpha 21264 @ 65 nm power factors
  (Table I), *derived* from the paper's Section VII decomposition.
* :mod:`~repro.power.cacti`  — mini-CACTI model of the TCC data cache
  power overhead (Fig. 3).
* :mod:`~repro.power.energy` — the interval energy accounting of
  Eqs. (1)–(7) plus a direct integration cross-check.
* :mod:`~repro.power.report` — human-readable energy reports.
"""

from .states import ProcState, LOW_POWER_STATES_GATED, LOW_POWER_STATES_UNGATED
from .model import PowerModel, PowerModelParams
from .energy import (
    EnergyBreakdown,
    IntervalBreakdown,
    direct_energy,
    interval_breakdown,
    energy_from_intervals,
    energy_reduction,
    average_power_reduction,
    compute_energy,
)
from .cacti import CactiCacheModel, tcc_cache_power_curve, tcc_total_power_factor
from .report import EnergyReport, format_energy_report

__all__ = [
    "ProcState",
    "LOW_POWER_STATES_GATED",
    "LOW_POWER_STATES_UNGATED",
    "PowerModel",
    "PowerModelParams",
    "EnergyBreakdown",
    "IntervalBreakdown",
    "direct_energy",
    "interval_breakdown",
    "energy_from_intervals",
    "energy_reduction",
    "average_power_reduction",
    "compute_energy",
    "CactiCacheModel",
    "tcc_cache_power_curve",
    "tcc_total_power_factor",
    "EnergyReport",
    "format_energy_report",
]
