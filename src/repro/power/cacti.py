"""Mini-CACTI: power overhead of a TCC-capable data cache (Fig. 3).

The paper uses CACTI 5.3 to quantify the extra power of the
speculative read/write (RW) bits that TCC adds to every cache line, and
PowerTheater RTL estimates for the store-address FIFO and commit
controller, concluding:

* a 64 KB cache with word-level (2 B) RW tracking costs ≈ +5 % power;
* the complete TCC data cache (RW bits + 1024×10 b store-address FIFO
  + commit controller) costs ≈ 1.5× a normal data cache.

CACTI itself is not available offline, so this module implements an
analytic stand-in that preserves the quantities Fig. 3 plots — the
*relative* power of the cache as the RW-bit granularity sweeps from
the 64 B line size down to 1 B, for several cache sizes:

* Each cache way stores ``line_bits + tag_bits + status_bits`` per
  line; RW tracking at granularity ``g`` adds ``2 × line_bytes / g``
  bits (one read bit and one write bit per chunk).
* A fraction of access energy — the *array share* — scales with the
  number of bit columns touched per access (wordline drive, bitline
  precharge/swing, sense amps); the rest (decoder, tag match, output
  drivers, request routing) does not change when columns are added.
* The array share grows weakly with cache size (bigger caches are more
  array-dominated; periphery amortizes), modelled as a logarithmic
  trend around the calibration point.

Calibration anchors the model to the paper's two stated numbers; the
64 KB @ 2 B point reproduces +5 % by construction, and the default FIFO
flip-flop energy ratio lands the total TCC factor at ≈ 1.5×.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import ConfigError

__all__ = ["CactiCacheModel", "tcc_cache_power_curve", "tcc_total_power_factor"]

#: Granularities plotted by Fig. 3 (bytes per RW-bit pair).
FIG3_GRANULARITIES = (64, 32, 16, 8, 4, 2, 1)
#: Cache sizes plotted by Fig. 3 (KB).
FIG3_CACHE_SIZES_KB = (16, 32, 64, 128)


@dataclass(frozen=True)
class CactiCacheModel:
    """Analytic relative-power model of an SRAM data cache with RW bits."""

    addr_bits: int = 32
    status_bits: int = 3
    line_bytes: int = 64
    ways: int = 2
    #: fraction of access energy scaling with columns, at the 64 KB anchor;
    #: solved from the paper's "+5 % at 64 KB / 2 B tracking" statement.
    anchor_size_kb: int = 64
    anchor_granularity: int = 2
    anchor_increase: float = 0.05
    #: array-share growth per doubling of cache size
    share_slope: float = 0.03

    def __post_init__(self) -> None:
        if self.line_bytes & (self.line_bytes - 1):
            raise ConfigError("line size must be a power of two")
        if not 0 < self.anchor_increase < 1:
            raise ConfigError("anchor increase must be a fraction in (0, 1)")

    # -- geometry --------------------------------------------------------
    def num_sets(self, size_kb: int) -> int:
        sets = size_kb * 1024 // (self.line_bytes * self.ways)
        if sets < 1:
            raise ConfigError(f"cache of {size_kb}KB too small for geometry")
        return sets

    def tag_bits(self, size_kb: int) -> int:
        index_bits = int(math.log2(self.num_sets(size_kb)))
        offset_bits = int(math.log2(self.line_bytes))
        return max(1, self.addr_bits - index_bits - offset_bits)

    def base_bits_per_way(self, size_kb: int) -> int:
        """Bits stored per line before RW tracking."""
        return self.line_bytes * 8 + self.tag_bits(size_kb) + self.status_bits

    def rw_bits(self, granularity_bytes: int) -> int:
        """Speculative-state bits per line at the given resolution."""
        if granularity_bytes < 1 or granularity_bytes > self.line_bytes:
            raise ConfigError(
                f"granularity must be in [1, {self.line_bytes}] bytes"
            )
        return 2 * (self.line_bytes // granularity_bytes)

    # -- energy model ------------------------------------------------------
    def array_share(self, size_kb: int) -> float:
        """Column-scaling fraction of access energy for this size."""
        anchor_frac = self.rw_bits(self.anchor_granularity) / self.base_bits_per_way(
            self.anchor_size_kb
        )
        share_at_anchor = self.anchor_increase / anchor_frac
        share = share_at_anchor + self.share_slope * math.log2(
            size_kb / self.anchor_size_kb
        )
        return min(0.95, max(0.05, share))

    def relative_power(self, size_kb: int, granularity_bytes: int) -> float:
        """Normalized cache power (normal cache = 100 units, as Fig. 3)."""
        extra = self.rw_bits(granularity_bytes) / self.base_bits_per_way(size_kb)
        return 100.0 * (1.0 + self.array_share(size_kb) * extra)


def tcc_cache_power_curve(
    size_kb: int,
    granularities: tuple[int, ...] = FIG3_GRANULARITIES,
    model: CactiCacheModel | None = None,
) -> list[tuple[int, float]]:
    """One Fig. 3 curve: (granularity bytes, normalized power) pairs."""
    m = model if model is not None else CactiCacheModel()
    return [(g, m.relative_power(size_kb, g)) for g in granularities]


def tcc_total_power_factor(
    size_kb: int = 64,
    granularity_bytes: int = 2,
    fifo_depth: int = 1024,
    fifo_width: int = 10,
    ff_bit_energy_ratio: float = 20.0,
    controller_fraction: float = 0.05,
    model: CactiCacheModel | None = None,
) -> float:
    """Power of the full TCC data cache relative to a normal one.

    Adds the store-address FIFO (flip-flop based — PowerTheater RTL in
    the paper; each FF bit costs ``ff_bit_energy_ratio`` times an SRAM
    bit) and a fixed commit-controller share on top of the RW-bit
    overhead.  Defaults reproduce the paper's conservative 1.5×.
    """
    m = model if model is not None else CactiCacheModel()
    rw_overhead = m.relative_power(size_kb, granularity_bytes) / 100.0 - 1.0
    cache_bits = size_kb * 1024 * 8
    fifo_fraction = fifo_depth * fifo_width * ff_bit_energy_ratio / cache_bits
    return 1.0 + rw_overhead + fifo_fraction + controller_fraction
