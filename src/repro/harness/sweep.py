"""Parameter sweeps: the Fig. 7 sensitivity analysis and scaling studies.

Fig. 7 plots speed-up (gated vs ungated) as a function of the
contention-management constant :math:`W_0` and the processor count
:math:`N_p`.  The ungated baseline does not depend on :math:`W_0`, so
each (workload, Np) point runs one baseline plus one gated run per
:math:`W_0` value.

All sweeps are *spec-driven*: each (workload, config) point is
re-expressed as :class:`~repro.scenarios.spec.ScenarioSpec` values
(baseline + one gated spec per :math:`W_0`) and the whole grid runs
through :func:`~repro.scenarios.runner.run_specs` as one executor
batch — parallel workers (``executor=Executor(jobs=N)``), shared
baselines deduplicated by job digest, repeat sweeps answered from an
attached :class:`~repro.exec.store.ResultStore` without re-simulating.
Passing no executor preserves the historical serial, uncached
behaviour.
"""

from __future__ import annotations

import dataclasses
from typing import Sequence

from ..config import SystemConfig
from ..exec.executor import Executor
from ..exec.jobs import ExecResult
from ..power.energy import average_power_reduction, energy_reduction
from ..power.model import PowerModel
from .runner import WorkloadSpec

__all__ = [
    "w0_sensitivity",
    "w0_sensitivity_grid",
    "proc_scaling",
    "DEFAULT_W0_VALUES",
]

#: the W0 values swept in our Fig. 7 reproduction
DEFAULT_W0_VALUES: tuple[int, ...] = (1, 2, 4, 8, 16, 32)


def _as_spec(source: WorkloadSpec | str) -> WorkloadSpec:
    return WorkloadSpec(source) if isinstance(source, str) else source


def _point_metrics(baseline: ExecResult, gated: ExecResult) -> dict[str, float]:
    """The Fig. 7 per-point metrics from one baseline/gated pair."""
    return {
        "speedup": baseline.parallel_time / gated.parallel_time,
        "energy_reduction": energy_reduction(baseline.energy, gated.energy),
        "power_reduction": average_power_reduction(
            baseline.energy, gated.energy
        ),
        "n1": float(baseline.parallel_time),
        "n2": float(gated.parallel_time),
    }


def w0_sensitivity_grid(
    points: Sequence[tuple[WorkloadSpec | str, SystemConfig]],
    w0_values: tuple[int, ...] = DEFAULT_W0_VALUES,
    power_model: PowerModel | None = None,
    executor: Executor | None = None,
) -> list[dict[int, dict[str, float]]]:
    """Fig. 7 curves for many (workload, config) points in ONE batch.

    Submitting the whole grid at once is what buys parallel speed-up:
    every (baseline + per-:math:`W_0`) run of every point lands in the
    same executor batch, identical jobs (shared ungated baselines)
    collapse to one execution, and results come back grouped per point
    in submission order.
    """
    # Lazy: repro.scenarios builds on the harness; importing it here
    # (like repro.exec does for the runner) avoids a package cycle.
    from ..scenarios.runner import run_specs
    from ..scenarios.spec import ScenarioSpec

    exe = executor if executor is not None else Executor()
    model = power_model if power_model is not None else PowerModel.derive()

    specs: list[ScenarioSpec] = []
    for source, config in points:
        base = ScenarioSpec.from_workload_config(_as_spec(source), config)
        specs.append(base.with_updates(gating=False))
        specs.extend(
            base.with_updates(gating=True, w0=w0) for w0 in w0_values
        )
    results = [
        entry.result
        for entry in run_specs(specs, executor=exe, power_model=model)
    ]

    curves: list[dict[int, dict[str, float]]] = []
    stride = 1 + len(w0_values)
    for index in range(len(points)):
        block = results[index * stride : (index + 1) * stride]
        baseline, gated_runs = block[0], block[1:]
        curves.append(
            {
                w0: _point_metrics(baseline, gated)
                for w0, gated in zip(w0_values, gated_runs)
            }
        )
    return curves


def w0_sensitivity(
    source: WorkloadSpec | str,
    config: SystemConfig,
    w0_values: tuple[int, ...] = DEFAULT_W0_VALUES,
    power_model: PowerModel | None = None,
    executor: Executor | None = None,
) -> dict[int, dict[str, float]]:
    """Speed-up and energy reduction per :math:`W_0` (one Fig. 7 curve).

    Returns ``{w0: {"speedup": ..., "energy_reduction": ...,
    "power_reduction": ...}}`` for the given processor count.
    """
    return w0_sensitivity_grid(
        [(source, config)],
        w0_values=w0_values,
        power_model=power_model,
        executor=executor,
    )[0]


def proc_scaling(
    source: WorkloadSpec | str,
    base_config: SystemConfig,
    proc_counts: tuple[int, ...] = (1, 2, 4, 8, 16),
    power_model: PowerModel | None = None,
    executor: Executor | None = None,
) -> dict[int, ExecResult]:
    """Parallel-time scaling of one configuration across core counts."""
    from ..scenarios.runner import run_specs
    from ..scenarios.spec import ScenarioSpec

    spec = _as_spec(source)
    exe = executor if executor is not None else Executor()
    model = power_model if power_model is not None else PowerModel.derive()
    scenarios = [
        ScenarioSpec.from_workload_config(
            spec, dataclasses.replace(base_config, num_procs=num_procs)
        )
        for num_procs in proc_counts
    ]
    results = [
        entry.result
        for entry in run_specs(scenarios, executor=exe, power_model=model)
    ]
    return dict(zip(proc_counts, results))
