"""Parameter sweeps: the Fig. 7 sensitivity analysis and scaling studies.

Fig. 7 plots speed-up (gated vs ungated) as a function of the
contention-management constant :math:`W_0` and the processor count
:math:`N_p`.  The ungated baseline does not depend on :math:`W_0`, so
each (workload, Np) point runs one baseline plus one gated run per
:math:`W_0` value.

All sweeps submit their runs as :class:`~repro.exec.jobs.RunJob`
batches through an :class:`~repro.exec.executor.Executor`, so they
parallelize across worker processes (``executor=Executor(jobs=N)``),
deduplicate shared baselines, and answer repeat sweeps from an attached
:class:`~repro.exec.store.ResultStore` without re-simulating.  Passing
no executor preserves the historical serial, uncached behaviour.
"""

from __future__ import annotations

import dataclasses
from typing import Sequence

from ..config import SystemConfig
from ..exec.executor import Executor
from ..exec.jobs import ExecResult, RunJob
from ..power.energy import average_power_reduction, energy_reduction
from ..power.model import PowerModel
from .runner import WorkloadSpec

__all__ = [
    "w0_sensitivity",
    "w0_sensitivity_grid",
    "proc_scaling",
    "DEFAULT_W0_VALUES",
]

#: the W0 values swept in our Fig. 7 reproduction
DEFAULT_W0_VALUES: tuple[int, ...] = (1, 2, 4, 8, 16, 32)


def _as_spec(source: WorkloadSpec | str) -> WorkloadSpec:
    return WorkloadSpec(source) if isinstance(source, str) else source


def _point_metrics(baseline: ExecResult, gated: ExecResult) -> dict[str, float]:
    """The Fig. 7 per-point metrics from one baseline/gated pair."""
    return {
        "speedup": baseline.parallel_time / gated.parallel_time,
        "energy_reduction": energy_reduction(baseline.energy, gated.energy),
        "power_reduction": average_power_reduction(
            baseline.energy, gated.energy
        ),
        "n1": float(baseline.parallel_time),
        "n2": float(gated.parallel_time),
    }


def w0_sensitivity_grid(
    points: Sequence[tuple[WorkloadSpec | str, SystemConfig]],
    w0_values: tuple[int, ...] = DEFAULT_W0_VALUES,
    power_model: PowerModel | None = None,
    executor: Executor | None = None,
) -> list[dict[int, dict[str, float]]]:
    """Fig. 7 curves for many (workload, config) points in ONE batch.

    Submitting the whole grid at once is what buys parallel speed-up:
    every (baseline + per-:math:`W_0`) run of every point lands in the
    same executor batch, identical jobs (shared ungated baselines)
    collapse to one execution, and results come back grouped per point
    in submission order.
    """
    exe = executor if executor is not None else Executor()
    model = power_model if power_model is not None else PowerModel.derive()

    jobs: list[RunJob] = []
    for source, config in points:
        spec = _as_spec(source)
        jobs.append(RunJob(spec, config.with_gating(False), model))
        jobs.extend(
            RunJob(spec, config.with_gating(True).with_w0(w0), model)
            for w0 in w0_values
        )
    results = exe.run(jobs)

    curves: list[dict[int, dict[str, float]]] = []
    stride = 1 + len(w0_values)
    for index in range(len(points)):
        block = results[index * stride : (index + 1) * stride]
        baseline, gated_runs = block[0], block[1:]
        curves.append(
            {
                w0: _point_metrics(baseline, gated)
                for w0, gated in zip(w0_values, gated_runs)
            }
        )
    return curves


def w0_sensitivity(
    source: WorkloadSpec | str,
    config: SystemConfig,
    w0_values: tuple[int, ...] = DEFAULT_W0_VALUES,
    power_model: PowerModel | None = None,
    executor: Executor | None = None,
) -> dict[int, dict[str, float]]:
    """Speed-up and energy reduction per :math:`W_0` (one Fig. 7 curve).

    Returns ``{w0: {"speedup": ..., "energy_reduction": ...,
    "power_reduction": ...}}`` for the given processor count.
    """
    return w0_sensitivity_grid(
        [(source, config)],
        w0_values=w0_values,
        power_model=power_model,
        executor=executor,
    )[0]


def proc_scaling(
    source: WorkloadSpec | str,
    base_config: SystemConfig,
    proc_counts: tuple[int, ...] = (1, 2, 4, 8, 16),
    power_model: PowerModel | None = None,
    executor: Executor | None = None,
) -> dict[int, ExecResult]:
    """Parallel-time scaling of one configuration across core counts."""
    spec = _as_spec(source)
    exe = executor if executor is not None else Executor()
    model = power_model if power_model is not None else PowerModel.derive()
    configs = [
        dataclasses.replace(base_config, num_procs=num_procs)
        for num_procs in proc_counts
    ]
    results = exe.run([RunJob(spec, config, model) for config in configs])
    return dict(zip(proc_counts, results))
