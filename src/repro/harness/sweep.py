"""Parameter sweeps: the Fig. 7 sensitivity analysis and scaling studies.

Fig. 7 plots speed-up (gated vs ungated) as a function of the
contention-management constant :math:`W_0` and the processor count
:math:`N_p`.  The ungated baseline does not depend on :math:`W_0`, so
each (workload, Np) point runs one baseline plus one gated run per
:math:`W_0` value.
"""

from __future__ import annotations

import dataclasses

from ..config import SystemConfig
from ..power.model import PowerModel
from .runner import RunResult, WorkloadSpec, run_workload

__all__ = ["w0_sensitivity", "proc_scaling"]

#: the W0 values swept in our Fig. 7 reproduction
DEFAULT_W0_VALUES: tuple[int, ...] = (1, 2, 4, 8, 16, 32)
__all__.append("DEFAULT_W0_VALUES")


def w0_sensitivity(
    source: WorkloadSpec | str,
    config: SystemConfig,
    w0_values: tuple[int, ...] = DEFAULT_W0_VALUES,
    power_model: PowerModel | None = None,
) -> dict[int, dict[str, float]]:
    """Speed-up and energy reduction per :math:`W_0` (one Fig. 7 curve).

    Returns ``{w0: {"speedup": ..., "energy_reduction": ...,
    "power_reduction": ...}}`` for the given processor count.
    """
    if isinstance(source, str):
        source = WorkloadSpec(source)
    instance = source.build(config.num_procs)
    model = power_model if power_model is not None else PowerModel.derive()

    baseline = run_workload(
        instance, config.with_gating(False), power_model=model
    )
    results: dict[int, dict[str, float]] = {}
    for w0 in w0_values:
        gated_cfg = config.with_gating(True).with_w0(w0)
        gated = run_workload(instance, gated_cfg, power_model=model)
        results[w0] = {
            "speedup": baseline.parallel_time / gated.parallel_time,
            "energy_reduction": baseline.energy.total / gated.energy.total,
            "power_reduction": (baseline.energy.total / gated.energy.total)
            * (gated.parallel_time / baseline.parallel_time),
            "n1": float(baseline.parallel_time),
            "n2": float(gated.parallel_time),
        }
    return results


def proc_scaling(
    source: WorkloadSpec | str,
    base_config: SystemConfig,
    proc_counts: tuple[int, ...] = (1, 2, 4, 8, 16),
    power_model: PowerModel | None = None,
) -> dict[int, RunResult]:
    """Parallel-time scaling of one configuration across core counts."""
    if isinstance(source, str):
        source = WorkloadSpec(source)
    model = power_model if power_model is not None else PowerModel.derive()
    results: dict[int, RunResult] = {}
    for num_procs in proc_counts:
        config = dataclasses.replace(base_config, num_procs=num_procs)
        results[num_procs] = run_workload(source, config, power_model=model)
    return results
