"""Serializability validation (Invariant 1 of DESIGN.md).

The TCC commit protocol must make the committed transactions appear to
execute serially in TID order.  The checker replays the commit log:

* maintain a model memory starting from the initial image;
* apply non-transactional writes in timestamp order interleaved with
  commits (non-tx writes are only legal for thread-private data, but
  the replay tolerates them exactly where they happened);
* for each committed transaction, in TID order: every logged read must
  observe the model memory's current value, then its write-set is
  applied;
* afterwards, the model memory must equal the machine's final memory.

Any divergence is a protocol bug, reported with full context.
"""

from __future__ import annotations

from ..errors import ProtocolError
from ..htm.machine import MachineResult

__all__ = ["check_serializability"]


def check_serializability(
    initial_memory: dict[int, int],
    result: MachineResult,
    version_log: list[tuple[int, int, int, int]],
) -> None:
    """Replay the commit log in TID order and compare against reality."""
    commits = sorted(result.commit_log, key=lambda tx: tx.tid)
    tids = [tx.tid for tx in commits]
    if len(set(tids)) != len(tids):
        raise ProtocolError(f"duplicate TIDs in commit log: {tids}")

    # Non-transactional writes, in commit order relative to transactions:
    # the version log is time-ordered; tx writes carry their TID, non-tx
    # writes carry -1.  Replay applies each non-tx write just before the
    # first transaction that committed after it.
    nontx = [(t, addr, val) for (t, addr, val, tid) in version_log if tid == -1]
    nontx_idx = 0

    model: dict[int, int] = dict(initial_memory)

    def apply_nontx_until(time: int) -> None:
        nonlocal nontx_idx
        while nontx_idx < len(nontx) and nontx[nontx_idx][0] <= time:
            _, addr, val = nontx[nontx_idx]
            model[addr] = val
            nontx_idx += 1

    for tx in commits:
        apply_nontx_until(tx.commit_time)
        for addr, observed in tx.reads:
            expected = model.get(addr, 0)
            if observed != expected:
                raise ProtocolError(
                    f"serializability violation: TID {tx.tid} "
                    f"({tx.site} on proc {tx.proc}) read {observed} at "
                    f"{addr:#x} but TID-order replay expects {expected}"
                )
        for addr, value in tx.writes:
            model[addr] = value
    apply_nontx_until(float("inf"))  # type: ignore[arg-type]

    final = result.memory_snapshot
    touched = set(model) | {
        addr for tx in commits for addr, _ in tx.writes
    }
    for addr in sorted(touched):
        if model.get(addr, 0) != final.get(addr, 0):
            raise ProtocolError(
                f"final memory diverges from TID-order replay at {addr:#x}: "
                f"machine={final.get(addr, 0)} replay={model.get(addr, 0)}"
            )
