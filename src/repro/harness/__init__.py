"""Experiment harness (system S10 in DESIGN.md).

High-level entry points:

* :func:`~repro.harness.runner.run_workload` — one workload on one
  configuration, with energy accounting and functional validation.
* :func:`~repro.harness.compare.compare_gating` — the paired
  with/without-clock-gating methodology of Figs. 4–6.
* :class:`~repro.harness.experiments.EvaluationSuite` — regenerates
  every table and figure of the paper's evaluation.
"""

from .runner import RunResult, WorkloadSpec, run_workload, workload
from .compare import GatingComparison, compare_gating
from .sweep import w0_sensitivity, w0_sensitivity_grid, proc_scaling
from .experiments import EvaluationSuite
from .reporting import format_table, format_matrix
from .validation import check_serializability
from ..workloads.registry import available_workloads

__all__ = [
    "RunResult",
    "WorkloadSpec",
    "run_workload",
    "workload",
    "GatingComparison",
    "compare_gating",
    "w0_sensitivity",
    "w0_sensitivity_grid",
    "proc_scaling",
    "EvaluationSuite",
    "format_table",
    "format_matrix",
    "check_serializability",
    "available_workloads",
]
