"""Fixed-width text rendering for experiment output.

The benchmark harness prints the same rows/series the paper's figures
plot; these helpers keep that output aligned and diff-friendly (they
are what EXPERIMENTS.md embeds).
"""

from __future__ import annotations

from typing import Any, Mapping, Sequence

__all__ = ["format_table", "format_matrix"]


def _render(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    title: str | None = None,
) -> str:
    """Render an aligned text table with a header rule."""
    cells = [[_render(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines: list[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_matrix(
    row_labels: Sequence[Any],
    col_labels: Sequence[Any],
    values: Mapping[Any, Mapping[Any, Any]],
    corner: str = "",
    title: str | None = None,
) -> str:
    """Render ``values[row][col]`` as an aligned grid."""
    headers = [corner] + [_render(c) for c in col_labels]
    rows = []
    for r in row_labels:
        rows.append([r] + [values.get(r, {}).get(c, "-") for c in col_labels])
    return format_table(headers, rows, title=title)
