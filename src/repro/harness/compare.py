"""Paired with/without-clock-gating comparison (Figs. 4–6 methodology).

The paper evaluates every (application, processor count) point twice on
identical hardware — once with the gating protocol, once without — and
reports speed-up (Fig. 4 annotations), the Eq. (6) energy-reduction
factor (Fig. 5) and the Eq. (7) average-power reduction (Fig. 6).
:func:`compare_gating` reproduces exactly that: one workload instance,
two runs differing only in the gating switch.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import SystemConfig
from ..power.energy import average_power_reduction, energy_reduction
from ..power.model import PowerModel
from ..power.report import EnergyReport
from .runner import RunResult, WorkloadSpec, run_workload

__all__ = ["GatingComparison", "compare_gating"]


@dataclass
class GatingComparison:
    """Both runs of one evaluation point, with the paper's three metrics."""

    workload: str
    num_procs: int
    ungated: RunResult
    gated: RunResult

    @property
    def n1(self) -> int:
        """Ungated parallel time (the paper's N1)."""
        return self.ungated.parallel_time

    @property
    def n2(self) -> int:
        """Gated parallel time (the paper's N2)."""
        return self.gated.parallel_time

    @property
    def speedup(self) -> float:
        """Fig. 4 annotation: N1/N2 (> 1 means gating is faster)."""
        return self.n1 / self.n2

    @property
    def energy_reduction(self) -> float:
        """Eq. (6) / Fig. 5 annotation: Eug/Eg."""
        return energy_reduction(self.ungated.energy, self.gated.energy)

    @property
    def power_reduction(self) -> float:
        """Eq. (7) / Fig. 6: (Eug/Eg)·(N2/N1)."""
        return average_power_reduction(self.ungated.energy, self.gated.energy)

    def energy_report(self) -> EnergyReport:
        label = f"{self.workload} × {self.num_procs} procs"
        return EnergyReport(label, self.ungated.energy, self.gated.energy)

    def summary(self) -> str:
        return (
            f"{self.workload} x{self.num_procs}: speed-up {self.speedup:.3f}, "
            f"energy reduction {self.energy_reduction:.3f}, "
            f"power reduction {self.power_reduction:.3f} "
            f"(aborts {self.ungated.aborts} -> {self.gated.aborts})"
        )


def compare_gating(
    source: WorkloadSpec | str,
    config: SystemConfig,
    power_model: PowerModel | None = None,
    validate: bool = True,
) -> GatingComparison:
    """Run ``source`` with and without clock gating on identical hardware.

    The workload instance is built once and reused for both runs, so
    the two executions see byte-identical initial memory and identical
    program streams — only the gating switch differs.
    """
    if isinstance(source, str):
        source = WorkloadSpec(source)
    instance = source.build(config.num_procs)
    model = power_model if power_model is not None else PowerModel.derive()

    ungated = run_workload(
        instance, config.with_gating(False), power_model=model, validate=validate
    )
    gated = run_workload(
        instance, config.with_gating(True), power_model=model, validate=validate
    )
    return GatingComparison(
        workload=instance.name,
        num_procs=config.num_procs,
        ungated=ungated,
        gated=gated,
    )
