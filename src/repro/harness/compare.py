"""Paired with/without-clock-gating comparison (Figs. 4–6 methodology).

The paper evaluates every (application, processor count) point twice on
identical hardware — once with the gating protocol, once without — and
reports speed-up (Fig. 4 annotations), the Eq. (6) energy-reduction
factor (Fig. 5) and the Eq. (7) average-power reduction (Fig. 6).
:func:`compare_gating` reproduces exactly that: one workload spec, two
runs differing only in the gating switch.

Both runs are submitted as :class:`~repro.exec.jobs.RunJob` values
through an :class:`~repro.exec.executor.Executor`, so a comparison can
fan across worker processes and hit the content-addressed result cache;
each job builds its workload instance from the same (name, scale, seed)
spec, so the two executions still see byte-identical initial memory and
identical program streams — only the gating switch differs.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import SystemConfig
from ..exec.executor import Executor
from ..exec.jobs import ExecResult, RunJob
from ..power.energy import average_power_reduction, energy_reduction
from ..power.model import PowerModel
from ..power.report import EnergyReport
from .runner import RunResult, WorkloadSpec

__all__ = ["GatingComparison", "compare_gating"]


@dataclass
class GatingComparison:
    """Both runs of one evaluation point, with the paper's three metrics."""

    workload: str
    num_procs: int
    ungated: RunResult | ExecResult
    gated: RunResult | ExecResult

    @property
    def n1(self) -> int:
        """Ungated parallel time (the paper's N1)."""
        return self.ungated.parallel_time

    @property
    def n2(self) -> int:
        """Gated parallel time (the paper's N2)."""
        return self.gated.parallel_time

    @property
    def speedup(self) -> float:
        """Fig. 4 annotation: N1/N2 (> 1 means gating is faster)."""
        return self.n1 / self.n2

    @property
    def energy_reduction(self) -> float:
        """Eq. (6) / Fig. 5 annotation: Eug/Eg."""
        return energy_reduction(self.ungated.energy, self.gated.energy)

    @property
    def power_reduction(self) -> float:
        """Eq. (7) / Fig. 6: (Eug/Eg)·(N2/N1)."""
        return average_power_reduction(self.ungated.energy, self.gated.energy)

    def energy_report(self) -> EnergyReport:
        label = f"{self.workload} × {self.num_procs} procs"
        return EnergyReport(label, self.ungated.energy, self.gated.energy)

    def summary(self) -> str:
        return (
            f"{self.workload} x{self.num_procs}: speed-up {self.speedup:.3f}, "
            f"energy reduction {self.energy_reduction:.3f}, "
            f"power reduction {self.power_reduction:.3f} "
            f"(aborts {self.ungated.aborts} -> {self.gated.aborts})"
        )


def compare_gating(
    source: WorkloadSpec | str,
    config: SystemConfig,
    power_model: PowerModel | None = None,
    validate: bool = True,
    executor: Executor | None = None,
) -> GatingComparison:
    """Run ``source`` with and without clock gating on identical hardware.

    With ``executor`` supplied, the pair runs through the shared
    :mod:`repro.exec` pipeline (parallel workers, in-batch dedup,
    on-disk result cache); by default an inline serial executor is used
    and the behaviour matches the historical API.
    """
    if isinstance(source, str):
        source = WorkloadSpec(source)
    exe = executor if executor is not None else Executor()
    model = power_model if power_model is not None else PowerModel.derive()

    ungated, gated = exe.run(
        [
            RunJob(source, config.with_gating(False), model, validate=validate),
            RunJob(source, config.with_gating(True), model, validate=validate),
        ]
    )
    return GatingComparison(
        workload=ungated.workload,
        num_procs=config.num_procs,
        ungated=ungated,
        gated=gated,
    )
