"""The paper's full evaluation (Section VIII) as one reusable suite.

:class:`EvaluationSuite` lazily runs each (application × processor
count) comparison once and derives every figure from the cached runs —
exactly the data-sharing structure of the paper, where Figs. 4, 5 and 6
all come from the same simulations:

* Fig. 4 — total parallel execution time, with/without gating, speed-up
  annotated (``fig4_rows``).
* Fig. 5 — energy consumption, reduction factor annotated
  (``fig5_rows``).
* Fig. 6 — average power dissipation (``fig6_rows``).
* Fig. 7 — speed-up vs :math:`W_0` and :math:`N_p` (``fig7_matrix``).
* Fig. 3 — TCC data-cache power vs RW-bit resolution (``fig3_curves``;
  analytic, no simulation).
* Table I — power factors (``table1_rows``); Table II — system
  parameters (``table2_rows``).
* §VIII headline averages — ``headline()``.
"""

from __future__ import annotations

import dataclasses
from typing import Sequence

from ..config import GatingConfig, SystemConfig
from ..exec.executor import Executor
from ..power.cacti import FIG3_CACHE_SIZES_KB, tcc_cache_power_curve
from ..power.model import PowerModel
from ..workloads.registry import PAPER_APPS
from .compare import GatingComparison, compare_gating
from .runner import WorkloadSpec
from .sweep import DEFAULT_W0_VALUES, w0_sensitivity_grid

__all__ = ["EvaluationSuite"]


class EvaluationSuite:
    """Runs and caches the paper's evaluation grid.

    The grid itself is declarative: :meth:`scenario_suite` exposes the
    Fig. 4–6 matrix as a :class:`~repro.scenarios.suite.ScenarioSuite`
    (the same object behind ``repro suite run --suite paper-eval``) and
    :meth:`run_all` executes its expansion.  With an ``executor``,
    whole figure grids are submitted as one job batch through
    :mod:`repro.exec` — fanning across worker processes, sharing the
    ungated baselines between the Fig. 4–6 comparisons and the Fig. 7
    sweeps via content-digest dedup, and answering repeat evaluations
    from the executor's result store.
    """

    def __init__(
        self,
        scale: str = "small",
        seed: int = 0,
        procs: Sequence[int] = (4, 8, 16),
        apps: Sequence[str] = PAPER_APPS,
        w0: int = 8,
        base_config: SystemConfig | None = None,
        executor: Executor | None = None,
    ):
        self.scale = scale
        self.seed = seed
        self.procs = tuple(procs)
        self.apps = tuple(apps)
        self.w0 = w0
        self._base = base_config if base_config is not None else SystemConfig()
        self._model = PowerModel.derive()
        self._exec = executor if executor is not None else Executor()
        self._comparisons: dict[tuple[str, int], GatingComparison] = {}
        self._w0_curves: dict[tuple[str, int], dict[int, dict[str, float]]] = {}

    # ------------------------------------------------------------------
    def _config(self, num_procs: int) -> SystemConfig:
        return dataclasses.replace(
            self._base,
            num_procs=num_procs,
            num_dirs=None,
            seed=self.seed,
            gating=GatingConfig(enabled=True, w0=self.w0),
        )

    def _spec(self, app: str) -> WorkloadSpec:
        return WorkloadSpec(app, scale=self.scale, seed=self.seed)

    def comparison(self, app: str, num_procs: int) -> GatingComparison:
        """The cached gated/ungated pair for one evaluation point."""
        key = (app, num_procs)
        if key not in self._comparisons:
            self._comparisons[key] = compare_gating(
                self._spec(app),
                self._config(num_procs),
                power_model=self._model,
                executor=self._exec,
            )
        return self._comparisons[key]

    def scenario_suite(self):
        """The Figs. 4–6 grid as a declarative scenario suite.

        Axis order (workload, threads, gating) matches :meth:`run_all`'s
        historical submission order, so the expanded grid lowers to the
        same job batch.
        """
        from ..scenarios.spec import ScenarioSpec
        from ..scenarios.suite import suite

        base = ScenarioSpec.from_workload_config(
            self._spec(self.apps[0]), self._config(self.procs[0])
        )
        return suite(
            "paper-eval",
            base,
            axes={
                "workload": self.apps,
                "threads": self.procs,
                "gating": (False, True),
            },
            description="Figs. 4-6: every evaluation point, both gating modes",
        )

    def plan(self, store) -> "object":
        """Cache coverage of the Figs. 4–6 grid, without simulating.

        Probes *store* (a :class:`~repro.exec.store.ResultStore`, any
        backend) per unique job digest and returns the
        :class:`~repro.scenarios.runner.SuitePlan` — the cache-aware
        entry point for regenerating figures incrementally: dispatch
        ``plan.residual_suite()`` first, then :meth:`run_all` is pure
        cache hits.
        """
        from ..scenarios.runner import plan_suite

        return plan_suite(
            self.scenario_suite(), store=store, power_model=self._model
        )

    def run_all(self) -> None:
        """Force-run the whole grid as ONE executor batch.

        The grid comes from :meth:`scenario_suite`; submitting every
        (app × procs × gating) scenario together lets the executor fan
        the expansion across its workers and deduplicate any shared
        runs.  Results land in the same per-point comparison cache that
        :meth:`comparison` fills lazily.
        """
        from ..scenarios.runner import run_specs

        missing = {
            (app, num_procs)
            for app in self.apps
            for num_procs in self.procs
            if (app, num_procs) not in self._comparisons
        }
        if not missing:
            return
        specs = [
            spec
            for spec in self.scenario_suite().expand()
            if (spec.workload, spec.threads) in missing
        ]
        from ..figures.extract import comparisons_from_results

        results = run_specs(
            specs, executor=self._exec, power_model=self._model
        )
        self._comparisons.update(comparisons_from_results(results))

    def _comparison_grid(self) -> dict[tuple[str, int], GatingComparison]:
        """Every (app, procs) comparison, lazily filled, as one mapping."""
        return {
            (app, num_procs): self.comparison(app, num_procs)
            for app in self.apps
            for num_procs in self.procs
        }

    # ------------------------------------------------------------------
    # figures — row derivations shared with repro.figures.extract
    # ------------------------------------------------------------------
    def fig4_rows(self) -> list[tuple]:
        """(app, procs, N1, N2, speed-up) — Fig. 4's bar pairs."""
        from ..figures.extract import fig4_rows

        return fig4_rows(self._comparison_grid(), self.apps, self.procs)

    def fig5_rows(self) -> list[tuple]:
        """(app, procs, Eug, Eg, reduction factor) — Fig. 5."""
        from ..figures.extract import fig5_rows

        return fig5_rows(self._comparison_grid(), self.apps, self.procs)

    def fig6_rows(self) -> list[tuple]:
        """(app, procs, avg power ungated, gated, reduction) — Fig. 6."""
        from ..figures.extract import fig6_rows

        return fig6_rows(self._comparison_grid(), self.apps, self.procs)

    def fig7_matrix(
        self, w0_values: tuple[int, ...] = DEFAULT_W0_VALUES
    ) -> dict[str, dict[int, dict[int, float]]]:
        """``{app: {num_procs: {w0: speed-up}}}`` — Fig. 7."""
        # Resolve every missing curve in one executor batch; cached
        # curves are reused unless they lack a requested W0 value.
        missing = [
            (app, num_procs)
            for app in self.apps
            for num_procs in self.procs
            if not set(w0_values)
            <= set(self._w0_curves.get((app, num_procs), {}))
        ]
        if missing:
            curves = w0_sensitivity_grid(
                [
                    (self._spec(app), self._config(num_procs))
                    for app, num_procs in missing
                ],
                w0_values=w0_values,
                power_model=self._model,
                executor=self._exec,
            )
            for key, curve in zip(missing, curves):
                self._w0_curves.setdefault(key, {}).update(curve)

        out: dict[str, dict[int, dict[int, float]]] = {}
        for app in self.apps:
            out[app] = {}
            for num_procs in self.procs:
                curve = self._w0_curves[(app, num_procs)]
                out[app][num_procs] = {
                    w0: curve[w0]["speedup"] for w0 in w0_values
                }
        return out

    @staticmethod
    def fig3_curves(
        sizes_kb: tuple[int, ...] = FIG3_CACHE_SIZES_KB,
    ) -> dict[int, list[tuple[int, float]]]:
        """``{cache KB: [(granularity bytes, normalized power)]}`` — Fig. 3."""
        return {size: tcc_cache_power_curve(size) for size in sizes_kb}

    # ------------------------------------------------------------------
    # tables and headline numbers
    # ------------------------------------------------------------------
    def table1_rows(self) -> list[tuple[str, float]]:
        return self._model.table1_rows()

    def table2_rows(self, num_procs: int = 16) -> list[tuple[str, str]]:
        return self._config(num_procs).table2_rows()

    def headline(self) -> dict[str, float]:
        """Section VIII averages over the full grid.

        The paper reports the averages as percentages: "average
        speed-up of 4%", "average reduction in the energy consumption
        is 19%", "reduction in the average power dissipation is 13%".
        """
        from ..figures.extract import headline_from_comparisons

        return headline_from_comparisons(
            self._comparison_grid(), self.apps, self.procs
        )
