"""Single-run execution: workload × configuration → :class:`RunResult`.

A run builds (or accepts) a workload instance, wires a machine,
executes to completion, verifies the timeline tiling invariant, runs
the workload's functional validators against final memory, optionally
checks TID-order serializability, and computes the energy breakdown
with the paper's accounting (cross-checked interval vs direct).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any

from ..config import SystemConfig
from ..errors import HarnessError
from ..htm.machine import Machine, MachineResult
from ..metrics import TxMetricsMixin
from ..power.energy import EnergyBreakdown, compute_energy
from ..power.model import PowerModel
from ..sim.timeline import verify_tiling
from ..sim.trace import NullTrace
from ..workloads.base import WorkloadInstance
from ..workloads.registry import build_workload, workload_seed_invariant
from .validation import check_serializability

__all__ = [
    "WorkloadSpec", "workload", "RunResult", "RunReuse", "run_workload",
]


@dataclass(frozen=True)
class WorkloadSpec:
    """A workload by name, to be built against a configuration.

    The thread count is deliberately absent: it is taken from
    ``SystemConfig.num_procs`` at run time, so the same spec serves a
    4-, 8- and 16-core sweep (Fig. 4's x-axis).
    """

    name: str
    scale: str = "small"
    seed: int = 0
    overrides: tuple[tuple[str, Any], ...] = ()

    def build(self, num_threads: int) -> WorkloadInstance:
        return build_workload(
            self.name,
            num_threads,
            scale=self.scale,
            seed=self.seed,
            **dict(self.overrides),
        )


def workload(
    name: str, scale: str = "small", seed: int = 0, **overrides: Any
) -> WorkloadSpec:
    """Convenience constructor: ``workload("intruder", scale="tiny")``."""
    return WorkloadSpec(name, scale, seed, tuple(sorted(overrides.items())))


@dataclass
class RunResult(TxMetricsMixin):
    """Everything measured in one run.

    Counter-derived metrics (``commits``, ``aborts``, ``abort_rate``,
    ``wasted_cycles``, ``summary``) come from
    :class:`~repro.metrics.TxMetricsMixin`, shared with the condensed
    :class:`~repro.exec.jobs.ExecResult` so both views always agree.
    """

    workload: str
    scale: str
    config: SystemConfig
    machine_result: MachineResult
    energy: EnergyBreakdown
    counters: dict[str, int] = field(default_factory=dict)

    @property
    def parallel_time(self) -> int:
        """The paper's N (N1 ungated, N2 gated)."""
        return self.machine_result.parallel_time

    @property
    def end_cycle(self) -> int:
        return self.machine_result.end_cycle


class RunReuse:
    """Warm state shared across the runs of one replicate pack.

    Holds (a) one wired :class:`~repro.htm.machine.Machine`, reset
    between runs instead of rebuilt — keyed by the seed-zeroed config
    and the validation switch, so only true seed replicates ever share
    it — and (b) a prep cache of built :class:`WorkloadInstance` values
    for workloads whose builds are seed-invariant (see
    :func:`repro.workloads.registry.register_workload`).

    PACK-SHARING CONTRACT: everything cached here must be independent
    of the seed slots and immutable after preparation (cache keys
    include every seed-relevant input; cached instances are re-stamped,
    never mutated).  ``repro check``'s DIG103 rule polices new caches
    against this contract.

    Reuse counters (``machine_resets``, ``prep_hits``) feed the
    ``pack.reset_reuses`` / ``pack.shared_prep_hits`` obs metrics.
    """

    def __init__(self) -> None:
        self._machine: Machine | None = None
        self._machine_key: tuple[SystemConfig, bool] | None = None
        # (name, scale, overrides, num_threads) -> seed-invariant build
        self._prep: dict[
            tuple[str, str, tuple[tuple[str, Any], ...], int], WorkloadInstance
        ] = {}
        self.machine_resets = 0
        self.prep_hits = 0

    def discard_machine(self) -> None:
        """Drop the cached machine (a failed run leaves it mid-state)."""
        self._machine = None
        self._machine_key = None


def _resolve_instance(
    source: WorkloadInstance | WorkloadSpec | str,
    config: SystemConfig,
    reuse: RunReuse | None = None,
) -> WorkloadInstance:
    if isinstance(source, WorkloadInstance):
        if source.num_threads != config.num_procs:
            raise HarnessError(
                f"workload built for {source.num_threads} threads cannot run "
                f"on {config.num_procs} processors"
            )
        return source
    if isinstance(source, str):
        source = WorkloadSpec(source)
    if isinstance(source, WorkloadSpec):
        if reuse is not None and workload_seed_invariant(source.name):
            # Seed-invariant build: share one construction across the
            # pack.  The key carries every non-seed build input; the
            # cached instance is re-stamped with the member's seed, not
            # mutated (instances are documented reusable — programs are
            # pure generator factories and the image is copied out).
            key = (source.name, source.scale, source.overrides,
                   config.num_procs)
            instance = reuse._prep.get(key)
            if instance is None:
                reuse._prep[key] = instance = source.build(config.num_procs)
            else:
                reuse.prep_hits += 1
            if instance.seed != source.seed:
                instance = replace(instance, seed=source.seed)
            return instance
        return source.build(config.num_procs)
    raise HarnessError(f"cannot interpret workload source {source!r}")


def run_workload(
    source: WorkloadInstance | WorkloadSpec | str,
    config: SystemConfig,
    power_model: PowerModel | None = None,
    trace: NullTrace | None = None,
    validate: bool = True,
    check_serial: bool = False,
    reuse: RunReuse | None = None,
) -> RunResult:
    """Execute one workload under one configuration.

    Parameters
    ----------
    validate:
        Run the workload's functional validators on final memory and
        verify the timeline tiling invariant (cheap; on by default).
    check_serial:
        Record per-transaction read/write logs and verify TID-order
        serializability (Invariant 1; costs memory — used by tests).
    reuse:
        Optional :class:`RunReuse` carrying pack-shared warm state.
        When the cached machine's topology matches (config equal up to
        ``seed``, same validation mode), it is reset in place instead
        of rebuilt — bit-identical by the reset contract
        (:meth:`repro.htm.machine.Machine.reset`).  Ignored when a
        trace is requested (a machine binds its trace at construction).
    """
    instance = _resolve_instance(source, config, reuse)
    machine: Machine | None = None
    if reuse is not None and trace is None:
        machine_key = (replace(config, seed=0), check_serial)
        cached = reuse._machine
        if cached is not None and reuse._machine_key == machine_key:
            cached.reset(
                config,
                instance.programs,
                initial_memory=instance.initial_memory,
                validation_mode=check_serial,
            )
            reuse.machine_resets += 1
            machine = cached
    if machine is None:
        machine = Machine(
            config,
            instance.programs,
            initial_memory=instance.initial_memory,
            trace=trace,
            validation_mode=check_serial,
        )
        if reuse is not None and trace is None:
            reuse._machine = machine
            reuse._machine_key = (replace(config, seed=0), check_serial)
    mresult = machine.run()

    window = (mresult.parallel_start, mresult.parallel_end)
    if validate:
        verify_tiling(mresult.timelines, *window)
        instance.validate_final_memory(mresult.memory_snapshot)
    if check_serial:
        check_serializability(
            instance.initial_memory, mresult, machine.memory.version_log
        )

    model = power_model if power_model is not None else PowerModel.derive()
    energy = compute_energy(
        mresult.timelines, window, model, gated_run=config.gating.enabled
    )

    return RunResult(
        workload=instance.name,
        scale=instance.scale,
        config=config,
        machine_result=mresult,
        energy=energy,
        counters=mresult.counters(),
    )
