"""Baseline contention managers for the ablation studies.

These mirror the classic software-TM policies surveyed by Scherer &
Scott (the paper's reference [17]):

* :class:`ImmediateCM` — retry at once; the implicit baseline of the
  paper's ungated runs.
* :class:`LinearBackoffCM` — delay grows linearly with the abort streak.
* :class:`ExponentialBackoffCM` — delay doubles per abort, capped.
* :class:`PoliteBackoffCM` — exponential with deterministic per-processor
  jitter (randomized in the literature; derandomized here so runs stay
  reproducible — the jitter is a fixed per-(proc, streak) hash).

When used as the *gating* policy they translate the same schedule into
gating-window lengths, enabling apples-to-apples CM ablations with and
without clock gating.
"""

from __future__ import annotations

from ..errors import ConfigError
from ..sim.rng import derive_seed
from .base import ContentionManager

__all__ = [
    "ImmediateCM",
    "LinearBackoffCM",
    "ExponentialBackoffCM",
    "PoliteBackoffCM",
]


class ImmediateCM(ContentionManager):
    """Retry immediately; minimal gating window when asked for one."""

    name = "immediate"
    ungated_w0_independent = True

    def __init__(self, w0: int = 8):
        self.w0 = w0

    def gating_window(self, abort_count: int, renew_count: int) -> int:
        return self.w0

    def retry_delay(self, proc_id: int, consecutive_aborts: int) -> int:
        return 0


class LinearBackoffCM(ContentionManager):
    """Delay = ``step × streak``, capped."""

    name = "linear"

    def __init__(self, step: int = 16, cap: int = 4096):
        if step < 1 or cap < step:
            raise ConfigError("need step >= 1 and cap >= step")
        self.step = step
        self.cap = cap

    def gating_window(self, abort_count: int, renew_count: int) -> int:
        return min(self.cap, self.step * max(1, abort_count + renew_count))

    def retry_delay(self, proc_id: int, consecutive_aborts: int) -> int:
        return min(self.cap, self.step * consecutive_aborts)


class ExponentialBackoffCM(ContentionManager):
    """Delay = ``base × 2^(streak-1)``, capped."""

    name = "exponential"

    def __init__(self, base: int = 8, cap: int = 65536):
        if base < 1 or cap < base:
            raise ConfigError("need base >= 1 and cap >= base")
        self.base = base
        self.cap = cap

    def _delay(self, streak: int) -> int:
        if streak <= 0:
            return 0
        return min(self.cap, self.base << min(streak - 1, 30))

    def gating_window(self, abort_count: int, renew_count: int) -> int:
        return max(1, self._delay(abort_count + renew_count))

    def retry_delay(self, proc_id: int, consecutive_aborts: int) -> int:
        return self._delay(consecutive_aborts)


class PoliteBackoffCM(ExponentialBackoffCM):
    """Exponential back-off with deterministic jitter.

    The jitter draws a fraction of the nominal delay from a hash of
    ``(seed, proc_id, streak)`` — reproducible, yet decorrelated across
    processors the way randomized polite back-off intends.
    """

    name = "polite"

    def __init__(self, base: int = 8, cap: int = 65536, seed: int = 0):
        super().__init__(base, cap)
        self.seed = seed

    def _jittered(self, proc_id: int, streak: int) -> int:
        nominal = self._delay(streak)
        if nominal <= 1:
            return nominal
        span = nominal // 2
        offset = derive_seed(self.seed, proc_id, streak) % (span + 1)
        return nominal - span + offset

    def gating_window(self, abort_count: int, renew_count: int) -> int:
        return max(1, self._delay(abort_count + renew_count))

    def retry_delay(self, proc_id: int, consecutive_aborts: int) -> int:
        return self._jittered(proc_id, consecutive_aborts)
