"""Name-based contention-manager construction.

The :class:`~repro.config.GatingConfig` names its policy; the machine
resolves it here.  Third-party policies can be added with
:func:`register_cm` (they must subclass
:class:`~repro.cm.base.ContentionManager`).
"""

from __future__ import annotations

from typing import Callable

from ..config import GatingConfig
from ..errors import ConfigError
from .backoff import ExponentialBackoffCM, ImmediateCM, LinearBackoffCM, PoliteBackoffCM
from .base import ContentionManager
from .gating_aware import GatingAwareCM
from .momentum import MomentumCM

__all__ = ["create_cm", "available_cms", "register_cm"]

_FACTORIES: dict[str, Callable[[GatingConfig, int], ContentionManager]] = {
    "gating-aware": lambda g, seed: GatingAwareCM(w0=g.w0),
    "immediate": lambda g, seed: ImmediateCM(w0=g.w0),
    "linear": lambda g, seed: LinearBackoffCM(step=max(1, g.w0)),
    "exponential": lambda g, seed: ExponentialBackoffCM(base=max(1, g.w0)),
    "polite": lambda g, seed: PoliteBackoffCM(base=max(1, g.w0), seed=seed),
    "momentum": lambda g, seed: MomentumCM(w0=g.w0),
}


def available_cms() -> list[str]:
    """Registered policy names."""
    return sorted(_FACTORIES)


def register_cm(
    name: str, factory: Callable[[GatingConfig, int], ContentionManager]
) -> None:
    """Register a custom policy under ``name`` (overwrites allowed)."""
    if not name:
        raise ConfigError("policy name must be non-empty")
    _FACTORIES[name] = factory


def create_cm(gating: GatingConfig, seed: int = 0) -> ContentionManager:
    """Instantiate the policy named by ``gating.contention_manager``."""
    try:
        factory = _FACTORIES[gating.contention_manager]
    except KeyError:
        raise ConfigError(
            f"unknown contention manager {gating.contention_manager!r}; "
            f"available: {', '.join(available_cms())}"
        ) from None
    cm = factory(gating, seed)
    if not isinstance(cm, ContentionManager):
        raise ConfigError(
            f"factory for {gating.contention_manager!r} returned "
            f"{type(cm).__name__}, not a ContentionManager"
        )
    return cm
