"""Momentum-based contention management (the paper's future work).

Section VI closes: "Other contention management schemes based on the
momentum of the transaction at the time of abort are possible.  We have
left them as future works."  This module implements that idea.

*Momentum* is the work the victim had invested in its aborted attempt —
measured as cycles since the attempt began, a quantity the directory
can learn from the abort acknowledgement.  The intuition: a transaction
killed late (high momentum) was long, its conflictor is likely long
too, and an immediate retry will likely die again — so the gating
window should scale with the wasted work rather than with a fixed
:math:`W_0` staircase.  A transaction killed immediately (low momentum)
gets the minimum window.

The policy keeps Eq. 8's renewal escalation (the staircase over the
renew counter) so repeated renewals still grow the window
exponentially, and clamps everything to ``cap`` to bound worst-case
sleep.
"""

from __future__ import annotations

from ..errors import ConfigError
from .base import ContentionManager
from .gating_aware import staircase_term

__all__ = ["MomentumCM"]


class MomentumCM(ContentionManager):
    """Window ∝ victim momentum, with Eq. 8-style renewal escalation."""

    name = "momentum"
    ungated_w0_independent = True

    def __init__(self, w0: int = 8, momentum_fraction: float = 0.5,
                 cap: int = 4096):
        if w0 < 1:
            raise ConfigError(f"W0 must be >= 1, got {w0}")
        if not 0.0 < momentum_fraction <= 2.0:
            raise ConfigError("momentum fraction must be in (0, 2]")
        if cap < 2 * w0:
            raise ConfigError("cap must allow at least the minimum window")
        self.w0 = w0
        self.momentum_fraction = momentum_fraction
        self.cap = cap

    def gating_window(self, abort_count: int, renew_count: int) -> int:
        """Without momentum information, degrade to Eq. 8."""
        if abort_count < 1:
            raise ConfigError("gating window queried with no abort recorded")
        return min(
            self.cap,
            self.w0 * (staircase_term(abort_count) + staircase_term(renew_count)),
        )

    def gating_window_ex(
        self, abort_count: int, renew_count: int, momentum: int
    ) -> int:
        """Momentum-aware window (used when the directory knows it)."""
        if momentum <= 0:
            return self.gating_window(abort_count, renew_count)
        base = max(2 * self.w0, int(momentum * self.momentum_fraction))
        return min(self.cap, base * staircase_term(renew_count))

    def retry_delay(self, proc_id: int, consecutive_aborts: int) -> int:
        return 0

    def __repr__(self) -> str:
        return (
            f"<MomentumCM w0={self.w0} "
            f"fraction={self.momentum_fraction} cap={self.cap}>"
        )
