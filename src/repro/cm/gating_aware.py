"""The paper's gating-aware contention management scheme (Section VI).

Eq. (8):

.. math::

    W_t = W_0 \\, (2^{\\lceil \\lg N_a \\rceil} + 2^{\\lceil \\lg N_r \\rceil})

The ceiled logarithms make :math:`W_t` a *staircase* whose steps sit at
exponentially spaced counter values: the window grows only when the
abort count (or, at a fixed abort level, the renew count) crosses a
power of two.  "This results in a situation where the gating period is
moderately high for highly-conflicting applications ... if both the
abort count and the renew count are low, a processor will not be gated
substantially."

A zero counter contributes :math:`2^0 = 1` (the paper leaves
:math:`\\lceil \\lg 0 \\rceil` undefined; the first abort has
:math:`N_a = 1, N_r = 0`, and the natural reading — each term
contributes at least one unit — gives :math:`W_t(1, 0) = 2 W_0`,
matching the description that low counters yield a window of a couple
of :math:`W_0`).
"""

from __future__ import annotations

from ..errors import ConfigError
from .base import ContentionManager

__all__ = ["staircase_term", "GatingAwareCM"]


def staircase_term(count: int) -> int:
    """:math:`2^{\\lceil \\lg n \\rceil}`, with the 0 -> 1 convention.

    Values: 0->1, 1->1, 2->2, 3->4, 4->4, 5..8->8, 9..16->16, ...
    """
    if count < 0:
        raise ConfigError(f"counter cannot be negative: {count}")
    if count <= 1:
        return 1
    return 1 << (count - 1).bit_length()


class GatingAwareCM(ContentionManager):
    """Eq. (8) windows; immediate ungated retry (the paper's baseline)."""

    name = "gating-aware"
    #: ungated retries are immediate, so w0 never reaches the baseline
    ungated_w0_independent = True

    def __init__(self, w0: int = 8):
        if w0 < 1:
            raise ConfigError(f"W0 must be >= 1, got {w0}")
        self.w0 = w0

    def gating_window(self, abort_count: int, renew_count: int) -> int:
        if abort_count < 1:
            raise ConfigError("gating window queried with no abort recorded")
        return self.w0 * (staircase_term(abort_count) + staircase_term(renew_count))

    def retry_delay(self, proc_id: int, consecutive_aborts: int) -> int:
        # Without gating the paper's baseline retries immediately; with
        # gating the *window* is the back-off, so no extra delay here.
        return 0

    def __repr__(self) -> str:
        return f"<GatingAwareCM w0={self.w0}>"
