"""Contention-manager interface.

A contention manager answers two independent questions:

* :meth:`~ContentionManager.gating_window` — for how many cycles should
  a directory clock-gate a just-aborted processor?  (Used only when
  gating is enabled; this is :math:`W_t` of the paper.)
* :meth:`~ContentionManager.retry_delay` — how long should an aborted,
  *ungated* processor back off before re-executing?  (Used when gating
  is disabled; the paper's baseline retries immediately.)

Implementations must be deterministic functions of their arguments (and
of seeds fixed at construction) so that simulations stay reproducible.
"""

from __future__ import annotations

import abc

__all__ = ["ContentionManager"]


class ContentionManager(abc.ABC):
    """Strategy object consulted on every abort."""

    #: registry name, set by subclasses
    name: str = "abstract"

    #: True when :meth:`retry_delay` does not depend on :math:`W_0`, i.e.
    #: an *ungated* run under this policy is identical for every ``w0``.
    #: :mod:`repro.exec` uses this to collapse the ungated baselines of a
    #: :math:`W_0` sweep onto one content digest.  Policies whose ungated
    #: back-off is derived from ``w0`` (linear/exponential/polite) must
    #: leave this ``False``.
    ungated_w0_independent: bool = False

    @abc.abstractmethod
    def gating_window(self, abort_count: int, renew_count: int) -> int:
        """Gating duration :math:`W_t` in cycles.

        ``abort_count`` (:math:`N_a \\ge 1`) is the directory-local abort
        counter for the victim; ``renew_count`` (:math:`N_r \\ge 0`) the
        number of renewals at the current abort level.
        """

    @abc.abstractmethod
    def retry_delay(self, proc_id: int, consecutive_aborts: int) -> int:
        """Back-off in cycles before re-executing an aborted transaction."""

    def gating_window_ex(
        self, abort_count: int, renew_count: int, momentum: int
    ) -> int:
        """Momentum-aware window; defaults to ignoring momentum.

        ``momentum`` is the victim's invested work (cycles since its
        attempt began) at abort time — the paper's future-work signal
        (Section VI).  Policies that use it override this method; see
        :class:`~repro.cm.momentum.MomentumCM`.
        """
        return self.gating_window(abort_count, renew_count)

    def __repr__(self) -> str:
        return f"<{type(self).__name__}>"
