"""Contention management policies (system S6 in DESIGN.md).

The paper's contribution is the *gating-aware* staircase policy of
Eq. (8); the baselines here exist for the ablation benchmarks (the
paper argues plain exponential polite back-off "does incur significant
performance penalty for highly contentious applications").
"""

from .base import ContentionManager
from .gating_aware import GatingAwareCM, staircase_term
from .backoff import ImmediateCM, LinearBackoffCM, ExponentialBackoffCM, PoliteBackoffCM
from .momentum import MomentumCM
from .registry import create_cm, available_cms, register_cm

__all__ = [
    "ContentionManager",
    "GatingAwareCM",
    "staircase_term",
    "ImmediateCM",
    "LinearBackoffCM",
    "ExponentialBackoffCM",
    "PoliteBackoffCM",
    "MomentumCM",
    "create_cm",
    "available_cms",
    "register_cm",
]
