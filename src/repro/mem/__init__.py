"""Memory-hierarchy substrate (system S2 in DESIGN.md).

Models the Table II machine: private L1 data caches with speculative
read/write tracking, a common split-transaction bus, full-bit-vector
directories that interleave physical memory at cache-line granularity,
and a single-ported main memory.
"""

from .address import AddressMap, WORD_BYTES
from .bus import Bus
from .cache import L1Cache, CacheLineState
from .directory import Directory
from .memory import MainMemory
from .messages import (
    FillRequest,
    FillReply,
    FlushRequest,
    FlushDone,
    Invalidation,
    StopClock,
    TurnOn,
    TxInfoReq,
    TxInfoReply,
)

__all__ = [
    "AddressMap",
    "WORD_BYTES",
    "Bus",
    "L1Cache",
    "CacheLineState",
    "Directory",
    "MainMemory",
    "FillRequest",
    "FillReply",
    "FlushRequest",
    "FlushDone",
    "Invalidation",
    "StopClock",
    "TurnOn",
    "TxInfoReq",
    "TxInfoReply",
]
