"""Address arithmetic: words, cache lines and directory homes.

The machine is word-addressed at 8-byte granularity (Alpha is a 64-bit
architecture); cache lines are 64 bytes (Table II), i.e. 8 words.
Physical memory is interleaved across the directories at cache-line
granularity: line ``l`` is homed at directory ``l mod num_dirs``, the
standard DSM mapping the paper's Fig. 2 assumes (each directory "maps
different segments of the physical memory").
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import MemoryModelError

WORD_BYTES = 8

__all__ = ["WORD_BYTES", "AddressMap"]


@dataclass(frozen=True)
class AddressMap:
    """Pure address arithmetic for one machine configuration."""

    line_bytes: int
    num_dirs: int
    memory_bytes: int

    def __post_init__(self) -> None:
        if self.line_bytes % WORD_BYTES != 0:
            raise MemoryModelError(
                f"line size {self.line_bytes} must be a multiple of the "
                f"{WORD_BYTES}-byte word"
            )
        if self.num_dirs < 1:
            raise MemoryModelError("need at least one directory")
        if self.memory_bytes < self.line_bytes:
            raise MemoryModelError("memory smaller than one cache line")

    # -- validation ----------------------------------------------------
    def check_word_addr(self, addr: int) -> int:
        """Validate an 8-byte-aligned byte address inside memory."""
        if addr < 0 or addr + WORD_BYTES > self.memory_bytes:
            raise MemoryModelError(
                f"address {addr:#x} outside memory of {self.memory_bytes} bytes"
            )
        if addr % WORD_BYTES != 0:
            raise MemoryModelError(f"address {addr:#x} is not word-aligned")
        return addr

    # -- conversions ---------------------------------------------------
    def line_of(self, addr: int) -> int:
        """Cache-line index containing byte address ``addr``."""
        return addr // self.line_bytes

    def line_base(self, line: int) -> int:
        """Byte address of the first word of ``line``."""
        return line * self.line_bytes

    def words_of_line(self, line: int) -> range:
        """Byte addresses of every word in ``line``."""
        base = self.line_base(line)
        return range(base, base + self.line_bytes, WORD_BYTES)

    @property
    def words_per_line(self) -> int:
        return self.line_bytes // WORD_BYTES

    # -- homing --------------------------------------------------------
    def home_of_line(self, line: int) -> int:
        """Directory id that owns ``line`` (line-interleaved)."""
        return line % self.num_dirs

    def home_of_addr(self, addr: int) -> int:
        return self.home_of_line(self.line_of(addr))

    def lines_by_home(self, lines) -> dict[int, list[int]]:
        """Group an iterable of line ids by their home directory."""
        grouped: dict[int, list[int]] = {}
        for line in sorted(set(lines)):
            grouped.setdefault(self.home_of_line(line), []).append(line)
        return grouped
