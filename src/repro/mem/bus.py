"""The common split-transaction bus (Table II interconnect).

Every inter-component message — fill requests/replies, commit flushes,
invalidation broadcasts, token requests and the gating control messages
— crosses this single shared medium.  The model is a classic occupancy
resource:

* a message departs at ``max(now, busy_until)``,
* occupies the bus for ``occupancy`` cycles (``data_occupancy`` for
  data-bearing beats such as fill replies and flush bodies),
* and arrives ``wire_latency`` cycles after its last beat.

Because ``busy_until`` advances monotonically, message *arrival order
equals send order* — the bus is FIFO.  The HTM commit protocol relies
on this ordering guarantee: a commit-completion acknowledgement sent
after an invalidation broadcast can never overtake it, which closes the
validation race discussed in DESIGN.md §5 (a committer only completes
after every conflicting invalidation from older transactions has been
delivered).
"""

from __future__ import annotations

from heapq import heappush
from typing import Any, Callable

from ..config import BusConfig
from ..sim.engine import Engine, Event
from ..sim.stats import StatsRegistry

__all__ = ["Bus"]


class Bus:
    """Shared split-transaction bus with FIFO ordering."""

    def __init__(self, engine: Engine, config: BusConfig, stats: StatsRegistry):
        self._engine = engine
        self._config = config
        self._stats = stats
        self._busy_until = 0
        # Hot-path bindings: every message pays these, so the occupancy
        # constants and counter handles are resolved once.
        self._ctrl_occupancy = config.occupancy
        self._data_occupancy = config.data_occupancy
        self._wire_latency = config.wire_latency
        self._c_messages = stats.counter("bus.messages")
        self._c_busy_cycles = stats.counter("bus.busy_cycles")
        self._c_queue_cycles = stats.counter("bus.queue_cycles")

    # ------------------------------------------------------------------
    # send_ctrl and send_data carry the reservation logic inline rather
    # than delegating to a shared helper: every protocol message crosses
    # one of them, and the extra call frame was a measured cost.  Keep
    # the two bodies in sync (they differ only in the occupancy used).
    # Counter bumps are likewise inlined (.value +=, not .add()), and so
    # is the body of Engine.schedule_at (pool reuse + heappush): the
    # arrival time is >= now by construction (depart >= now, occupancy
    # and wire latency non-negative), so the past-check and the *args
    # repack of a delegated call buy nothing here.
    def send_ctrl(
        self, fn: Callable[..., Any], *args: Any, _push=heappush
    ) -> int:
        """Send a control (address-only) message; returns arrival time."""
        occupancy = self._ctrl_occupancy
        engine = self._engine
        now = engine.now
        busy = self._busy_until
        depart = busy if busy > now else now
        self._busy_until = busy = depart + occupancy
        arrival = busy + self._wire_latency
        seq = engine._seq
        engine._seq = seq + 1
        pool = engine._pool
        if pool:
            event = pool.pop()
            event[0] = arrival
            event[1] = seq
            event[2] = fn
            event[3] = args or None
            event.cancelled = False
        else:
            event = Event(arrival, seq, fn, args or None)
        _push(engine._queue, event)

        self._c_messages.value += 1
        self._c_busy_cycles.value += occupancy
        if depart > now:
            self._c_queue_cycles.value += depart - now
        return arrival

    def send_data(
        self, fn: Callable[..., Any], *args: Any, _push=heappush
    ) -> int:
        """Send a data-bearing message; returns arrival time."""
        occupancy = self._data_occupancy
        engine = self._engine
        now = engine.now
        busy = self._busy_until
        depart = busy if busy > now else now
        self._busy_until = busy = depart + occupancy
        arrival = busy + self._wire_latency
        seq = engine._seq
        engine._seq = seq + 1
        pool = engine._pool
        if pool:
            event = pool.pop()
            event[0] = arrival
            event[1] = seq
            event[2] = fn
            event[3] = args or None
            event.cancelled = False
        else:
            event = Event(arrival, seq, fn, args or None)
        _push(engine._queue, event)

        self._c_messages.value += 1
        self._c_busy_cycles.value += occupancy
        if depart > now:
            self._c_queue_cycles.value += depart - now
        return arrival

    def _send(self, occupancy: int, fn: Callable[..., Any], *args: Any) -> int:
        """Generic send at an explicit occupancy (tests / cold paths)."""
        engine = self._engine
        now = engine.now
        busy = self._busy_until
        depart = busy if busy > now else now
        self._busy_until = busy = depart + occupancy
        arrival = busy + self._wire_latency
        engine.schedule_at(arrival, fn, *args)

        self._c_messages.value += 1
        self._c_busy_cycles.value += occupancy
        if depart > now:
            self._c_queue_cycles.value += depart - now
        return arrival

    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Free the bus (the only mutable state is the reservation)."""
        self._busy_until = 0

    @property
    def busy_until(self) -> int:
        """Cycle at which the bus next becomes free (for tests)."""
        return self._busy_until

    def utilization(self, elapsed: int) -> float:
        """Fraction of ``elapsed`` cycles the bus spent occupied."""
        if elapsed <= 0:
            return 0.0
        return min(1.0, self._stats.get("bus.busy_cycles") / elapsed)
