"""The common split-transaction bus (Table II interconnect).

Every inter-component message — fill requests/replies, commit flushes,
invalidation broadcasts, token requests and the gating control messages
— crosses this single shared medium.  The model is a classic occupancy
resource:

* a message departs at ``max(now, busy_until)``,
* occupies the bus for ``occupancy`` cycles (``data_occupancy`` for
  data-bearing beats such as fill replies and flush bodies),
* and arrives ``wire_latency`` cycles after its last beat.

Because ``busy_until`` advances monotonically, message *arrival order
equals send order* — the bus is FIFO.  The HTM commit protocol relies
on this ordering guarantee: a commit-completion acknowledgement sent
after an invalidation broadcast can never overtake it, which closes the
validation race discussed in DESIGN.md §5 (a committer only completes
after every conflicting invalidation from older transactions has been
delivered).
"""

from __future__ import annotations

from typing import Any, Callable

from ..config import BusConfig
from ..sim.engine import Engine
from ..sim.stats import StatsRegistry

__all__ = ["Bus"]


class Bus:
    """Shared split-transaction bus with FIFO ordering."""

    def __init__(self, engine: Engine, config: BusConfig, stats: StatsRegistry):
        self._engine = engine
        self._config = config
        self._stats = stats
        self._busy_until = 0

    # ------------------------------------------------------------------
    def send_ctrl(self, fn: Callable[..., Any], *args: Any) -> int:
        """Send a control (address-only) message; returns arrival time."""
        return self._send(self._config.occupancy, fn, *args)

    def send_data(self, fn: Callable[..., Any], *args: Any) -> int:
        """Send a data-bearing message; returns arrival time."""
        return self._send(self._config.data_occupancy, fn, *args)

    def _send(self, occupancy: int, fn: Callable[..., Any], *args: Any) -> int:
        engine = self._engine
        depart = max(engine.now, self._busy_until)
        queue_delay = depart - engine.now
        self._busy_until = depart + occupancy
        arrival = self._busy_until + self._config.wire_latency
        engine.schedule_at(arrival, fn, *args)

        stats = self._stats
        stats.bump("bus.messages")
        stats.bump("bus.busy_cycles", occupancy)
        if queue_delay:
            stats.bump("bus.queue_cycles", queue_delay)
        return arrival

    # ------------------------------------------------------------------
    @property
    def busy_until(self) -> int:
        """Cycle at which the bus next becomes free (for tests)."""
        return self._busy_until

    def utilization(self, elapsed: int) -> float:
        """Fraction of ``elapsed`` cycles the bus spent occupied."""
        if elapsed <= 0:
            return 0.0
        return min(1.0, self._stats.get("bus.busy_cycles") / elapsed)
