"""Protocol message types.

Messages exist mostly for readability and tracing — delivery itself is a
scheduled callback over the :class:`~repro.mem.bus.Bus`.  Keeping the
payloads as small dataclasses makes protocol tests able to assert on
exact message content, and gives the trace stream stable field names.
They are slotted but deliberately *not* frozen: commit storms allocate
one ``FlushRequest`` per homed directory and one ``Invalidation`` per
victim, and a frozen dataclass constructs via ``object.__setattr__``
per field — a measured cost at that rate.  Treat instances as
immutable by convention; no component may mutate a message after send.

The gating-specific messages mirror Section V of the paper verbatim:
``StopClock`` freezes a victim, ``TurnOn`` is delivered "to the output
of the main pll", and ``TxInfoReq``/``TxInfoReply`` carry the program-
counter-like transaction identity used by the renewal check.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = [
    "FillRequest",
    "FillReply",
    "FlushRequest",
    "FlushDone",
    "Invalidation",
    "StopClock",
    "TurnOn",
    "TxInfoReq",
    "TxInfoReply",
]


@dataclass(slots=True)
class FillRequest:
    """Processor -> directory: fetch a line after an L1 miss.

    ``sent_at`` is the issue cycle.  The gating protocol's stale-OFF
    recovery must ignore requests that were already in flight when the
    sender was gated (they are not evidence the sender is running), so
    requests carry their issue time.

    ``req_id`` is a per-processor monotonic tag echoed by the reply.
    It prevents a reply belonging to an *aborted* attempt from
    satisfying a newer attempt's outstanding miss on the same line —
    the newer attempt's sharer registration rides with its own request,
    so accepting old data would decouple the value from conflict
    tracking (a serializability hole found by the replay checker).
    """

    proc: int
    line: int
    sent_at: int = 0
    req_id: int = 0


@dataclass(slots=True)
class FillReply:
    """Directory -> processor: line data (values read functionally).

    ``req_id`` echoes the request tag (see :class:`FillRequest`).
    """

    proc: int
    line: int
    req_id: int = 0


@dataclass(slots=True)
class FlushRequest:
    """Committer -> directory: commit these speculative lines.

    ``writes`` maps word addresses to values for every written word
    whose line is homed at the target directory.
    """

    proc: int
    tid: int
    lines: tuple[int, ...]
    writes: tuple[tuple[int, int], ...] = field(repr=False)
    sent_at: int = 0
    #: site id (PC) of the committing transaction.  The paper obtains
    #: this with a TxInfoReq round-trip after gating a victim; carrying
    #: it in the commit request is an equally hardware-plausible
    #: simplification that avoids racing against the committer's own
    #: completion (the renewal-check TxInfoReq of Fig. 2e remains).
    site: str | None = None


@dataclass(slots=True)
class FlushDone:
    """Directory -> committer: your lines are globally visible here."""

    proc: int
    tid: int
    directory: int


@dataclass(slots=True)
class Invalidation:
    """Directory -> sharer: lines just committed by ``committer``.

    Receiving a line that intersects the current speculative read-set
    aborts the transaction (Section III: "a transaction gets aborted
    only when a cache line that it has read in its local L1
    speculatively, gets committed in a directory by some other
    thread").
    """

    victim: int
    committer: int
    directory: int
    lines: tuple[int, ...]


@dataclass(slots=True)
class StopClock:
    """Directory -> victim: gate all clocks (rides with the abort)."""

    victim: int
    directory: int


@dataclass(slots=True)
class TurnOn:
    """Directory -> victim: ungate ("on" command to the main PLL)."""

    victim: int
    directory: int


@dataclass(slots=True)
class TxInfoReq:
    """Directory -> (committing) processor: which transaction are you in?"""

    directory: int
    target: int


@dataclass(slots=True)
class TxInfoReply:
    """Processor -> directory: the site id (PC) of the live transaction.

    ``site`` is ``None`` when the target processor is itself clock
    gated or not inside a transaction — the paper's null reply, which
    the comparator treats as "turn the victim on".
    """

    target: int
    directory: int
    site: str | None
