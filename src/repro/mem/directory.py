"""Directory controller: sharer tracking, fills and TID-ordered commits.

Each directory owns a line-interleaved slice of physical memory
(Table II: full-bit-vector sharer list, 10-cycle service latency) and is
the serialization point of the Scalable-TCC commit protocol: write-set
flushes are applied here, and the invalidations it broadcasts are the
*only* mechanism that aborts transactions (Section III of the paper).

Service model
-------------
The directory is a single pipelined server: every request (fill or
flush) occupies it for its service time, starting at
``max(arrival, busy_until)`` — FIFO among arrivals, which combined with
the FIFO bus gives a deterministic total order.

Commit flushes occupy the server for ``latency + lines × commit_line_cycles``
cycles.  At completion the directory

1. applies the committed words to functional memory,
2. re-homes sharer bits (committer becomes owner, others dropped),
3. broadcasts one invalidation message per victim sharer (single bus
   data transaction — the split-transaction bus is a broadcast medium),
   attaching a Stop-Clock command for victims that will abort when the
   gating unit decides to gate them, and
4. acknowledges the committer *after* the invalidations (bus FIFO
   ordering then guarantees a committer never completes before a
   conflicting invalidation has been delivered — see DESIGN.md §5).

Gating integration
------------------
A :class:`repro.gating.protocol.GatingUnit` may be attached.  The
directory notifies it on every abort-causing invalidation it sends
(step 3) and on every request received from a processor its table marks
as OFF (the paper's stale-OFF recovery: "if any load/store request
comes from a processor which is marked as off, directory assumes that
it has been turned on by some other directory").
"""

from __future__ import annotations

from heapq import heappush
from typing import TYPE_CHECKING, Iterable

from ..config import DirectoryConfig
from ..errors import ProtocolError
from ..sim.engine import Engine, Event
from ..sim.stats import StatsRegistry
from ..sim.trace import NullTrace
from .address import AddressMap
from .bus import Bus
from .memory import MainMemory
from .messages import FillReply, FillRequest, FlushDone, FlushRequest, Invalidation

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..gating.protocol import GatingUnit

__all__ = ["Directory"]


class Directory:
    """One directory node of the distributed shared memory system."""

    def __init__(
        self,
        dir_id: int,
        engine: Engine,
        bus: Bus,
        memory: MainMemory,
        config: DirectoryConfig,
        addr_map: AddressMap,
        stats: StatsRegistry,
        trace: NullTrace | None = None,
    ):
        self.dir_id = dir_id
        self._engine = engine
        self._bus = bus
        self._memory = memory
        self._config = config
        self._addr_map = addr_map
        self._stats = stats
        self._trace = trace if trace is not None else NullTrace()

        #: line -> bitmask of processor ids holding (or believed to
        #: hold) the line.  The full-bit-vector sharer list of Table II
        #: kept literally as a bit vector: flush service then re-homes a
        #: line with one int store and victim extraction is bit
        #: arithmetic instead of set iteration (PR 7 batched flush path).
        self._sharers: dict[int, int] = {}
        #: line -> last committer ("Owner" coherence state of Fig. 2b)
        self._owner: dict[int, int] = {}
        #: processors with live commit intent here ("Marked" bit, Fig. 2e)
        self.marked: set[int] = set()
        #: per-directory watermark of the last TID whose flush completed here
        self.last_committed_tid = -1

        self._busy_until = 0
        self._machine = None  # set via attach()
        self.gating: "GatingUnit | None" = None
        self._prefix = f"dir{dir_id}"
        # Hot-path bindings (see repro.sim.stats): handles and address
        # constants resolved once, not per request.
        self._num_dirs = addr_map.num_dirs
        self._latency = config.latency
        self._commit_line_cycles = config.commit_line_cycles
        self._trace_on = self._trace.enabled
        self._c_fills = stats.counter(f"{self._prefix}.fills")
        self._c_flushes = stats.counter(f"{self._prefix}.flushes")
        self._c_lines_committed = stats.counter(
            f"{self._prefix}.lines_committed"
        )
        self._c_aborts_caused = stats.counter(f"{self._prefix}.aborts_caused")
        #: per-flush batch size distribution (manifest/obs satellite;
        #: histograms are not serialized into results, so recording one
        #: is byte-neutral for stores and goldens)
        self._h_lines_per_flush = stats.histogram("dir.lines_per_flush")

    # ------------------------------------------------------------------
    # wiring
    # ------------------------------------------------------------------
    def attach(self, machine, gating: "GatingUnit | None" = None) -> None:
        """Connect to the machine (processor lookup) and gating unit."""
        self._machine = machine
        self.gating = gating

    def reset(self) -> None:
        """Forget all sharer/owner/commit state (machine-reset path).

        The attached machine and gating unit survive; the gating unit's
        own table is reset by its owner.  Counter and histogram handles
        stay bound.
        """
        self._sharers.clear()
        self._owner.clear()
        self.marked.clear()
        self.last_committed_tid = -1
        self._busy_until = 0

    # ------------------------------------------------------------------
    # sharer bookkeeping
    # ------------------------------------------------------------------
    def sharers_of(self, line: int) -> frozenset[int]:
        mask = self._sharers.get(line, 0)
        sharers = []
        while mask:
            low = mask & -mask
            sharers.append(low.bit_length() - 1)
            mask ^= low
        return frozenset(sharers)

    def owner_of(self, line: int) -> int | None:
        return self._owner.get(line)

    def _check_home(self, lines: Iterable[int]) -> None:
        num_dirs = self._num_dirs
        dir_id = self.dir_id
        for line in lines:
            if line % num_dirs != dir_id:
                raise ProtocolError(
                    f"line {line} homed at dir "
                    f"{self._addr_map.home_of_line(line)}, not {self.dir_id}"
                )

    # ------------------------------------------------------------------
    # commit-intent marking ("Marked" bits)
    # ------------------------------------------------------------------
    def mark_commit(self, proc: int) -> None:
        """Record commit intent (piggybacked on the commit request)."""
        self.marked.add(proc)

    def unmark_commit(self, proc: int) -> None:
        self.marked.discard(proc)

    # ------------------------------------------------------------------
    # fill path
    # ------------------------------------------------------------------
    def receive_fill_request(self, req: FillRequest) -> None:
        """Bus-arrival handler for a fill after an L1 miss."""
        line = req.line
        if line % self._num_dirs != self.dir_id:
            self._check_home((line,))  # raises with the full message
        gating = self.gating
        if gating is not None:
            # Stale-OFF recovery (module docstring): any request from a
            # processor the gating table marks OFF proves it is running.
            gating.notify_access(req.proc, req.sent_at)
        self._c_fills.value += 1

        engine = self._engine
        now = engine.now
        busy = self._busy_until
        start = busy if busy > now else now
        self._busy_until = done = start + self._latency
        # Engine.schedule_at inlined (see Bus.send_ctrl): ``done`` is
        # >= now by construction, so the past-check is redundant.
        seq = engine._seq
        engine._seq = seq + 1
        pool = engine._pool
        if pool:
            event = pool.pop()
            event[0] = done
            event[1] = seq
            event[2] = self._fill_serviced
            event[3] = (req,)
            event.cancelled = False
        else:
            event = Event(done, seq, self._fill_serviced, (req,))
        heappush(engine._queue, event)

    def _fill_serviced(self, req: FillRequest) -> None:
        # Sharer registration happens at service time, before the data
        # round-trip: any flush applied after this instant invalidates
        # the requester, closing the fill/flush race.
        sharers = self._sharers
        line = req.line
        sharers[line] = sharers.get(line, 0) | (1 << req.proc)
        self._memory.access(self._fill_data_ready, req)

    def _fill_data_ready(self, req: FillRequest) -> None:
        proc = self._machine.proc(req.proc)
        reply = FillReply(req.proc, req.line, req.req_id)
        self._bus.send_data(proc.receive_fill_reply, reply)

    # ------------------------------------------------------------------
    # commit flush path
    # ------------------------------------------------------------------
    def receive_flush_request(self, req: FlushRequest) -> None:
        """Bus-arrival handler for a commit flush (TID-ordered globally).

        The machine's token vendor releases committers in TID order
        (the completion barrier standing in for Scalable TCC's skew
        mechanism), so flush requests reach each directory already
        ordered; this is asserted as a protocol invariant.
        """
        lines = req.lines
        self._check_home(lines)
        gating = self.gating
        if gating is not None:
            gating.notify_access(req.proc, req.sent_at)
        if req.tid <= self.last_committed_tid:
            raise ProtocolError(
                f"dir {self.dir_id}: flush TID {req.tid} not after watermark "
                f"{self.last_committed_tid} — commit order violated"
            )
        num_lines = len(lines)
        self._c_flushes.value += 1
        self._c_lines_committed.value += num_lines
        self._h_lines_per_flush.record(num_lines)

        service = self._latency + num_lines * self._commit_line_cycles
        engine = self._engine
        now = engine.now
        busy = self._busy_until
        start = busy if busy > now else now
        self._busy_until = done = start + service
        # Engine.schedule_at inlined (see Bus.send_ctrl): ``done`` is
        # >= now by construction, so the past-check is redundant.
        seq = engine._seq
        engine._seq = seq + 1
        pool = engine._pool
        if pool:
            event = pool.pop()
            event[0] = done
            event[1] = seq
            event[2] = self._flush_complete
            event[3] = (req,)
            event.cancelled = False
        else:
            event = Event(done, seq, self._flush_complete, (req,))
        heappush(engine._queue, event)

    def _flush_complete(self, req: FlushRequest) -> None:
        now = self._engine.now
        committer = req.proc
        tid = req.tid
        # 1. apply committed words to functional memory — one batched
        #    pass (the words were validated when buffered)
        self._memory.write_words(req.writes, tid)
        if tid > self.last_committed_tid:
            self.last_committed_tid = tid

        # 2. collect victims and re-home sharer bits.  One pass over the
        #    flushed lines: victims fall out of the sharer bit-vector
        #    with bit arithmetic, and re-homing is a single int store
        #    per line (no per-line set allocation).
        sharers = self._sharers
        owner = self._owner
        committer_bit = 1 << committer
        victims: dict[int, list[int]] = {}
        for line in req.lines:
            others = sharers.get(line, 0) & ~committer_bit  # may be stale
            while others:
                low = others & -others
                others ^= low
                victim = low.bit_length() - 1
                lines = victims.get(victim)
                if lines is None:
                    victims[victim] = [line]
                else:
                    lines.append(line)
            sharers[line] = committer_bit
            owner[line] = committer

        if victims:
            # 3. gating decisions + one invalidation broadcast per
            #    victim.  The "will this victim abort" probe models the
            #    abort ack the directory would receive a few cycles
            #    later in hardware; it only affects when the
            #    gating-table entry is created (the Stop-Clock command
            #    rides with the invalidation either way).
            ordered = sorted(victims.items())
            proc_of = self._machine.proc
            gating = self.gating
            stop_clock = 0
            for victim, lines in ordered:
                if proc_of(victim).would_abort_on(lines):
                    self._c_aborts_caused.add()
                    if self._trace_on:
                        self._trace.emit(
                            now,
                            "dir.abort",
                            directory=self.dir_id,
                            victim=victim,
                            committer=committer,
                            lines=tuple(lines),
                        )
                    if gating is not None and gating.on_abort(
                        victim, committer, req.site
                    ):
                        stop_clock |= 1 << victim

            send_data = self._bus.send_data
            dir_id = self.dir_id
            for victim, lines in ordered:
                msg = Invalidation(victim, committer, dir_id, tuple(lines))
                send_data(
                    proc_of(victim).receive_invalidation,
                    msg,
                    bool(stop_clock & (1 << victim)),
                )

        # 4. acknowledge the committer — after the invalidations, so the
        #    FIFO bus guarantees delivery order.
        done = FlushDone(committer, tid, self.dir_id)
        self._bus.send_ctrl(self._machine.proc(committer).receive_flush_done, done)

    # ------------------------------------------------------------------
    @property
    def busy_until(self) -> int:
        return self._busy_until

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<Directory {self.dir_id} lines={len(self._sharers)} "
            f"marked={sorted(self.marked)}>"
        )
