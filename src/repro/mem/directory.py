"""Directory controller: sharer tracking, fills and TID-ordered commits.

Each directory owns a line-interleaved slice of physical memory
(Table II: full-bit-vector sharer list, 10-cycle service latency) and is
the serialization point of the Scalable-TCC commit protocol: write-set
flushes are applied here, and the invalidations it broadcasts are the
*only* mechanism that aborts transactions (Section III of the paper).

Service model
-------------
The directory is a single pipelined server: every request (fill or
flush) occupies it for its service time, starting at
``max(arrival, busy_until)`` — FIFO among arrivals, which combined with
the FIFO bus gives a deterministic total order.

Commit flushes occupy the server for ``latency + lines × commit_line_cycles``
cycles.  At completion the directory

1. applies the committed words to functional memory,
2. re-homes sharer bits (committer becomes owner, others dropped),
3. broadcasts one invalidation message per victim sharer (single bus
   data transaction — the split-transaction bus is a broadcast medium),
   attaching a Stop-Clock command for victims that will abort when the
   gating unit decides to gate them, and
4. acknowledges the committer *after* the invalidations (bus FIFO
   ordering then guarantees a committer never completes before a
   conflicting invalidation has been delivered — see DESIGN.md §5).

Gating integration
------------------
A :class:`repro.gating.protocol.GatingUnit` may be attached.  The
directory notifies it on every abort-causing invalidation it sends
(step 3) and on every request received from a processor its table marks
as OFF (the paper's stale-OFF recovery: "if any load/store request
comes from a processor which is marked as off, directory assumes that
it has been turned on by some other directory").
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable

from ..config import DirectoryConfig
from ..errors import ProtocolError
from ..sim.engine import Engine
from ..sim.stats import StatsRegistry
from ..sim.trace import NullTrace
from .address import AddressMap
from .bus import Bus
from .memory import MainMemory
from .messages import FillReply, FillRequest, FlushDone, FlushRequest, Invalidation

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..gating.protocol import GatingUnit

__all__ = ["Directory"]


class Directory:
    """One directory node of the distributed shared memory system."""

    def __init__(
        self,
        dir_id: int,
        engine: Engine,
        bus: Bus,
        memory: MainMemory,
        config: DirectoryConfig,
        addr_map: AddressMap,
        stats: StatsRegistry,
        trace: NullTrace | None = None,
    ):
        self.dir_id = dir_id
        self._engine = engine
        self._bus = bus
        self._memory = memory
        self._config = config
        self._addr_map = addr_map
        self._stats = stats
        self._trace = trace if trace is not None else NullTrace()

        #: line -> set of processor ids holding (or believed to hold) the line
        self._sharers: dict[int, set[int]] = {}
        #: line -> last committer ("Owner" coherence state of Fig. 2b)
        self._owner: dict[int, int] = {}
        #: processors with live commit intent here ("Marked" bit, Fig. 2e)
        self.marked: set[int] = set()
        #: per-directory watermark of the last TID whose flush completed here
        self.last_committed_tid = -1

        self._busy_until = 0
        self._machine = None  # set via attach()
        self.gating: "GatingUnit | None" = None
        self._prefix = f"dir{dir_id}"
        self._c_fills = stats.counter(f"{self._prefix}.fills")
        self._c_flushes = stats.counter(f"{self._prefix}.flushes")
        self._c_lines_committed = stats.counter(
            f"{self._prefix}.lines_committed"
        )
        self._c_aborts_caused = stats.counter(f"{self._prefix}.aborts_caused")

    # ------------------------------------------------------------------
    # wiring
    # ------------------------------------------------------------------
    def attach(self, machine, gating: "GatingUnit | None" = None) -> None:
        """Connect to the machine (processor lookup) and gating unit."""
        self._machine = machine
        self.gating = gating

    # ------------------------------------------------------------------
    # sharer bookkeeping
    # ------------------------------------------------------------------
    def sharers_of(self, line: int) -> frozenset[int]:
        return frozenset(self._sharers.get(line, ()))

    def owner_of(self, line: int) -> int | None:
        return self._owner.get(line)

    def _check_home(self, lines: Iterable[int]) -> None:
        for line in lines:
            if self._addr_map.home_of_line(line) != self.dir_id:
                raise ProtocolError(
                    f"line {line} homed at dir "
                    f"{self._addr_map.home_of_line(line)}, not {self.dir_id}"
                )

    # ------------------------------------------------------------------
    # commit-intent marking ("Marked" bits)
    # ------------------------------------------------------------------
    def mark_commit(self, proc: int) -> None:
        """Record commit intent (piggybacked on the commit request)."""
        self.marked.add(proc)

    def unmark_commit(self, proc: int) -> None:
        self.marked.discard(proc)

    # ------------------------------------------------------------------
    # fill path
    # ------------------------------------------------------------------
    def receive_fill_request(self, req: FillRequest) -> None:
        """Bus-arrival handler for a fill after an L1 miss."""
        self._check_home([req.line])
        self._note_request_from(req.proc, req.sent_at)
        self._c_fills.add()

        start = max(self._engine.now, self._busy_until)
        self._busy_until = start + self._config.latency
        self._engine.schedule_at(self._busy_until, self._fill_serviced, req)

    def _fill_serviced(self, req: FillRequest) -> None:
        # Sharer registration happens at service time, before the data
        # round-trip: any flush applied after this instant invalidates
        # the requester, closing the fill/flush race.
        self._sharers.setdefault(req.line, set()).add(req.proc)
        self._memory.access(self._fill_data_ready, req)

    def _fill_data_ready(self, req: FillRequest) -> None:
        proc = self._machine.proc(req.proc)
        reply = FillReply(req.proc, req.line, req.req_id)
        self._bus.send_data(proc.receive_fill_reply, reply)

    # ------------------------------------------------------------------
    # commit flush path
    # ------------------------------------------------------------------
    def receive_flush_request(self, req: FlushRequest) -> None:
        """Bus-arrival handler for a commit flush (TID-ordered globally).

        The machine's token vendor releases committers in TID order
        (the completion barrier standing in for Scalable TCC's skew
        mechanism), so flush requests reach each directory already
        ordered; this is asserted as a protocol invariant.
        """
        self._check_home(req.lines)
        self._note_request_from(req.proc, req.sent_at)
        if req.tid <= self.last_committed_tid:
            raise ProtocolError(
                f"dir {self.dir_id}: flush TID {req.tid} not after watermark "
                f"{self.last_committed_tid} — commit order violated"
            )
        self._c_flushes.add()
        self._c_lines_committed.add(len(req.lines))

        service = self._config.latency + len(req.lines) * self._config.commit_line_cycles
        start = max(self._engine.now, self._busy_until)
        self._busy_until = start + service
        self._engine.schedule_at(self._busy_until, self._flush_complete, req)

    def _flush_complete(self, req: FlushRequest) -> None:
        now = self._engine.now
        # 1. apply committed words to functional memory
        for addr, value in req.writes:
            self._memory.write_word(addr, value, writer_tid=req.tid)
        self.last_committed_tid = max(self.last_committed_tid, req.tid)

        # 2. collect victims and re-home sharer bits
        victims: dict[int, list[int]] = {}
        for line in req.lines:
            for sharer in self._sharers.get(line, ()):  # may include stale entries
                if sharer != req.proc:
                    victims.setdefault(sharer, []).append(line)
            self._sharers[line] = {req.proc}
            self._owner[line] = req.proc

        # 3. gating decisions + one invalidation broadcast per victim.
        #    The "will this victim abort" probe models the abort ack the
        #    directory would receive a few cycles later in hardware; it
        #    only affects when the gating-table entry is created (the
        #    Stop-Clock command rides with the invalidation either way).
        stop_clock: set[int] = set()
        for victim, lines in sorted(victims.items()):
            will_abort = self._machine.proc(victim).would_abort_on(lines)
            if will_abort:
                self._c_aborts_caused.add()
                self._trace.emit(
                    now,
                    "dir.abort",
                    directory=self.dir_id,
                    victim=victim,
                    committer=req.proc,
                    lines=tuple(lines),
                )
                if self.gating is not None:
                    if self.gating.on_abort(victim, req.proc, req.site):
                        stop_clock.add(victim)

        for victim, lines in sorted(victims.items()):
            msg = Invalidation(victim, req.proc, self.dir_id, tuple(lines))
            gate = victim in stop_clock
            proc = self._machine.proc(victim)
            self._bus.send_data(proc.receive_invalidation, msg, gate)

        # 4. acknowledge the committer — after the invalidations, so the
        #    FIFO bus guarantees delivery order.
        done = FlushDone(req.proc, req.tid, self.dir_id)
        self._bus.send_ctrl(self._machine.proc(req.proc).receive_flush_done, done)

    # ------------------------------------------------------------------
    # stale-OFF recovery hook
    # ------------------------------------------------------------------
    def _note_request_from(self, proc: int, sent_at: int) -> None:
        if self.gating is not None:
            self.gating.notify_access(proc, sent_at)

    # ------------------------------------------------------------------
    @property
    def busy_until(self) -> int:
        return self._busy_until

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<Directory {self.dir_id} lines={len(self._sharers)} "
            f"marked={sorted(self.marked)}>"
        )
