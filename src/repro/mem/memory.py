"""Main memory: functional word store plus a timed single port.

Functional state and timing are deliberately decoupled:

* ``read_word`` / ``write_word`` touch the committed architectural
  state instantly.  Only *committed* data ever lives here — speculative
  stores stay in the transaction's store buffer until commit flush, so
  a fill always returns pre-commit values exactly as in TCC.
* ``access`` reserves the (pipelined) memory port and schedules a
  callback when the data would be available, giving the 100-cycle miss
  penalty of Table II plus queueing under contention.

A write-version log (address, value, writer tid) is kept when enabled;
the serializability checker replays it to validate Invariant 1.
"""

from __future__ import annotations

from heapq import heappush
from typing import Any, Callable, Mapping

from ..config import MemoryConfig
from ..errors import MemoryModelError
from ..sim.engine import Engine, Event
from ..sim.stats import StatsRegistry
from .address import WORD_BYTES

__all__ = ["MainMemory"]


class MainMemory:
    """1 GB, 100-cycle, single-read/write-port main memory."""

    def __init__(
        self,
        engine: Engine,
        config: MemoryConfig,
        stats: StatsRegistry,
        record_versions: bool = False,
    ):
        self._engine = engine
        self._config = config
        self._stats = stats
        self._data: dict[int, int] = {}
        self._port_busy_until = 0
        self._size_bytes = config.size_bytes
        self._port_occupancy = config.port_occupancy
        self._latency = config.latency
        self._c_accesses = stats.counter("memory.accesses")
        self._c_port_wait = stats.counter("memory.port_wait_cycles")
        self.record_versions = record_versions
        #: (time, word_addr, value, writer_tid) tuples when recording.
        self.version_log: list[tuple[int, int, int, int]] = []

    # ------------------------------------------------------------------
    # functional state
    # ------------------------------------------------------------------
    def _check(self, addr: int) -> int:
        if addr < 0 or addr + WORD_BYTES > self._size_bytes:
            raise MemoryModelError(
                f"address {addr:#x} outside {self._size_bytes}-byte memory"
            )
        if addr % WORD_BYTES:
            raise MemoryModelError(f"address {addr:#x} is not word-aligned")
        return addr

    def read_word(self, addr: int) -> int:
        """Committed value at ``addr`` (zero if never written)."""
        return self._data.get(self._check(addr), 0)

    def write_word(self, addr: int, value: int, writer_tid: int = -1) -> None:
        """Commit ``value`` at ``addr`` (used by directory flushes)."""
        self._data[self._check(addr)] = value
        if self.record_versions:
            self.version_log.append((self._engine.now, addr, value, writer_tid))

    def write_words(
        self, writes: tuple[tuple[int, int], ...], writer_tid: int = -1
    ) -> None:
        """Commit a batch of ``(addr, value)`` pairs in one pass.

        The batched flush-application path: one dict update instead of
        a checked call per word.  Addresses must already be word-aligned
        and in range — flush writes come from a transaction's store
        buffer, validated word by word at buffer time
        (``AddressMap.check_word_addr``), so re-checking here would only
        re-verify the committer's own invariant on the hot path.
        """
        self._data.update(writes)
        if self.record_versions:
            now = self._engine.now
            self.version_log.extend(
                (now, addr, value, writer_tid) for addr, value in writes
            )

    def load_image(self, image: Mapping[int, int]) -> None:
        """Install a workload's initial memory image (time-free)."""
        for addr, value in image.items():
            self._data[self._check(addr)] = value

    def snapshot(self) -> dict[int, int]:
        """Copy of the committed state (for end-of-run validation)."""
        return dict(self._data)

    def reset(self, image: Mapping[int, int], record_versions: bool) -> None:
        """Clear committed state and install a fresh workload image.

        Equivalent to constructing a new memory and calling
        :meth:`load_image` — the version log is replaced (never shared
        with a previous run's ``MachineResult``) and the port freed.
        """
        self._data.clear()
        self._port_busy_until = 0
        self.record_versions = record_versions
        self.version_log = []
        self.load_image(image)

    # ------------------------------------------------------------------
    # timed port
    # ------------------------------------------------------------------
    def access(self, fn: Callable[..., Any], *args: Any, _push=heappush) -> int:
        """Reserve the port and schedule ``fn`` at data-ready time.

        Returns the completion cycle.  The port accepts a new access
        every ``port_occupancy`` cycles; each access takes ``latency``
        cycles end-to-end (Table II: 100).
        """
        engine = self._engine
        now = engine.now
        busy = self._port_busy_until
        start = busy if busy > now else now
        self._port_busy_until = start + self._port_occupancy
        done = start + self._latency
        # Engine.schedule_at inlined (see Bus.send_ctrl): ``done`` is
        # >= now by construction, so the past-check is redundant.
        seq = engine._seq
        engine._seq = seq + 1
        pool = engine._pool
        if pool:
            event = pool.pop()
            event[0] = done
            event[1] = seq
            event[2] = fn
            event[3] = args or None
            event.cancelled = False
        else:
            event = Event(done, seq, fn, args or None)
        _push(engine._queue, event)

        # Inlined counter bumps: every fill and flush pays this path.
        self._c_accesses.value += 1
        if start > now:
            self._c_port_wait.value += start - now
        return done
