"""Private L1 data cache with TCC speculative state bits.

Table II: 64 KB, 64-byte lines, 2-way set associative, 1-cycle hits.

The cache is a *timing* model: data values live in the functional
memory (committed state) and the transaction's store buffer
(speculative state), exactly mirroring a TCC machine where speculative
stores sit in the store-address FIFO / write buffer rather than being
globally visible.  The cache decides hit-vs-miss, tracks per-line
speculatively-read (SR) and speculatively-modified (SM) bits, and
applies LRU replacement.

Replacement of speculative lines is *allowed* and safe: conflict
detection does not depend on cache residency because (a) the directory
keeps the sharer registration until the next invalidation, so an
evicted speculative reader still receives the abort, and (b) store data
lives in the bounded store buffer (the paper's 1024-entry store-address
FIFO).  Evictions of speculative lines are counted in the statistics;
store-buffer overflow is enforced by the transaction layer.

On abort, speculatively-modified lines are invalidated (their contents
were never architectural); speculatively-read lines stay valid since
they still mirror committed memory.  On commit both kinds survive with
their speculative bits cleared — the committer becomes the line owner.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from ..config import CacheConfig
from ..sim.stats import StatsRegistry

__all__ = ["CacheLineState", "L1Cache"]


@dataclass(slots=True)
class CacheLineState:
    """One resident cache line (tags only — data is functional).

    ``partial`` marks a line allocated by a *store* without a directory
    fill: it conceptually holds only the written words (per-word valid
    bits in hardware).  Loads of other words in a partial line must
    take the miss path — both for data (the cache never had those
    words) and for conflict tracking (only a directory fill registers
    the processor as a sharer).  A completing fill clears the flag.
    """

    line: int
    spec_read: bool = False
    spec_written: bool = False
    partial: bool = False
    last_use: int = 0

    @property
    def speculative(self) -> bool:
        return self.spec_read or self.spec_written


class L1Cache:
    """Set-associative, LRU, write-allocate (into the store buffer)."""

    def __init__(self, config: CacheConfig, proc_id: int, stats: StatsRegistry):
        self._config = config
        self._proc_id = proc_id
        self._stats = stats
        self._num_sets = config.num_sets
        self._set_mask = config.num_sets - 1
        self._ways = config.ways
        # set index -> {line id -> CacheLineState}
        self._sets: list[dict[int, CacheLineState]] = [
            {} for _ in range(self._num_sets)
        ]
        self._use_clock = 0
        self._prefix = f"proc{proc_id}.cache"
        # Counter handles bound once; the access paths must not build
        # per-access dotted-name strings (see repro.sim.stats).
        self._c_evictions = stats.counter(f"{self._prefix}.evictions")
        self._c_spec_evictions = stats.counter(f"{self._prefix}.spec_evictions")
        self._c_fills = stats.counter(f"{self._prefix}.fills")
        self._c_invalidations = stats.counter(f"{self._prefix}.invalidations")

    # ------------------------------------------------------------------
    def set_index(self, line: int) -> int:
        """Set holding ``line`` (low-order line-number bits)."""
        return line & self._set_mask

    def lookup(self, line: int) -> CacheLineState | None:
        """Return the resident entry (without touching LRU state)."""
        return self._sets[line & self._set_mask].get(line)

    def contains(self, line: int) -> bool:
        return self.lookup(line) is not None

    # ------------------------------------------------------------------
    def touch(self, line: int) -> CacheLineState | None:
        """LRU-touch ``line``; returns the entry if resident (a hit)."""
        entry = self._sets[line & self._set_mask].get(line)
        if entry is not None:
            self._use_clock += 1
            entry.last_use = self._use_clock
        return entry

    def fill(self, line: int, partial: bool = False) -> int | None:
        """Install ``line``; returns the evicted line id, if any.

        ``partial=True`` is the store-allocation path (no data fetched,
        no directory registration — see :class:`CacheLineState`).  A
        completing (non-partial) fill upgrades a resident partial line;
        a partial fill never downgrades a complete one.

        Idempotent for resident lines.  Victim selection prefers an
        empty way, then non-speculative LRU, then speculative LRU (see
        module docstring for why evicting speculative state is safe).
        """
        set_ = self._sets[line & self._set_mask]
        entry = set_.get(line)
        self._use_clock += 1
        if entry is not None:
            entry.last_use = self._use_clock
            if not partial:
                entry.partial = False
            return None

        victim_line: int | None = None
        if len(set_) >= self._ways:
            # Allocation-free victim scan: oldest non-speculative way,
            # falling back to the oldest speculative one.  Ties keep the
            # first-seen entry, matching min() over insertion order.
            victim: CacheLineState | None = None
            spec_victim: CacheLineState | None = None
            for e in set_.values():
                if e.spec_read or e.spec_written:
                    if spec_victim is None or e.last_use < spec_victim.last_use:
                        spec_victim = e
                elif victim is None or e.last_use < victim.last_use:
                    victim = e
            if victim is None:
                victim = spec_victim
            victim_line = victim.line
            del set_[victim_line]
            self._c_evictions.value += 1
            if victim.spec_read or victim.spec_written:
                self._c_spec_evictions.value += 1

        set_[line] = CacheLineState(line, partial=partial, last_use=self._use_clock)
        self._c_fills.value += 1
        return victim_line

    def reset(self) -> None:
        """Drop all resident lines, returning to the just-built state.

        The set list itself (the measured construction cost for a 64 KB
        geometry) is kept; only its per-set dicts are cleared.  Counter
        handles stay bound — the registry is reset separately as part of
        the :meth:`repro.htm.machine.Machine.reset` contract.
        """
        for set_ in self._sets:
            set_.clear()
        self._use_clock = 0

    def invalidate(self, line: int) -> bool:
        """Drop ``line`` (coherence invalidation); True if it was resident."""
        set_ = self._sets[line & self._set_mask]
        if line in set_:
            del set_[line]
            self._c_invalidations.value += 1
            return True
        return False

    # ------------------------------------------------------------------
    # speculative state
    # ------------------------------------------------------------------
    def mark_spec_read(self, line: int) -> None:
        entry = self.lookup(line)
        if entry is not None:
            entry.spec_read = True

    def mark_spec_written(self, line: int) -> None:
        entry = self.lookup(line)
        if entry is not None:
            entry.spec_written = True

    def clear_speculative(self, lines, commit: bool) -> None:
        """End-of-transaction cleanup over the transaction's lines.

        ``commit=True`` keeps everything resident (data now matches
        memory); ``commit=False`` invalidates speculatively-modified
        lines whose contents were never architectural.
        """
        sets = self._sets
        mask = self._set_mask
        for line in lines:
            entry = sets[line & mask].get(line)
            if entry is None:
                continue
            if not commit and entry.spec_written:
                del sets[line & mask][line]
                continue
            entry.spec_read = False
            entry.spec_written = False

    def speculative_lines(self) -> Iterator[int]:
        for set_ in self._sets:
            for entry in set_.values():
                if entry.speculative:
                    yield entry.line

    # ------------------------------------------------------------------
    def resident_lines(self) -> Iterator[int]:
        for set_ in self._sets:
            yield from set_.keys()

    def occupancy(self) -> int:
        return sum(len(s) for s in self._sets)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<L1Cache proc={self._proc_id} {self.occupancy()}/"
            f"{self._config.num_lines} lines>"
        )
