"""Conflict analysis: who aborts whom, and where.

Consumes a :class:`~repro.sim.trace.TraceRecorder` that recorded the
``tx`` (and optionally ``dir``) categories and produces:

* an *abort graph* — a directed multigraph-ish ``networkx.DiGraph``
  with processors as nodes and aggregated aborter→victim edges
  (``weight`` = abort count), the structure used to reason about
  contention topology (e.g. the queue head makes intruder's graph
  nearly complete; disjoint workloads give an empty graph);
* per-site statistics — which static transactions (PC sites, the
  identity Eq. 8's renewal check compares) suffer and cause aborts.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import networkx as nx

from ..sim.trace import NullTrace

__all__ = ["abort_graph", "ConflictStats", "conflict_stats"]


def abort_graph(trace: NullTrace) -> "nx.DiGraph":
    """Aggregate ``tx.abort`` events into an aborter→victim digraph.

    Self-aborts (wake-ups without a conflicting committer) have no
    aborter and are recorded on the node as ``self_aborts``.
    """
    graph = nx.DiGraph()
    for event in trace.events("tx.abort"):
        victim = event.payload["proc"]
        aborter = event.payload.get("aborter")
        if not graph.has_node(victim):
            graph.add_node(victim, self_aborts=0)
        if aborter is None:
            graph.nodes[victim]["self_aborts"] += 1
            continue
        if not graph.has_node(aborter):
            graph.add_node(aborter, self_aborts=0)
        if graph.has_edge(aborter, victim):
            graph[aborter][victim]["weight"] += 1
        else:
            graph.add_edge(aborter, victim, weight=1)
    return graph


@dataclass
class ConflictStats:
    """Aggregated conflict behaviour of one run."""

    total_aborts: int = 0
    conflict_aborts: int = 0
    self_aborts: int = 0
    #: site -> times a transaction at this site was aborted
    victims_by_site: dict[str, int] = field(default_factory=dict)
    #: (aborter proc, victim proc) -> count
    pair_counts: dict[tuple[int, int], int] = field(default_factory=dict)
    #: directory -> aborts detected there
    by_directory: dict[int, int] = field(default_factory=dict)

    @property
    def hottest_site(self) -> str | None:
        if not self.victims_by_site:
            return None
        return max(self.victims_by_site, key=self.victims_by_site.get)

    @property
    def hottest_pair(self) -> tuple[int, int] | None:
        if not self.pair_counts:
            return None
        return max(self.pair_counts, key=self.pair_counts.get)

    def reciprocity(self) -> float:
        """Fraction of abort pairs that also abort in reverse.

        High reciprocity (mutual aborts) marks the livelock-prone
        pattern the gating-aware policy exists to break.
        """
        if not self.pair_counts:
            return 0.0
        mutual = sum(
            1
            for (a, b) in self.pair_counts
            if (b, a) in self.pair_counts
        )
        return mutual / len(self.pair_counts)


def conflict_stats(trace: NullTrace) -> ConflictStats:
    """Scan ``tx.abort`` events into :class:`ConflictStats`."""
    stats = ConflictStats()
    for event in trace.events("tx.abort"):
        stats.total_aborts += 1
        payload = event.payload
        if payload.get("cause") == "conflict":
            stats.conflict_aborts += 1
        else:
            stats.self_aborts += 1
        site = payload.get("site")
        if site is not None:
            stats.victims_by_site[site] = stats.victims_by_site.get(site, 0) + 1
        aborter = payload.get("aborter")
        if aborter is not None:
            pair = (aborter, payload["proc"])
            stats.pair_counts[pair] = stats.pair_counts.get(pair, 0) + 1
        directory = payload.get("directory")
        if directory is not None:
            stats.by_directory[directory] = (
                stats.by_directory.get(directory, 0) + 1
            )
    return stats
