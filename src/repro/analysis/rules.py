"""The determinism-invariant rule catalog behind ``repro check``.

Each rule encodes one *domain* invariant of this repository — things a
generic linter has no vocabulary for.  The catalog (with rationale and
an example violation per rule) is documented in
``docs/static-analysis.md``; the one-line summaries here are surfaced
by ``repro check --list-rules``.

Rule id namespaces:

====  ==============================================================
DET   determinism hazards in the simulation core
DIG   digest purity (content-addressed job/spec/figure identity)
STO   result-store access discipline
OBS   observability hygiene
GAT   gating-protocol preconditions (the paper's Eq. 8 window)
TYP   typed-core gate (mirrors the ``mypy --strict`` CI packages)
====  ==============================================================
"""

from __future__ import annotations

import ast
from fnmatch import fnmatch
from typing import Iterable, Iterator

from .lint import Finding, ModuleContext, Rule, register

__all__ = ["CORE_PACKAGES", "TYPED_PACKAGES"]

#: subpackages whose execution must be a pure function of the job
#: digest — the simulation spine and everything feeding it
CORE_PACKAGES = ("sim", "htm", "mem", "cm", "gating", "power", "workloads")

#: subpackages gated by ``mypy --strict`` in CI (see pyproject.toml)
TYPED_PACKAGES = ("exec", "figures", "obs", "scenarios")


# ----------------------------------------------------------------------
# shared AST helpers
# ----------------------------------------------------------------------
def _call_root_and_attr(func: ast.AST) -> tuple[str | None, str | None]:
    """(``root``, ``attr``) of an ``<root>.<attr>(...)`` call target.

    ``time.time`` -> ("time", "time"); ``datetime.datetime.now`` ->
    ("datetime", "now"); ``self._stats.counter`` -> ("_stats",
    "counter") — the *nearest* receiver name, which is what the
    receiver-hint heuristics match on.
    """
    if not isinstance(func, ast.Attribute):
        return None, None
    value = func.value
    if isinstance(value, ast.Name):
        return value.id, func.attr
    if isinstance(value, ast.Attribute):
        return value.attr, func.attr
    if isinstance(value, ast.Call) and isinstance(value.func, ast.Name):
        return value.func.id + "()", func.attr
    return None, func.attr


def _enclosing_function(
    ctx: ModuleContext, node: ast.AST
) -> ast.FunctionDef | ast.AsyncFunctionDef | None:
    parents = ctx.parents
    current = parents.get(node)
    while current is not None:
        if isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return current
        current = parents.get(current)
    return None


def _functions(tree: ast.Module) -> Iterator[ast.FunctionDef | ast.AsyncFunctionDef]:
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def _statement_lists(tree: ast.Module) -> Iterator[list[ast.stmt]]:
    for node in ast.walk(tree):
        for attr_name in ("body", "orelse", "finalbody"):
            block = getattr(node, attr_name, None)
            if isinstance(block, list) and block and isinstance(block[0], ast.stmt):
                yield block


def _mentions(node: ast.AST, identifier: str) -> bool:
    """Does any Name or attribute access in ``node`` use ``identifier``?"""
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name) and sub.id == identifier:
            return True
        if isinstance(sub, ast.Attribute) and sub.attr == identifier:
            return True
    return False


def _string_constants(node: ast.AST) -> Iterator[str]:
    for sub in ast.walk(node):
        if isinstance(sub, ast.Constant) and isinstance(sub.value, str):
            yield sub.value


# ----------------------------------------------------------------------
# DET — determinism hazards
# ----------------------------------------------------------------------
_WALLCLOCK_CALLS = frozenset({
    ("time", "time"), ("time", "time_ns"),
    ("time", "monotonic"), ("time", "monotonic_ns"),
    ("time", "perf_counter"), ("time", "perf_counter_ns"),
    ("time", "process_time"), ("time", "process_time_ns"),
    ("time", "localtime"), ("time", "gmtime"), ("time", "strftime"),
    ("datetime", "now"), ("datetime", "utcnow"), ("datetime", "today"),
    ("date", "today"),
})


@register
class WallClockRule(Rule):
    id = "DET001"
    name = "wallclock"
    rationale = (
        "the deterministic core (sim/htm/mem/cm/gating/power/workloads) "
        "must never read the wall clock: results must be a pure function "
        "of the job digest"
    )

    def check(self, ctx: ModuleContext) -> Iterable[Finding]:
        if not ctx.in_package(*CORE_PACKAGES):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            root, attr = _call_root_and_attr(node.func)
            if root is not None and (root, attr) in _WALLCLOCK_CALLS:
                yield ctx.finding(
                    self, node,
                    f"wall-clock read `{root}.{attr}()` in the "
                    f"deterministic core; derive timing from engine "
                    f"cycles instead",
                )


#: np.random module-level helpers that are legitimate to *construct*
#: generators with (the draws themselves must come from a Generator
#: seeded through sim/rng.py)
_NP_RANDOM_OK = frozenset({
    "default_rng", "Generator", "SeedSequence", "BitGenerator", "PCG64",
})


@register
class UnseededRngRule(Rule):
    id = "DET002"
    name = "unseeded-rng"
    rationale = (
        "every random draw in the deterministic core must flow from the "
        "run seed through sim/rng.py; ambient entropy (stdlib random, "
        "os.urandom, uuid, unseeded/literal-seeded default_rng) breaks "
        "replicate identity"
    )

    def check(self, ctx: ModuleContext) -> Iterable[Finding]:
        if not ctx.in_package(*CORE_PACKAGES) or ctx.module == ("sim", "rng"):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Attribute):
                value = func.value
                if isinstance(value, ast.Name) and value.id == "random":
                    yield ctx.finding(
                        self, node,
                        f"stdlib `random.{func.attr}()` in the "
                        f"deterministic core; use a Generator from "
                        f"sim/rng.py",
                    )
                    continue
                if isinstance(value, ast.Name) and value.id == "os" and (
                    func.attr == "urandom"
                ):
                    yield ctx.finding(
                        self, node, "`os.urandom()` is ambient entropy; "
                        "seeds must derive from the job's root seed")
                    continue
                if isinstance(value, ast.Name) and value.id == "uuid" and (
                    func.attr in ("uuid1", "uuid4")
                ):
                    yield ctx.finding(
                        self, node, f"`uuid.{func.attr}()` is "
                        "nondeterministic; derive identifiers from "
                        "seeded state")
                    continue
                if isinstance(value, ast.Name) and value.id == "secrets":
                    yield ctx.finding(
                        self, node, "`secrets` draws ambient entropy; use "
                        "sim/rng.py derivations")
                    continue
                # np.random.<fn>(...) / numpy.random.<fn>(...)
                if (isinstance(value, ast.Attribute)
                        and value.attr == "random"
                        and isinstance(value.value, ast.Name)
                        and value.value.id in ("np", "numpy")
                        and func.attr not in _NP_RANDOM_OK):
                    yield ctx.finding(
                        self, node,
                        f"module-level `np.random.{func.attr}()` uses the "
                        f"shared global state; use a Generator seeded via "
                        f"sim/rng.py",
                    )
                    continue
            is_default_rng = (
                isinstance(func, ast.Name) and func.id == "default_rng"
            ) or (isinstance(func, ast.Attribute)
                  and func.attr == "default_rng")
            if is_default_rng:
                if not node.args and not node.keywords:
                    yield ctx.finding(
                        self, node,
                        "`default_rng()` without a seed pulls OS entropy; "
                        "pass a seed derived via sim/rng.py",
                    )
                elif node.args and isinstance(node.args[0], ast.Constant):
                    yield ctx.finding(
                        self, node,
                        "`default_rng(<literal>)` bypasses the root-seed "
                        "derivation discipline; derive the seed with "
                        "sim/rng.derive_seed",
                    )


_ORDER_INSENSITIVE = frozenset({
    "sorted", "min", "max", "sum", "len", "any", "all", "set", "frozenset",
})


def _is_set_expr(node: ast.AST, set_names: frozenset[str]) -> bool:
    if isinstance(node, ast.Set):
        return True
    if isinstance(node, ast.SetComp):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        if node.func.id in ("set", "frozenset"):
            return True
    if isinstance(node, ast.Name) and node.id in set_names:
        return True
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.BitXor, ast.Sub)
    ):
        return (_is_set_expr(node.left, set_names)
                or _is_set_expr(node.right, set_names))
    return False


def _is_set_annotation(annotation: ast.AST) -> bool:
    target = annotation
    if isinstance(target, ast.Subscript):
        target = target.value
    return (isinstance(target, ast.Name)
            and target.id in ("set", "frozenset", "Set", "FrozenSet"))


@register
class SetIterationRule(Rule):
    id = "DET003"
    name = "set-iteration"
    rationale = (
        "iterating a set in order-sensitive positions (for loops, "
        "list/tuple/join materialization) leaks hash order into digests, "
        "serialized stats and event ordering; wrap in sorted()"
    )

    def check(self, ctx: ModuleContext) -> Iterable[Finding]:
        set_names = self._set_bound_names(ctx.tree)
        parents = ctx.parents
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.For):
                if _is_set_expr(node.iter, set_names):
                    yield ctx.finding(
                        self, node.iter,
                        "for-loop over a set: iteration order is "
                        "hash-dependent; use sorted(...)",
                    )
            elif isinstance(node, (ast.ListComp, ast.GeneratorExp, ast.DictComp)):
                for comp in node.generators:
                    if not _is_set_expr(comp.iter, set_names):
                        continue
                    if self._feeds_order_insensitive(node, parents):
                        continue
                    yield ctx.finding(
                        self, comp.iter,
                        "comprehension over a set materializes "
                        "hash-dependent order; use sorted(...)",
                    )
            elif isinstance(node, ast.Call):
                root, attr = _call_root_and_attr(node.func)
                if attr == "join" and any(
                    _is_set_expr(arg, set_names) for arg in node.args
                ):
                    yield ctx.finding(
                        self, node,
                        "join() over a set concatenates in hash order; "
                        "join sorted(...) instead",
                    )
                elif (isinstance(node.func, ast.Name)
                      and node.func.id in ("list", "tuple")
                      and len(node.args) == 1
                      and _is_set_expr(node.args[0], set_names)):
                    yield ctx.finding(
                        self, node,
                        f"{node.func.id}() over a set freezes "
                        f"hash-dependent order; use sorted(...)",
                    )

    @staticmethod
    def _set_bound_names(tree: ast.Module) -> frozenset[str]:
        """Names assigned *only* set-valued expressions, module-wide."""
        set_bound: set[str] = set()
        other_bound: set[str] = set()
        for node in ast.walk(tree):
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                if isinstance(target, ast.Name):
                    if _is_set_expr(node.value, frozenset()):
                        set_bound.add(target.id)
                    else:
                        other_bound.add(target.id)
            elif isinstance(node, ast.AnnAssign) and isinstance(
                node.target, ast.Name
            ):
                if _is_set_annotation(node.annotation):
                    set_bound.add(node.target.id)
                else:
                    other_bound.add(node.target.id)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                args = node.args
                for arg in (*args.posonlyargs, *args.args, *args.kwonlyargs):
                    if arg.annotation is not None and _is_set_annotation(
                        arg.annotation
                    ):
                        set_bound.add(arg.arg)
        return frozenset(set_bound - other_bound)

    @staticmethod
    def _feeds_order_insensitive(
        node: ast.AST, parents: dict[ast.AST, ast.AST]
    ) -> bool:
        """Is this comprehension an argument of sorted()/min()/... ?"""
        parent = parents.get(node)
        if isinstance(parent, ast.Call) and isinstance(parent.func, ast.Name):
            return parent.func.id in _ORDER_INSENSITIVE
        return False


# ----------------------------------------------------------------------
# DIG — digest purity
# ----------------------------------------------------------------------
_CONSTRUCTION_HOOKS = frozenset({
    "__init__", "__post_init__", "__new__", "__setstate__",
    "__copy__", "__deepcopy__", "__reduce__",
})


@register
class FrozenMutationRule(Rule):
    id = "DIG101"
    name = "frozen-mutation"
    rationale = (
        "RunJob/ScenarioSpec/FigureSpec identity is their content digest; "
        "the frozen-dataclass escape hatch object.__setattr__ outside "
        "construction hooks mutates digest inputs post-construction"
    )

    def check(self, ctx: ModuleContext) -> Iterable[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            root, attr = _call_root_and_attr(node.func)
            if root != "object" or attr != "__setattr__":
                continue
            function = _enclosing_function(ctx, node)
            if function is not None and function.name in _CONSTRUCTION_HOOKS:
                continue
            where = function.name if function is not None else "module scope"
            yield ctx.finding(
                self, node,
                f"object.__setattr__ in `{where}`: frozen digest-bearing "
                f"values may only be written during construction "
                f"(__init__/__post_init__)",
            )


@register
class ReplicateSeedSlotsRule(Rule):
    id = "DIG102"
    name = "replicate-seed-slots"
    rationale = (
        "a replicate key must zero BOTH seed slots (workload seed and "
        "config.seed); zeroing one co-schedules jobs that are not seed "
        "replicates and breaks pack bit-identity"
    )

    def check(self, ctx: ModuleContext) -> Iterable[Finding]:
        for function in _functions(ctx.tree):
            zeroed: set[str] = set()
            for node in ast.walk(function):
                if not isinstance(node, ast.Assign):
                    continue
                for target in node.targets:
                    slot = self._seed_slot(target)
                    if slot is not None:
                        zeroed.add(slot)
            touched = zeroed & {"workload", "config"}
            if touched and touched != {"workload", "config"}:
                missing = ({"workload", "config"} - touched).pop()
                yield ctx.finding(
                    self, function,
                    f"`{function.name}` zeroes the {touched.pop()!r} seed "
                    f"slot but not the {missing!r} one; replicate keys "
                    f"must zero both",
                )

    @staticmethod
    def _seed_slot(target: ast.AST) -> str | None:
        """``payload["workload"]["seed"]`` -> "workload" (else None)."""
        if not isinstance(target, ast.Subscript):
            return None
        key = target.slice
        if not (isinstance(key, ast.Constant) and key.value == "seed"):
            return None
        outer = target.value
        if isinstance(outer, ast.Subscript) and isinstance(
            outer.slice, ast.Constant
        ):
            value = outer.slice.value
            if value in ("workload", "config"):
                return str(value)
        return None


#: receiver names that denote pack-shared warm state (the RunReuse
#: object threaded through execute_pack -> run_workload)
_REUSE_RECEIVERS = frozenset({"reuse", "_reuse", "run_reuse"})

#: in-place mutators: calling one on a pack-cached value changes state
#: a sibling pack member will observe
_MUTATOR_METHODS = frozenset({
    "append", "extend", "insert", "update", "setdefault", "clear",
    "pop", "popitem", "remove", "discard", "add", "sort", "reverse",
})


def _pack_cache_attr(node: ast.AST, reuse_classes: frozenset[str]) -> bool:
    """Is ``node`` an attribute of a pack-shared reuse object?

    Matches ``reuse.<attr>`` (any receiver named like a reuse handle)
    and ``self.<attr>`` inside a class whose name marks it as the
    pack-sharing carrier (``*Reuse*``).
    """
    if not isinstance(node, ast.Attribute):
        return False
    value = node.value
    if isinstance(value, ast.Name):
        if value.id in _REUSE_RECEIVERS:
            return True
        if value.id == "self" and reuse_classes:
            return True
    return False


@register
class PackSharedCacheRule(Rule):
    id = "DIG103"
    name = "pack-shared-cache"
    rationale = (
        "state cached across pack members (RunReuse) must be "
        "seed-invariant and immutable after prep; a seed-dependent "
        "value under a seed-free key, or an in-place mutation of a "
        "cached value, leaks one member's run into its siblings"
    )

    def check(self, ctx: ModuleContext) -> Iterable[Finding]:
        if not ctx.module:
            return
        for function in _functions(ctx.tree):
            reuse_classes = self._enclosing_reuse_classes(ctx, function)
            loaded = self._cache_loaded_names(function, reuse_classes)
            bindings = self._name_bindings(function)
            for node in ast.walk(function):
                if isinstance(node, ast.Assign):
                    for target in node.targets:
                        yield from self._check_store(
                            ctx, node, target, reuse_classes, bindings
                        )
                        # instance.attr = ... on a cache-loaded value
                        if (isinstance(target, ast.Attribute)
                                and isinstance(target.value, ast.Name)
                                and target.value.id in loaded):
                            yield ctx.finding(
                                self, node,
                                f"attribute write on "
                                f"`{target.value.id}` (loaded from a "
                                f"pack-shared cache): cached values are "
                                f"immutable after prep — build a new "
                                f"value (dataclasses.replace) instead",
                            )
                elif isinstance(node, ast.Call):
                    func = node.func
                    if (isinstance(func, ast.Attribute)
                            and func.attr in _MUTATOR_METHODS
                            and isinstance(func.value, ast.Name)
                            and func.value.id in loaded):
                        yield ctx.finding(
                            self, node,
                            f"`{func.value.id}.{func.attr}()` mutates a "
                            f"value loaded from a pack-shared cache; "
                            f"cached state must be immutable after prep "
                            f"(copy it or use dataclasses.replace)",
                        )

    def _check_store(
        self,
        ctx: ModuleContext,
        node: ast.Assign,
        target: ast.AST,
        reuse_classes: frozenset[str],
        bindings: dict[str, list[ast.AST]],
    ) -> Iterator[Finding]:
        """Flag ``reuse.<cache>[key] = <seed-dependent value>``."""
        if not isinstance(target, ast.Subscript):
            return
        if not _pack_cache_attr(target.value, reuse_classes):
            return
        key = target.slice
        key_mentions_seed = _mentions(key, "seed")
        if not key_mentions_seed and isinstance(key, ast.Name):
            # one level of name tracing: `key = (..., spec.seed)` above
            key_mentions_seed = any(
                _mentions(bound, "seed")
                for bound in bindings.get(key.id, [])
            )
        if _mentions(node.value, "seed") and not key_mentions_seed:
            yield ctx.finding(
                self, node,
                "seed-dependent value stored in a pack-shared cache "
                "under a seed-free key: siblings of this pack member "
                "would replay its seed; cache the seed-invariant part "
                "and re-stamp the seed on read",
            )

    @staticmethod
    def _name_bindings(function: ast.AST) -> dict[str, list[ast.AST]]:
        """name -> every expression assigned to it in ``function``."""
        bindings: dict[str, list[ast.AST]] = {}
        for node in ast.walk(function):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        bindings.setdefault(target.id, []).append(node.value)
        return bindings

    @staticmethod
    def _enclosing_reuse_classes(
        ctx: ModuleContext, function: ast.AST
    ) -> frozenset[str]:
        parents = ctx.parents
        names: set[str] = set()
        current = parents.get(function)
        while current is not None:
            if isinstance(current, ast.ClassDef) and "Reuse" in current.name:
                names.add(current.name)
            current = parents.get(current)
        return frozenset(names)

    @staticmethod
    def _cache_loaded_names(
        function: ast.AST, reuse_classes: frozenset[str]
    ) -> frozenset[str]:
        """Names bound from a pack-cache subscript or ``.get()`` load.

        A later re-binding to a fresh value (``x = replace(x, ...)``)
        is not tracked — the rule errs toward flagging, and reviewed
        exceptions carry a ``# repro: allow[pack-shared-cache]``.
        """
        loaded: set[str] = set()
        for node in ast.walk(function):
            if not (isinstance(node, ast.Assign) and len(node.targets) == 1):
                continue
            target = node.targets[0]
            if not isinstance(target, ast.Name):
                continue
            value = node.value
            if isinstance(value, ast.Subscript) and _pack_cache_attr(
                value.value, reuse_classes
            ):
                loaded.add(target.id)
            elif (isinstance(value, ast.Call)
                  and isinstance(value.func, ast.Attribute)
                  and value.func.attr == "get"
                  and _pack_cache_attr(value.func.value, reuse_classes)):
                loaded.add(target.id)
        return frozenset(loaded)


# ----------------------------------------------------------------------
# STO — store discipline
# ----------------------------------------------------------------------
_STORE_FILES = ("results.jsonl", "results.db")
_OPEN_LIKE = frozenset({
    "open", "read_text", "write_text", "read_bytes", "write_bytes",
})


@register
class StoreAccessRule(Rule):
    id = "STO201"
    name = "store-access"
    rationale = (
        "result-store files may only be touched through exec/backends/ "
        "(locking, tombstones and schema guards live there); a direct "
        "open() or sqlite3.connect() bypasses crash/concurrency safety"
    )

    def check(self, ctx: ModuleContext) -> Iterable[Finding]:
        if ctx.module[:2] == ("exec", "backends"):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            root, attr = _call_root_and_attr(node.func)
            if root == "sqlite3" and attr == "connect":
                yield ctx.finding(
                    self, node,
                    "sqlite3.connect outside exec/backends/: go through "
                    "the SqliteBackend (WAL mode, busy timeout, digest "
                    "upserts)",
                )
                continue
            is_open_like = (
                isinstance(node.func, ast.Name) and node.func.id == "open"
            ) or attr in _OPEN_LIKE
            if not is_open_like:
                continue
            for text in _string_constants(node):
                if any(store_file in text for store_file in _STORE_FILES):
                    yield ctx.finding(
                        self, node,
                        f"direct file access to {text!r}: store files are "
                        f"owned by exec/backends/ (advisory locking, "
                        f"torn-line safety)",
                    )
                    break


def _flock_mode(call: ast.Call) -> str | None:
    """"acquire", "release" or None for an fcntl.flock()/lockf() call."""
    root, attr = _call_root_and_attr(call.func)
    if root != "fcntl" or attr not in ("flock", "lockf"):
        return None
    if len(call.args) < 2:
        return None
    return "release" if _mentions(call.args[1], "LOCK_UN") else "acquire"


@register
class LockBalanceRule(Rule):
    id = "STO202"
    name = "lock-balance"
    rationale = (
        "every advisory-lock acquire must pair with a release on ALL "
        "exit paths (try/finally), or a raised exception wedges every "
        "other writer of the store/obs log"
    )

    def check(self, ctx: ModuleContext) -> Iterable[Finding]:
        for block in _statement_lists(ctx.tree):
            for idx, stmt in enumerate(block):
                if not (isinstance(stmt, ast.Expr)
                        and isinstance(stmt.value, ast.Call)):
                    continue
                if _flock_mode(stmt.value) != "acquire":
                    continue
                if not self._released_after(block[idx + 1:]):
                    yield ctx.finding(
                        self, stmt,
                        "fcntl lock acquired without a following "
                        "try/finally that releases it (LOCK_UN); an "
                        "exception here wedges all other lock holders",
                    )

    @staticmethod
    def _released_after(rest: list[ast.stmt]) -> bool:
        for stmt in rest:
            if isinstance(stmt, ast.Try):
                for final_stmt in stmt.finalbody:
                    for sub in ast.walk(final_stmt):
                        if isinstance(sub, ast.Call) and (
                            _flock_mode(sub) == "release"
                        ):
                            return True
        return False


# ----------------------------------------------------------------------
# OBS — observability hygiene
# ----------------------------------------------------------------------
_STATS_RECEIVERS = frozenset({"stats", "_stats", "registry", "_registry"})
_OBS_RECEIVERS = frozenset({"recorder", "_recorder", "rec", "get_recorder()"})
_METRIC_METHODS = frozenset({"counter", "histogram", "bump", "count"})


def _metric_name_pattern(arg: ast.AST) -> str | None:
    """The metric-name argument as an fnmatch-able pattern.

    A plain string stays itself; an f-string keeps its literal parts
    with each interpolation collapsed to ``*`` (``f"{prefix}.fills"``
    -> ``*.fills``), which is exactly the shape the declarations in
    :data:`repro.metrics.DECLARED_METRICS` use.
    """
    if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
        return arg.value
    if isinstance(arg, ast.JoinedStr):
        parts = []
        for piece in arg.values:
            if isinstance(piece, ast.Constant):
                parts.append(str(piece.value))
            else:
                parts.append("*")
        return "".join(parts)
    return None


@register
class UndeclaredMetricRule(Rule):
    id = "OBS301"
    name = "undeclared-metric"
    rationale = (
        "every Counter/Histogram/obs-counter name bumped in code must be "
        "declared in metrics.py (DECLARED_METRICS) so reporting, docs "
        "and dashboards share one canonical catalog"
    )

    def check(self, ctx: ModuleContext) -> Iterable[Finding]:
        if not ctx.module:
            return
        declared = self._declared()
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call) or not node.args:
                continue
            root, attr = _call_root_and_attr(node.func)
            if attr not in _METRIC_METHODS or root is None:
                continue
            if attr == "count":
                if root not in _OBS_RECEIVERS:
                    continue
            elif root not in _STATS_RECEIVERS:
                continue
            pattern = _metric_name_pattern(node.args[0])
            if pattern is None:  # dynamic name: not statically checkable
                continue
            if not any(fnmatch(pattern, decl) or pattern == decl
                       for decl in declared):
                yield ctx.finding(
                    self, node,
                    f"metric name {pattern!r} is not declared in "
                    f"repro/metrics.py DECLARED_METRICS; declare it (with "
                    f"its semantics) before bumping it",
                )

    @staticmethod
    def _declared() -> frozenset[str]:
        from ..metrics import DECLARED_METRICS

        return DECLARED_METRICS


def _bumped_metric_patterns(tree: ast.Module) -> Iterator[str]:
    """Every statically-resolvable metric name bumped in ``tree``.

    The mirror image of OBS301's call-site filter: counter/histogram/
    bump on a stats receiver, count on an obs receiver, first argument
    normalized with f-string interpolations collapsed to ``*``.
    """
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call) or not node.args:
            continue
        root, attr = _call_root_and_attr(node.func)
        if attr not in _METRIC_METHODS or root is None:
            continue
        if attr == "count":
            if root not in _OBS_RECEIVERS:
                continue
        elif root not in _STATS_RECEIVERS:
            continue
        pattern = _metric_name_pattern(node.args[0])
        if pattern is not None:
            yield pattern


@register
class DeadMetricDeclarationRule(Rule):
    id = "OBS304"
    name = "dead-metric-declaration"
    rationale = (
        "OBS301's inverse: a DECLARED_METRICS entry no call site bumps "
        "is a stale catalog line — docs and dashboards advertise a "
        "metric that never appears in any run"
    )

    def check(self, ctx: ModuleContext) -> Iterable[Finding]:
        # Project-level rule: runs once, on the catalog module itself,
        # and scans its sibling package sources for bump sites.
        if ctx.module != ("metrics",):
            return
        declarations = self._declaration_nodes(ctx.tree)
        if not declarations:
            return
        bumped = set(_bumped_metric_patterns(ctx.tree))
        package_root = ctx.path.parent
        if package_root.is_dir():
            for sibling in sorted(package_root.rglob("*.py")):
                if sibling == ctx.path:
                    continue
                if "__pycache__" in sibling.parts:
                    continue
                try:
                    tree = ast.parse(sibling.read_text(encoding="utf-8"))
                except (OSError, SyntaxError):
                    continue  # unreadable siblings are PARSE findings
                bumped.update(_bumped_metric_patterns(tree))
        for decl, node in declarations:
            if not any(fnmatch(pattern, decl) or pattern == decl
                       for pattern in bumped):
                yield ctx.finding(
                    self, node,
                    f"declared metric {decl!r} is bumped by no call site "
                    f"in the package; remove the declaration or wire the "
                    f"metric",
                )

    @staticmethod
    def _declaration_nodes(
        tree: ast.Module,
    ) -> list[tuple[str, ast.Constant]]:
        """The string constants inside the DECLARED_METRICS literal."""
        for node in tree.body:
            target: ast.AST | None = None
            if isinstance(node, ast.AnnAssign):
                target = node.target
            elif isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
            if not (isinstance(target, ast.Name)
                    and target.id == "DECLARED_METRICS"
                    and node.value is not None):
                continue
            return [
                (constant.value, constant)
                for constant in ast.walk(node.value)
                if isinstance(constant, ast.Constant)
                and isinstance(constant.value, str)
            ]
        return []


@register
class NullRecorderParityRule(Rule):
    id = "OBS302"
    name = "null-recorder-parity"
    rationale = (
        "instrumented call sites hold a NullRecorder when obs is off; a "
        "method defined on ObsRecorder but missing from NullRecorder is "
        "an AttributeError on every obs-off run"
    )

    def check(self, ctx: ModuleContext) -> Iterable[Finding]:
        classes: dict[str, ast.ClassDef] = {}
        for node in ctx.tree.body:
            if isinstance(node, ast.ClassDef) and node.name in (
                "ObsRecorder", "NullRecorder"
            ):
                classes[node.name] = node
        if len(classes) != 2:
            return
        null_methods = self._method_names(classes["NullRecorder"])
        obs_methods = self._method_names(classes["ObsRecorder"])
        for name in sorted(obs_methods - null_methods):
            if name.startswith("_"):
                continue
            yield ctx.finding(
                self, classes["ObsRecorder"],
                f"ObsRecorder.{name} has no NullRecorder counterpart; "
                f"obs-off call sites would crash",
            )

    @staticmethod
    def _method_names(cls: ast.ClassDef) -> set[str]:
        return {
            node.name for node in cls.body
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        }


@register
class SpanContextRule(Rule):
    id = "OBS303"
    name = "span-context"
    rationale = (
        "recorder.span() is a context manager; calling it without "
        "`with` records nothing and silently unbalances the span tree"
    )

    def check(self, ctx: ModuleContext) -> Iterable[Finding]:
        parents = ctx.parents
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            root, attr = _call_root_and_attr(node.func)
            if attr != "span" or root is None:
                continue
            if not (root in _OBS_RECEIVERS or "recorder" in root
                    or "obs" in root):
                continue
            if isinstance(parents.get(node), ast.withitem):
                continue
            yield ctx.finding(
                self, node,
                "recorder.span() outside a `with` block: the span is "
                "never entered, so nothing is recorded",
            )


# ----------------------------------------------------------------------
# GAT — gating-protocol preconditions
# ----------------------------------------------------------------------
@register
class GatingWindowGuardRule(Rule):
    id = "GAT401"
    name = "gating-window-guard"
    rationale = (
        "Eq. 8 is undefined at N_a = 0: every gating_window query must "
        "be dominated by an abort-recorded check (the PR 5 "
        "victim-committed crash class)"
    )

    def check(self, ctx: ModuleContext) -> Iterable[Finding]:
        if not ctx.module:
            return
        for function in _functions(ctx.tree):
            if function.name.startswith("gating_window"):
                continue  # the definition/delegation layer
            guard_lines = self._guard_lines(function)
            for node in ast.walk(function):
                if not isinstance(node, ast.Call):
                    continue
                _root, attr = _call_root_and_attr(node.func)
                if attr not in ("gating_window", "gating_window_ex"):
                    continue
                if not any(line <= node.lineno for line in guard_lines):
                    yield ctx.finding(
                        self, node,
                        f"`{attr}` query in `{function.name}` is not "
                        f"dominated by an abort-recorded check "
                        f"(abort_count guard or bump_abort call)",
                    )

    @staticmethod
    def _guard_lines(function: ast.AST) -> list[int]:
        lines = []
        for node in ast.walk(function):
            if isinstance(node, (ast.If, ast.While)) and _mentions(
                node.test, "abort_count"
            ):
                lines.append(node.lineno)
            elif isinstance(node, ast.Assert) and _mentions(
                node.test, "abort_count"
            ):
                lines.append(node.lineno)
            elif isinstance(node, ast.Call):
                _root, attr = _call_root_and_attr(node.func)
                if attr == "bump_abort":
                    lines.append(node.lineno)
        return lines


# ----------------------------------------------------------------------
# TYP — typed-core gate
# ----------------------------------------------------------------------
@register
class UntypedDefRule(Rule):
    id = "TYP501"
    name = "untyped-def"
    rationale = (
        "the typed core (exec/figures/obs/scenarios) is gated by "
        "`mypy --strict` in CI; an unannotated def fails the gate — "
        "this rule catches it without a mypy install"
    )

    def check(self, ctx: ModuleContext) -> Iterable[Finding]:
        if not ctx.in_package(*TYPED_PACKAGES):
            return
        parents = ctx.parents
        for function in _functions(ctx.tree):
            missing: list[str] = []
            args = function.args
            positional = [*args.posonlyargs, *args.args]
            in_class = isinstance(parents.get(function), ast.ClassDef)
            if in_class and positional and positional[0].arg in ("self", "cls"):
                positional = positional[1:]
            for arg in (*positional, *args.kwonlyargs):
                if arg.annotation is None:
                    missing.append(arg.arg)
            for vararg in (args.vararg, args.kwarg):
                if vararg is not None and vararg.annotation is None:
                    missing.append(f"*{vararg.arg}")
            if function.returns is None:
                missing.append("return")
            if missing:
                yield ctx.finding(
                    self, function,
                    f"`{function.name}` is missing annotations for "
                    f"{', '.join(missing)}; the typed core must pass "
                    f"mypy --strict",
                )
