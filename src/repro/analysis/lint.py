"""`repro check`: the determinism-invariant lint engine.

The repo's core promise — (jobs, shard K/N, backend, packs on/off,
obs on/off) never changes a byte — is enforced dynamically by golden
captures and smoke scripts.  This module adds the *static* half: an
AST-based rule engine whose rules encode the domain invariants generic
linters cannot express (wall-clock reads in the deterministic core,
unordered set iteration feeding digests, store-file access outside the
backend layer, unbalanced advisory locks, undeclared metric names,
Eq. 8 gating-window preconditions, ...).

Architecture
------------
* :class:`Rule` subclasses register themselves via :func:`register`;
  each rule has a stable ``id`` (``DET003``), a slug ``name``
  (``set-iteration``) and a one-line ``rationale``.
* :class:`ModuleContext` wraps one parsed file: source, AST, a parent
  map (for "is this call a ``with`` item?" questions) and the module
  path relative to the ``repro`` package root, which is how rules
  scope themselves to the deterministic core, the typed core, or the
  storage layer.
* Findings on a line carrying ``# repro: allow[rule-id]`` (id, slug or
  ``*``) are suppressed — the suppression syntax for reviewed,
  justified exceptions.  Unknown rule ids in a suppression are
  themselves reported, so stale suppressions cannot linger silently.
* :func:`run_check` walks files/directories deterministically (sorted,
  ``__pycache__``/hidden dirs skipped) and returns a
  :class:`CheckReport`; :func:`render_text` / :func:`render_json` are
  the two reporters behind ``repro check [--json]``.

The concrete rules live in :mod:`repro.analysis.rules`; importing that
module populates the registry.
"""

from __future__ import annotations

import ast
import io
import json
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator

__all__ = [
    "Finding",
    "ModuleContext",
    "Rule",
    "CheckReport",
    "register",
    "registered_rules",
    "run_check",
    "check_source",
    "render_text",
    "render_json",
]

#: bump when the JSON report layout changes incompatibly
CHECK_SCHEMA_VERSION = 1

#: directories never descended into when expanding path arguments
_SKIP_DIRS = frozenset({
    "__pycache__", ".git", ".repro-cache", ".smoke-cache", "build",
    "dist", ".mypy_cache", ".ruff_cache",
})

_ALLOW_RE = re.compile(r"#\s*repro:\s*allow\[([^\]]*)\]")


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    name: str
    path: str
    line: int
    col: int
    message: str

    def sort_key(self) -> tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.rule)

    def as_dict(self) -> dict[str, object]:
        return {
            "rule": self.rule,
            "name": self.name,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }


class ModuleContext:
    """One parsed module, with the navigation aids rules need."""

    def __init__(self, path: Path, source: str, display_path: str | None = None):
        self.path = path
        self.display_path = display_path if display_path is not None else str(path)
        self.source = source
        self.tree = ast.parse(source, filename=self.display_path)
        self.lines = source.splitlines()
        #: parts of the dotted module path below the ``repro`` package
        #: (``("sim", "engine")`` for ``src/repro/sim/engine.py``);
        #: empty for files outside the package (tests, scripts).
        self.module = _module_parts(path)
        self._parents: dict[ast.AST, ast.AST] | None = None
        self._comments: dict[int, str] | None = None

    # ------------------------------------------------------------------
    def in_package(self, *heads: str) -> bool:
        """Is this module inside one of the given top-level subpackages?"""
        return bool(self.module) and self.module[0] in heads

    @property
    def parents(self) -> dict[ast.AST, ast.AST]:
        """child AST node -> parent AST node (built lazily, once)."""
        if self._parents is None:
            parents: dict[ast.AST, ast.AST] = {}
            for node in ast.walk(self.tree):
                for child in ast.iter_child_nodes(node):
                    parents[child] = node
            self._parents = parents
        return self._parents

    def finding(self, rule: "Rule", node: ast.AST, message: str) -> Finding:
        return Finding(
            rule=rule.id,
            name=rule.name,
            path=self.display_path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            message=message,
        )

    # ------------------------------------------------------------------
    def suppressed_ids(self, line: int) -> frozenset[str]:
        """Rule ids/slugs allowed on ``line`` via ``# repro: allow[...]``.

        A suppression is either a trailing comment on the flagged line
        or a dedicated comment line in the contiguous comment block
        immediately above it (for constructs that don't fit a trailing
        comment).
        """
        ids: set[str] = set()
        comments = self.comment_lines
        if 1 <= line <= len(self.lines):
            ids.update(self._allow_ids(comments.get(line, "")))
            above = line - 1
            while above >= 1 and self.lines[above - 1].lstrip().startswith("#"):
                ids.update(self._allow_ids(comments.get(above, "")))
                above -= 1
        return frozenset(ids)

    @property
    def comment_lines(self) -> dict[int, str]:
        """line number -> comment text, from real ``#`` comment tokens.

        Tokenizing (rather than regex over raw lines) keeps suppression
        syntax *inside string literals and docstrings* inert — the
        engine's own documentation may quote ``repro: allow[...]``
        examples without creating live suppressions.
        """
        if self._comments is None:
            comments: dict[int, str] = {}
            try:
                tokens = tokenize.generate_tokens(io.StringIO(self.source).readline)
                for tok in tokens:
                    if tok.type == tokenize.COMMENT:
                        comments[tok.start[0]] = tok.string
            except (tokenize.TokenError, IndentationError):  # pragma: no cover
                pass  # ast.parse succeeded, so this is unreachable in practice
            self._comments = comments
        return self._comments

    @staticmethod
    def _allow_ids(text: str) -> frozenset[str]:
        match = _ALLOW_RE.search(text)
        if not match:
            return frozenset()
        return frozenset(
            part.strip() for part in match.group(1).split(",")
            if part.strip()
        )

    def suppression_lines(self) -> Iterator[tuple[int, frozenset[str]]]:
        """Every (line, allowed ids) suppression comment in the file."""
        for idx in sorted(self.comment_lines):
            ids = self._allow_ids(self.comment_lines[idx])
            if ids:
                yield idx, ids


def _module_parts(path: Path) -> tuple[str, ...]:
    """Dotted-module parts below the ``repro`` package, if any.

    Recognizes ``.../src/repro/<parts>.py`` (and a bare
    ``repro/<parts>.py`` package checkout); everything else — tests,
    scripts, fixtures — maps to the empty tuple, which is how
    package-scoped rules exempt non-package code.
    """
    parts = path.parts
    for idx, part in enumerate(parts[:-1]):
        if part != "repro":
            continue
        if idx > 0 and parts[idx - 1] != "src" and idx != 0:
            # accept only src/repro/... or a leading repro/...
            continue
        below = list(parts[idx + 1:])
        below[-1] = below[-1][:-3] if below[-1].endswith(".py") else below[-1]
        if below[-1] == "__init__":
            below.pop()
        return tuple(below)
    return ()


class Rule:
    """One invariant.  Subclass, set the class attrs, implement check().

    ``id`` is the stable selector (``DET003``); ``name`` the
    human-facing slug (``set-iteration``); ``rationale`` one line of
    *why* — it is surfaced by ``repro check --list-rules`` and the rule
    catalog in ``docs/static-analysis.md``.
    """

    id: str = ""
    name: str = ""
    rationale: str = ""

    def check(self, ctx: ModuleContext) -> Iterable[Finding]:
        raise NotImplementedError


_REGISTRY: dict[str, Rule] = {}


def register(cls: type[Rule]) -> type[Rule]:
    """Class decorator adding one Rule instance to the global registry."""
    rule = cls()
    if not rule.id or not rule.name:
        raise ValueError(f"rule {cls.__name__} needs both an id and a name")
    if rule.id in _REGISTRY:
        raise ValueError(f"duplicate rule id {rule.id}")
    _REGISTRY[rule.id] = rule
    return cls


def registered_rules() -> list[Rule]:
    """Every registered rule, in stable id order."""
    _ensure_rules_loaded()
    return [rule for _rule_id, rule in sorted(_REGISTRY.items())]


def _ensure_rules_loaded() -> None:
    # rules.py registers on import; keep the import lazy so the engine
    # can be unit-tested with a synthetic registry as well
    if not _REGISTRY:
        from . import rules  # noqa: F401  (import populates _REGISTRY)


def _select_rules(
    select: Iterable[str] | None, ignore: Iterable[str] | None
) -> list[Rule]:
    rules = registered_rules()
    if select:
        wanted = {token for token in select}
        rules = [r for r in rules if r.id in wanted or r.name in wanted]
    if ignore:
        dropped = {token for token in ignore}
        rules = [r for r in rules if r.id not in dropped and r.name not in dropped]
    return rules


@dataclass
class CheckReport:
    """Outcome of one engine run over a set of files."""

    findings: list[Finding] = field(default_factory=list)
    suppressed: int = 0
    files_checked: int = 0
    parse_errors: list[Finding] = field(default_factory=list)
    rules_run: list[str] = field(default_factory=list)

    @property
    def exit_code(self) -> int:
        return 1 if (self.findings or self.parse_errors) else 0

    def by_rule(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for finding in self.findings:
            counts[finding.rule] = counts.get(finding.rule, 0) + 1
        return dict(sorted(counts.items()))


class _ParseErrorRule(Rule):
    """Synthetic rule id for unparseable files (always a finding)."""

    id = "PARSE"
    name = "parse-error"
    rationale = "a file the engine cannot parse cannot be verified"


_PARSE_RULE = _ParseErrorRule()


class _UnknownSuppressionRule(Rule):
    """Synthetic rule id for ``allow[...]`` naming no registered rule."""

    id = "SUPP"
    name = "unknown-suppression"
    rationale = (
        "a suppression naming no registered rule is stale (or a typo) "
        "and would silently stop suppressing after a rule rename"
    )


_SUPP_RULE = _UnknownSuppressionRule()


def check_source(
    source: str,
    path: Path,
    rules: Iterable[Rule],
    display_path: str | None = None,
) -> tuple[list[Finding], int, list[Finding]]:
    """Run ``rules`` over one in-memory module.

    Returns ``(findings, suppressed_count, parse_errors)`` with
    suppressions already applied — the per-line
    ``# repro: allow[rule-id]`` escape hatch is an engine feature, not
    a per-rule one.
    """
    try:
        ctx = ModuleContext(path, source, display_path=display_path)
    except SyntaxError as exc:
        error = Finding(
            rule=_PARSE_RULE.id,
            name=_PARSE_RULE.name,
            path=display_path if display_path is not None else str(path),
            line=exc.lineno or 1,
            col=(exc.offset or 0) + 1,
            message=f"cannot parse: {exc.msg}",
        )
        return [], 0, [error]
    findings: list[Finding] = []
    suppressed = 0
    for rule in rules:
        for finding in rule.check(ctx):
            allowed = ctx.suppressed_ids(finding.line)
            if "*" in allowed or finding.rule in allowed or finding.name in allowed:
                suppressed += 1
            else:
                findings.append(finding)
    known = {"*", _PARSE_RULE.id, _PARSE_RULE.name}
    for registered in registered_rules():
        known.add(registered.id)
        known.add(registered.name)
    for line, ids in ctx.suppression_lines():
        for token in sorted(ids - known):
            findings.append(Finding(
                rule=_SUPP_RULE.id, name=_SUPP_RULE.name,
                path=ctx.display_path, line=line, col=1,
                message=f"suppression names unknown rule {token!r}",
            ))
    findings.sort(key=Finding.sort_key)
    return findings, suppressed, []


def iter_python_files(paths: Iterable[str | Path]) -> Iterator[Path]:
    """Expand path arguments to a deterministic, deduplicated file list."""
    seen: dict[Path, None] = {}
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            candidates = sorted(
                p for p in path.rglob("*.py")
                if not any(
                    part in _SKIP_DIRS or part.startswith(".")
                    for part in p.relative_to(path).parts[:-1]
                )
            )
        elif path.suffix == ".py":
            candidates = [path]
        else:
            candidates = []
        for candidate in candidates:
            if candidate not in seen:
                seen[candidate] = None
                yield candidate


def run_check(
    paths: Iterable[str | Path],
    select: Iterable[str] | None = None,
    ignore: Iterable[str] | None = None,
) -> CheckReport:
    """Run the engine over files/directories; the ``repro check`` core."""
    rules = _select_rules(select, ignore)
    report = CheckReport(rules_run=[rule.id for rule in rules])
    for file_path in iter_python_files(paths):
        try:
            source = file_path.read_text(encoding="utf-8")
        except OSError as exc:
            report.parse_errors.append(Finding(
                rule=_PARSE_RULE.id, name=_PARSE_RULE.name,
                path=str(file_path), line=1, col=1,
                message=f"cannot read: {exc}",
            ))
            continue
        report.files_checked += 1
        findings, suppressed, errors = check_source(source, file_path, rules)
        report.findings.extend(findings)
        report.suppressed += suppressed
        report.parse_errors.extend(errors)
    report.findings.sort(key=Finding.sort_key)
    report.parse_errors.sort(key=Finding.sort_key)
    return report


# ----------------------------------------------------------------------
# reporters
# ----------------------------------------------------------------------
def render_text(report: CheckReport) -> str:
    """The human reporter: one line per finding plus a tally."""
    out: list[str] = []
    for finding in report.parse_errors + report.findings:
        out.append(
            f"{finding.path}:{finding.line}:{finding.col}: "
            f"{finding.rule}[{finding.name}] {finding.message}"
        )
    tally = (
        f"{len(report.findings)} finding(s) in {report.files_checked} "
        f"file(s), {report.suppressed} suppressed"
    )
    if report.parse_errors:
        tally += f", {len(report.parse_errors)} parse error(s)"
    if report.findings:
        parts = ", ".join(
            f"{rule_id}: {count}"
            for rule_id, count in sorted(report.by_rule().items())
        )
        tally += f"  [{parts}]"
    out.append(tally)
    return "\n".join(out)


def render_json(report: CheckReport) -> str:
    """The machine reporter: stable key order, schema-versioned."""
    payload = {
        "schema": CHECK_SCHEMA_VERSION,
        "files_checked": report.files_checked,
        "rules_run": list(report.rules_run),
        "findings": [f.as_dict() for f in report.findings],
        "parse_errors": [f.as_dict() for f in report.parse_errors],
        "suppressed": report.suppressed,
        "by_rule": report.by_rule(),
        "exit_code": report.exit_code,
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def list_rules_text() -> str:
    """``repro check --list-rules``: the registered rule catalog."""
    out = []
    for rule in registered_rules():
        out.append(f"{rule.id}  {rule.name}")
        out.append(f"      {rule.rationale}")
    return "\n".join(out)
