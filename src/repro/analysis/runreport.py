"""One-shot textual run report.

Combines energy, conflict and gating analyses into the kind of summary
a simulator prints at the end of a run.  Requires the run to have been
traced with at least the ``tx`` and ``gate`` categories.
"""

from __future__ import annotations

from ..harness.runner import RunResult
from ..power.states import ProcState
from ..sim.trace import NullTrace
from .conflicts import conflict_stats
from .gating import gating_summary
from .timelines import state_shares

__all__ = ["run_report"]


def run_report(result: RunResult, trace: NullTrace | None = None) -> str:
    """Render a multi-section report for one run."""
    lines: list[str] = []
    gating_enabled = result.config.gating.enabled
    lines.append(
        f"Run report — {result.workload}[{result.scale}] on "
        f"{result.config.num_procs} processors "
        f"({'gated, W0=' + str(result.config.gating.w0) if gating_enabled else 'ungated'})"
    )
    lines.append(
        f"  parallel section: {result.parallel_time} cycles "
        f"(total run {result.end_cycle})"
    )
    lines.append(
        f"  energy: {result.energy.total:.1f} cycle·Prun, "
        f"avg power {result.energy.average_power:.3f} Prun/proc"
    )
    lines.append(
        f"  transactions: {result.commits} commits, {result.aborts} aborts "
        f"(rate {result.abort_rate:.1%}), {result.wasted_cycles} wasted cycles"
    )

    window = (
        result.machine_result.parallel_start,
        result.machine_result.parallel_end,
    )
    shares = state_shares(result.machine_result.timelines, window)
    mean = {
        state: sum(s[state] for s in shares.values()) / len(shares)
        for state in ProcState
    }
    lines.append(
        "  state shares: "
        + "  ".join(f"{state.name} {mean[state]:.1%}" for state in ProcState)
    )

    if trace is not None and trace.enabled:
        conflicts = conflict_stats(trace)
        lines.append(
            f"  conflicts: {conflicts.conflict_aborts} conflict aborts, "
            f"{conflicts.self_aborts} self-aborts, "
            f"reciprocity {conflicts.reciprocity():.0%}"
        )
        if conflicts.hottest_site is not None:
            lines.append(
                f"  hottest site: {conflicts.hottest_site} "
                f"({conflicts.victims_by_site[conflicts.hottest_site]} aborts)"
            )
        if gating_enabled:
            summary = gating_summary(trace)
            lines.append(
                f"  gating: {summary.episodes} episodes, "
                f"mean window {summary.mean_duration:.1f} cycles "
                f"(max {summary.max_duration}), "
                f"{summary.renewal_fraction():.0%} renewed "
                f"(deepest chain {summary.max_renewals})"
            )
            if summary.turn_on_reasons:
                reasons = ", ".join(
                    f"{k}: {v}" for k, v in sorted(summary.turn_on_reasons.items())
                )
                lines.append(f"  wake-up reasons: {reasons}")
    return "\n".join(lines)
