"""Gating-episode analysis.

Reconstructs, from a trace recording the ``gate`` category, every
gating *episode* — the interval from a Stop-Clock (``gate.off``) to the
wake-up (``gate.on``) on the victim processor — and correlates it with
the directory-side record/renew/turn-on events, yielding the numbers
the paper's narrative is built on: window lengths, renewal-chain
depths, and the reasons victims were turned back on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from ..sim.trace import NullTrace

__all__ = ["GatingEpisode", "extract_episodes", "gating_summary"]


@dataclass
class GatingEpisode:
    """One contiguous gated interval on one processor."""

    proc: int
    start: int
    end: int | None = None
    #: directory that sent the Stop-Clock
    directory: int | None = None
    #: renewals observed (at any directory) while this episode ran
    renewals: int = 0

    @property
    def duration(self) -> int | None:
        return None if self.end is None else self.end - self.start


def extract_episodes(trace: NullTrace) -> list[GatingEpisode]:
    """Pair ``gate.off``/``gate.on`` processor events into episodes."""
    open_by_proc: dict[int, GatingEpisode] = {}
    episodes: list[GatingEpisode] = []
    for event in trace.events("gate"):
        payload = event.payload
        if event.kind == "gate.off":
            proc = payload["proc"]
            episode = GatingEpisode(
                proc=proc, start=event.time, directory=payload.get("directory")
            )
            open_by_proc[proc] = episode
            episodes.append(episode)
        elif event.kind == "gate.on":
            episode = open_by_proc.pop(payload["proc"], None)
            if episode is not None:
                episode.end = event.time
        elif event.kind == "gate.renew":
            episode = open_by_proc.get(payload["victim"])
            if episode is not None:
                episode.renewals += 1
    return episodes


@dataclass
class GatingSummary:
    episodes: int
    completed: int
    total_gated_cycles: int
    mean_duration: float
    max_duration: int
    episodes_with_renewal: int
    max_renewals: int
    turn_on_reasons: dict[str, int] = field(default_factory=dict)

    def renewal_fraction(self) -> float:
        return self.episodes_with_renewal / self.episodes if self.episodes else 0.0


def gating_summary(trace: NullTrace) -> GatingSummary:
    """Aggregate episode statistics plus directory-side reasons."""
    episodes = extract_episodes(trace)
    completed = [e for e in episodes if e.end is not None]
    durations = [e.duration for e in completed]
    reasons: dict[str, int] = {}
    for event in trace.events("gate.turn_on"):
        reason = event.payload.get("reason", "?")
        reasons[reason] = reasons.get(reason, 0) + 1
    return GatingSummary(
        episodes=len(episodes),
        completed=len(completed),
        total_gated_cycles=sum(durations),
        mean_duration=(sum(durations) / len(durations)) if durations else 0.0,
        max_duration=max(durations, default=0),
        episodes_with_renewal=sum(1 for e in episodes if e.renewals),
        max_renewals=max((e.renewals for e in episodes), default=0),
        turn_on_reasons=reasons,
    )


__all__.append("GatingSummary")
