"""Post-run analysis tools.

Turns traces and timelines into the artefacts a systems study needs:

* :mod:`~repro.analysis.conflicts` — who aborted whom (a ``networkx``
  digraph), per-site conflict statistics.
* :mod:`~repro.analysis.gating` — gating-episode extraction (window
  lengths, renewal chains, per-directory behaviour).
* :mod:`~repro.analysis.timelines` — CSV export and state-share
  summaries of the power-state timelines.
* :mod:`~repro.analysis.runreport` — one text report combining all of
  the above for a run.
* :mod:`~repro.analysis.figreport` — paper-style text tables rendered
  from figure-pipeline artifacts (``figures/<name>.json``), consuming
  the shared :mod:`repro.figures.extract` outputs instead of
  re-deriving rows.
* :mod:`~repro.analysis.lint` / :mod:`~repro.analysis.rules` — the
  ``repro check`` static-analysis engine: AST rules that keep the
  tree's determinism, digest-purity, store-discipline, observability
  and gating-protocol invariants machine-checked (imported lazily by
  the CLI; see docs/static-analysis.md).
"""

from .conflicts import ConflictStats, abort_graph, conflict_stats
from .figreport import format_figure, load_figure
from .gating import GatingEpisode, extract_episodes, gating_summary
from .timelines import state_shares, timelines_to_csv
from .runreport import run_report

__all__ = [
    "ConflictStats",
    "abort_graph",
    "conflict_stats",
    "GatingEpisode",
    "extract_episodes",
    "gating_summary",
    "state_shares",
    "timelines_to_csv",
    "format_figure",
    "load_figure",
    "run_report",
]
