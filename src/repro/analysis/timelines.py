"""Timeline export and state-share summaries."""

from __future__ import annotations

import csv
import io
from typing import Sequence

from ..power.states import ProcState
from ..sim.timeline import StateTimeline

__all__ = ["state_shares", "timelines_to_csv"]


def state_shares(
    timelines: Sequence[StateTimeline],
    window: tuple[int, int] | None = None,
) -> dict[int, dict[ProcState, float]]:
    """Per-processor fraction of time in each power state.

    ``window`` defaults to each timeline's full span; pass the parallel
    window to match the paper's measurement interval.
    """
    shares: dict[int, dict[ProcState, float]] = {}
    for proc, timeline in enumerate(timelines):
        lo = window[0] if window else timeline.start
        hi = window[1] if window else timeline.end
        span = max(1, hi - lo)
        durations = timeline.durations(lo, hi)
        shares[proc] = {
            state: durations.get(state, 0) / span for state in ProcState
        }
    return shares


def timelines_to_csv(
    timelines: Sequence[StateTimeline],
    window: tuple[int, int] | None = None,
) -> str:
    """Render all timeline segments as CSV (proc, start, end, state).

    The output loads directly into pandas/gnuplot for the Gantt-style
    activity plots architectural papers use.
    """
    out = io.StringIO()
    writer = csv.writer(out)
    writer.writerow(["proc", "start", "end", "state"])
    for proc, timeline in enumerate(timelines):
        if window is not None:
            segments = timeline.clipped_segments(*window)
        else:
            segments = timeline.segments()
        for seg in segments:
            state = seg.state.value if isinstance(seg.state, ProcState) else seg.state
            writer.writerow([proc, seg.start, seg.end, state])
    return out.getvalue()
