"""Textual rendering of figure-pipeline artifacts.

The counterpart of :mod:`repro.analysis.runreport` for the declarative
figure pipeline: takes the JSON payload a
:class:`~repro.figures.builder.FigureBuilder` produced (or a loaded
``figures/<name>.json`` file) and renders the same tables/matrices the
paper prints — so the terminal view, the benchmark transcripts and the
committed artifacts all derive from ONE extractor output instead of
each re-deriving rows privately.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from ..errors import FigureError
from ..harness.reporting import format_matrix, format_table

__all__ = ["format_figure", "load_figure"]


def load_figure(path: str | Path) -> dict[str, Any]:
    """Load one ``figures/<name>.json`` artifact, with shared errors."""
    path = Path(path)
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError) as exc:
        raise FigureError(f"cannot read figure file {path}: {exc}") from exc
    if not isinstance(payload, dict) or "data" not in payload:
        raise FigureError(f"{path} is not a figure artifact")
    return payload


def _format_rows(payload: dict[str, Any]) -> str:
    data = payload["data"]
    rows = [
        tuple(
            round(value, 4) if isinstance(value, float) else value
            for value in row
        )
        for row in data["rows"]
    ]
    return format_table(list(data["headers"]), rows, title=payload["title"])


def _format_fig7(payload: dict[str, Any]) -> str:
    data = payload["data"]
    blocks = []
    for app in data["apps"]:
        by_procs = {
            int(procs): {int(w0): value for w0, value in curve.items()}
            for procs, curve in data["speedup"][app].items()
        }
        blocks.append(format_matrix(
            sorted(by_procs),
            list(data["w0_values"]),
            by_procs,
            corner="Np \\ W0",
            title=f"{payload['title']} — {app}",
        ))
    return "\n\n".join(blocks)


def _format_fig3(payload: dict[str, Any]) -> str:
    data = payload["data"]
    values = {
        f"{size}KB": {
            int(g): power for g, power in data["normalized_power"][str(size)].items()
        }
        for size in data["cache_sizes_kb"]
    }
    table = format_matrix(
        [f"{size}KB" for size in data["cache_sizes_kb"]],
        list(data["granularities_bytes"]),
        values,
        corner="cache \\ B/RW-bit",
        title=payload["title"],
    )
    return (
        f"{table}\n"
        f"full TCC data-cache factor: {data['total_power_factor']:.3f}x"
    )


def _format_scalars(payload: dict[str, Any]) -> str:
    rows = [
        (key, round(value, 4) if isinstance(value, float) else value)
        for key, value in payload["data"].items()
    ]
    return format_table(["metric", "value"], rows, title=payload["title"])


def format_figure(payload: dict[str, Any]) -> str:
    """Render any figure artifact payload as the paper-style text table.

    Dispatches through the same shape classifier the CSV/PNG renderers
    use (:func:`repro.figures.render.data_shape`), so all three stay in
    sync when a new data shape is introduced.
    """
    from ..figures.render import data_shape

    shape = data_shape(payload.get("data"))
    if shape == "rows":
        return _format_rows(payload)
    if shape == "matrix":
        return _format_fig7(payload)
    if shape == "curves":
        return _format_fig3(payload)
    if shape == "scalars":
        return _format_scalars(payload)
    raise FigureError(
        f"figure {payload.get('name')!r} has no text representation"
    )
