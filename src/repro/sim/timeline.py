"""Per-processor state timelines.

The energy model of the paper (Section IV) is a pure function of *how
long each processor spent in each power state*.  The simulator therefore
records, for every processor, the exact sequence of state changes as
``(cycle, state)`` change-points; the power layer later integrates these
against Table I power factors (directly, and through the paper's
interval formulation Eqs. (1)–(5) — both must agree).

States are deliberately kept as plain strings/enums owned by the caller;
the timeline is a generic change-point recorder so it can be unit- and
property-tested independently of the HTM.

Recording is run-length by construction — only *changes* are stored,
as parallel ``times``/``states`` lists — and materialisation is lazy:
:meth:`StateTimeline.as_arrays` exposes the change-points as cached
numpy arrays (times plus small-integer state codes) once the timeline
is finalized, which is what the energy layer's interval sweep consumes
directly instead of per-segment Python objects
(:mod:`repro.power.energy`; measured by ``repro bench bench_timeline``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generic, Hashable, Iterator, Sequence, TypeVar

import numpy as np

from ..errors import SimulationError

__all__ = ["Segment", "StateTimeline"]

S = TypeVar("S", bound=Hashable)


@dataclass(frozen=True)
class Segment(Generic[S]):
    """A maximal interval ``[start, end)`` during which ``state`` held."""

    start: int
    end: int
    state: S

    @property
    def duration(self) -> int:
        return self.end - self.start


class StateTimeline(Generic[S]):
    """Records state change-points for one entity (one processor).

    Changes must be recorded in non-decreasing time order.  Recording
    the same state again is a no-op (segments stay maximal), and several
    changes at the same cycle collapse to the last one (zero-length
    segments are dropped at finalisation).
    """

    __slots__ = ("_times", "_states", "_finalized_end", "_arrays")

    def __init__(self, initial_state: S, start: int = 0) -> None:
        self._times: list[int] = [start]
        self._states: list[S] = [initial_state]
        self._finalized_end: int | None = None
        #: lazy (times, codes, states) materialisation; valid only after
        #: finalize() since the timeline is immutable from then on
        self._arrays: tuple[np.ndarray, np.ndarray, list[S]] | None = None

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def set_state(self, time: int, state: S) -> None:
        """Record that the entity is in ``state`` from ``time`` onwards."""
        if self._finalized_end is not None:
            raise SimulationError("cannot record into a finalized timeline")
        last_time = self._times[-1]
        if time < last_time:
            raise SimulationError(
                f"timeline updates must be time-ordered ({time} < {last_time})"
            )
        if state == self._states[-1]:
            return
        if time == last_time:
            # Same-cycle re-decision: the later state wins.
            self._states[-1] = state
            # Collapse with the previous segment if it had the same state.
            if len(self._states) >= 2 and self._states[-2] == state:
                self._times.pop()
                self._states.pop()
            return
        self._times.append(time)
        self._states.append(state)

    @property
    def current_state(self) -> S:
        return self._states[-1]

    def finalize(self, end: int) -> None:
        """Close the timeline at cycle ``end`` (idempotent)."""
        if self._finalized_end is not None:
            if self._finalized_end != end:
                raise SimulationError(
                    f"timeline already finalized at {self._finalized_end}, "
                    f"cannot re-finalize at {end}"
                )
            return
        if end < self._times[-1]:
            raise SimulationError(
                f"finalize({end}) precedes last change at {self._times[-1]}"
            )
        self._finalized_end = end

    @property
    def finalized(self) -> bool:
        return self._finalized_end is not None

    @property
    def end(self) -> int:
        if self._finalized_end is None:
            raise SimulationError("timeline not finalized")
        return self._finalized_end

    @property
    def start(self) -> int:
        return self._times[0]

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def as_arrays(self) -> tuple[np.ndarray, np.ndarray, list[S]]:
        """Change-points as numpy arrays (lazy; requires finalization).

        Returns ``(times, codes, states)`` where ``times`` is an
        ``int64`` array of length ``n + 1`` — the ``n`` change-point
        cycles followed by the finalized end — and ``codes`` is an
        ``int64`` array of length ``n`` giving, per segment, an index
        into ``states`` (the distinct states in first-appearance
        order).  Segment ``j`` thus spans ``[times[j], times[j + 1])``
        in state ``states[codes[j]]``.

        The tuple is computed once and cached: a finalized timeline is
        immutable, and the energy layer sweeps it several times (direct
        integration plus the interval formulation).
        """
        arrays = self._arrays
        if arrays is None:
            end = self.end  # raises if not finalized
            index: dict[S, int] = {}
            states: list[S] = []
            codes = []
            for s in self._states:
                i = index.get(s)
                if i is None:
                    i = index[s] = len(states)
                    states.append(s)
                codes.append(i)
            times = np.empty(len(self._times) + 1, dtype=np.int64)
            times[:-1] = self._times
            times[-1] = end
            arrays = self._arrays = (
                times, np.asarray(codes, dtype=np.int64), states
            )
        return arrays

    def segments(self) -> list[Segment[S]]:
        """Maximal constant-state segments tiling ``[start, end)``."""
        end = self.end
        out: list[Segment[S]] = []
        for i, (t, s) in enumerate(zip(self._times, self._states)):
            seg_end = self._times[i + 1] if i + 1 < len(self._times) else end
            if seg_end > t:
                out.append(Segment(t, seg_end, s))
        return out

    def clipped_segments(self, lo: int, hi: int) -> list[Segment[S]]:
        """Segments intersected with the window ``[lo, hi)``.

        The energy equations are evaluated over the *parallel section*
        only (first transaction start to last transaction end), so the
        power layer clips every timeline to that window.
        """
        if hi < lo:
            raise SimulationError(f"invalid clip window [{lo}, {hi})")
        out: list[Segment[S]] = []
        for seg in self.segments():
            start = max(seg.start, lo)
            end = min(seg.end, hi)
            if end > start:
                out.append(Segment(start, end, seg.state))
        return out

    def state_at(self, time: int) -> S:
        """State in effect at cycle ``time`` (segments are [start, end))."""
        if time < self._times[0]:
            raise SimulationError(f"t={time} precedes timeline start")
        # Binary search over change-points.
        lo, hi = 0, len(self._times) - 1
        while lo < hi:
            mid = (lo + hi + 1) // 2
            if self._times[mid] <= time:
                lo = mid
            else:
                hi = mid - 1
        return self._states[lo]

    def durations(self, lo: int | None = None, hi: int | None = None) -> dict[S, int]:
        """Total cycles per state, optionally restricted to ``[lo, hi)``."""
        if lo is None:
            lo = self.start
        if hi is None:
            hi = self.end
        totals: dict[S, int] = {}
        for seg in self.clipped_segments(lo, hi):
            totals[seg.state] = totals.get(seg.state, 0) + seg.duration
        return totals

    def change_points(self) -> Iterator[tuple[int, S]]:
        """Iterate raw ``(time, state)`` change-points (for interval sweeps)."""
        return iter(zip(self._times, self._states))

    def __len__(self) -> int:
        return len(self._times)


def verify_tiling(timelines: Sequence[StateTimeline], lo: int, hi: int) -> None:
    """Assert that every timeline fully tiles ``[lo, hi)`` without gaps.

    Invariant 6 of DESIGN.md.  Called by the harness after each run when
    self-checks are enabled; also exercised directly by tests.

    The change-point representation makes interior gaps structurally
    impossible — consecutive clipped segments share a boundary by
    construction — so the invariant reduces to a constant-time coverage
    check per timeline: the recording must begin at or before ``lo``
    and be finalized at or after ``hi``.
    """
    if hi < lo:
        raise SimulationError(f"invalid clip window [{lo}, {hi})")
    if hi == lo:
        # Zero-width window: nothing to cover, but still insist the
        # timelines are finalized (matching the historical behaviour of
        # walking their clipped segments).
        for tl in timelines:
            tl.end  # noqa: B018 - raises on an unfinalized timeline
        return
    for idx, tl in enumerate(timelines):
        start, end = tl.start, tl.end
        if start >= hi or end <= lo:
            raise SimulationError(f"timeline {idx} empty over [{lo}, {hi})")
        if start > lo or end < hi:
            raise SimulationError(
                f"timeline {idx} does not cover [{lo}, {hi}): "
                f"covers [{max(start, lo)}, {min(end, hi)})"
            )


__all__.append("verify_tiling")
