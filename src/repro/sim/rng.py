"""Deterministic random-number plumbing.

Every stochastic choice in the simulator (workload data, access
patterns) flows from one root seed through ``numpy``'s SeedSequence
spawning discipline, so:

* the same ``SystemConfig.seed`` reproduces the identical run, and
* per-thread streams are independent — thread 3's draws do not change
  when thread 2 draws more (crucial for comparing 4- vs 8-core runs of
  "the same" workload).
"""

from __future__ import annotations

import numpy as np

__all__ = ["derive_seed", "spawn_rngs", "root_rng"]


def derive_seed(root_seed: int, *context: object) -> int:
    """Derive a stable 63-bit child seed from a root seed and context.

    The context (workload name, thread id, phase name, ...) is hashed
    with a simple FNV-1a over its ``repr`` — stable across processes
    (unlike ``hash()`` which is salted for strings).
    """
    acc = 0xCBF29CE484222325
    for item in (root_seed, *context):
        for byte in repr(item).encode():
            acc ^= byte
            acc = (acc * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
    return acc & 0x7FFFFFFFFFFFFFFF


def root_rng(seed: int) -> np.random.Generator:
    """The run-level generator."""
    return np.random.default_rng(seed)


def spawn_rngs(seed: int, count: int) -> list[np.random.Generator]:
    """``count`` independent generators derived from ``seed``.

    Uses :class:`numpy.random.SeedSequence` spawning, the documented
    mechanism for parallel-stream independence.
    """
    seq = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in seq.spawn(count)]
