"""Deterministic random-number plumbing.

Every stochastic choice in the simulator (workload data, access
patterns) flows from one root seed through ``numpy``'s SeedSequence
spawning discipline, so:

* the same ``SystemConfig.seed`` reproduces the identical run, and
* per-thread streams are independent — thread 3's draws do not change
  when thread 2 draws more (crucial for comparing 4- vs 8-core runs of
  "the same" workload).
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "derive_seed", "seed_prefix", "derive_seed_from", "spawn_rngs", "root_rng"
]

_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3
_MASK64 = 0xFFFFFFFFFFFFFFFF


def _fnv1a_update(acc: int, context: tuple) -> int:
    for item in context:
        for byte in repr(item).encode():
            acc ^= byte
            acc = (acc * _FNV_PRIME) & _MASK64
    return acc


def derive_seed(root_seed: int, *context: object) -> int:
    """Derive a stable 63-bit child seed from a root seed and context.

    The context (workload name, thread id, phase name, ...) is hashed
    with a simple FNV-1a over its ``repr`` — stable across processes
    (unlike ``hash()`` which is salted for strings).
    """
    return _fnv1a_update(_FNV_OFFSET, (root_seed, *context)) & 0x7FFFFFFFFFFFFFFF


def seed_prefix(root_seed: int, *context: object) -> int:
    """FNV-1a accumulator state after hashing a fixed context prefix.

    FNV-1a is a sequential byte fold, so a caller that derives many
    seeds sharing a prefix (e.g. one per transaction index) can hash
    the prefix once and finish each derivation with
    :func:`derive_seed_from`.  By construction,
    ``derive_seed_from(seed_prefix(s, a), b) == derive_seed(s, a, b)``.
    """
    return _fnv1a_update(_FNV_OFFSET, (root_seed, *context))


def derive_seed_from(prefix: int, *context: object) -> int:
    """Finish a :func:`seed_prefix` derivation with the varying suffix."""
    return _fnv1a_update(prefix, context) & 0x7FFFFFFFFFFFFFFF


def root_rng(seed: int) -> np.random.Generator:
    """The run-level generator."""
    return np.random.default_rng(seed)


def spawn_rngs(seed: int, count: int) -> list[np.random.Generator]:
    """``count`` independent generators derived from ``seed``.

    Uses :class:`numpy.random.SeedSequence` spawning, the documented
    mechanism for parallel-stream independence.
    """
    seq = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in seq.spawn(count)]
