"""Discrete-event simulation substrate (system S1 in DESIGN.md).

This subpackage is paper-agnostic: it provides the deterministic event
queue (:mod:`~repro.sim.engine`), per-processor state timelines used by
the energy model (:mod:`~repro.sim.timeline`), statistic counters
(:mod:`~repro.sim.stats`), deterministic RNG plumbing
(:mod:`~repro.sim.rng`) and optional event tracing
(:mod:`~repro.sim.trace`).
"""

from .engine import Engine, Event
from .timeline import StateTimeline, Segment
from .stats import Counter, Histogram, StatsRegistry
from .rng import spawn_rngs, derive_seed
from .trace import TraceRecorder, TraceEvent, NullTrace

__all__ = [
    "Engine",
    "Event",
    "StateTimeline",
    "Segment",
    "Counter",
    "Histogram",
    "StatsRegistry",
    "spawn_rngs",
    "derive_seed",
    "TraceRecorder",
    "TraceEvent",
    "NullTrace",
]
