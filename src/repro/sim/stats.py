"""Lightweight statistics primitives used across the simulator.

``Counter`` and ``Histogram`` are intentionally tiny — the hot path of
the simulator increments counters millions of times, so they avoid any
indirection beyond an attribute add.  ``StatsRegistry`` groups them
under dotted names so run results can be serialized/merged uniformly.

Handle binding (the hot-path contract)
--------------------------------------
Components resolve their counters **once, at construction**::

    self._c_hits = stats.counter("proc0.cache.hits")   # wiring time
    ...
    self._c_hits.add()                                 # hot path

``StatsRegistry.bump`` (name-keyed, builds the dotted string per call)
is kept for cold paths and tests, but per-access f-string keys are a
measured hot-path cost (see ``docs/performance.md``) and must not be
reintroduced inside the simulation inner loop.

Counts versus sums
------------------
A ``Counter`` is a plain accumulator; the registry does not distinguish
*event counts* (``tx.commits`` — one ``add()`` per occurrence) from
*cycle/quantity sums* (``tx.wasted_cycles``, ``bus.busy_cycles`` — an
``add(amount)`` per occurrence).  By convention every sum-semantics
counter is paired with an event count in the same namespace (e.g.
``tx.aborts.total`` counts the aborts whose cycles ``tx.wasted_cycles``
sums), so reporting can always distinguish a rate from a total.  New
sum-semantics counters must follow the pairing convention and say
"cycles"/"sum" in their name.

Serialization keeps the pre-registration invisible: a counter appears
in :meth:`StatsRegistry.counters` only once it has accumulated a
nonzero total, so constructing handles eagerly does not change the
serialized result of a run.
"""

from __future__ import annotations

import math
from typing import Iterable

import numpy as np

__all__ = ["Counter", "Histogram", "StatsRegistry"]


class Counter:
    """A named monotonic accumulator (an event count or a quantity sum)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str, value: int = 0) -> None:
        self.name = name
        self.value = value

    def add(self, amount: int = 1) -> None:
        self.value += amount

    def __repr__(self) -> str:
        return f"Counter({self.name}={self.value})"


class Histogram:
    """A value histogram with exact moments and power-of-two buckets.

    Stores count/sum/min/max/sum-of-squares exactly plus a log2-bucketed
    distribution — enough for transaction-latency and gating-window
    reporting without keeping every sample.

    Recording is *deferred*: ``record`` only appends to a pending list
    (one list append — the simulator records on commit/abort/flush hot
    paths), and the moments fold in on first read.  Readers always go
    through the accessor properties, so the folding is unobservable;
    the pending buffer costs one machine word per sample until the run
    ends and is dropped at fold time.
    """

    __slots__ = (
        "name", "_pending", "_count", "_total", "_min", "_max",
        "_sumsq", "_buckets",
    )

    def __init__(self, name: str) -> None:
        self.name = name
        self._pending: list[int] = []
        self._count = 0
        self._total = 0
        self._min: int | None = None
        self._max: int | None = None
        self._sumsq = 0
        self._buckets: dict[int, int] = {}

    def record(self, value: int) -> None:
        self._pending.append(value)

    def reset(self) -> None:
        """Discard all samples, returning to the just-constructed state."""
        self._pending.clear()
        self._count = 0
        self._total = 0
        self._min = None
        self._max = None
        self._sumsq = 0
        self._buckets.clear()

    def record_many(self, values: Iterable[int]) -> None:
        self._pending.extend(values)

    def _fold(self) -> None:
        pending = self._pending
        if not pending:
            return
        self._pending = []
        count = self._count
        total = self._total
        sumsq = self._sumsq
        mn = self._min
        mx = self._max
        buckets = self._buckets
        for value in pending:
            count += 1
            total += value
            sumsq += value * value
            if mn is None or value < mn:
                mn = value
            if mx is None or value > mx:
                mx = value
            bucket = value.bit_length() if value > 0 else 0
            buckets[bucket] = buckets.get(bucket, 0) + 1
        self._count = count
        self._total = total
        self._sumsq = sumsq
        self._min = mn
        self._max = mx

    @property
    def count(self) -> int:
        self._fold()
        return self._count

    @property
    def total(self) -> int:
        self._fold()
        return self._total

    @property
    def min(self) -> int | None:
        self._fold()
        return self._min

    @property
    def max(self) -> int | None:
        self._fold()
        return self._max

    @property
    def buckets(self) -> dict[int, int]:
        self._fold()
        return self._buckets

    @property
    def mean(self) -> float:
        self._fold()
        return self._total / self._count if self._count else 0.0

    @property
    def variance(self) -> float:
        self._fold()
        if self._count < 2:
            return 0.0
        m = self._total / self._count
        return max(0.0, self._sumsq / self._count - m * m)

    @property
    def stddev(self) -> float:
        return math.sqrt(self.variance)

    def __repr__(self) -> str:
        return (
            f"Histogram({self.name}: n={self.count} mean={self.mean:.1f} "
            f"min={self.min} max={self.max})"
        )


class StatsRegistry:
    """A namespace of counters and histograms keyed by dotted names."""

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._histograms: dict[str, Histogram] = {}
        #: name-sorted (name, handle) pairs, rebuilt lazily after a new
        #: counter registers.  Serialization is per-member work inside a
        #: replicate pack (the registry survives Machine.reset), so the
        #: sort is paid once per pack rather than once per seed.
        self._order: list[tuple[str, Counter]] | None = None

    def counter(self, name: str) -> Counter:
        """Resolve (creating if needed) the counter handle for ``name``.

        Hot-path consumers call this once at construction and keep the
        returned object; the same name always resolves to the same
        handle, so components sharing a counter share its total.
        """
        c = self._counters.get(name)
        if c is None:
            c = self._counters[name] = Counter(name)
            self._order = None
        return c

    def histogram(self, name: str) -> Histogram:
        h = self._histograms.get(name)
        if h is None:
            h = self._histograms[name] = Histogram(name)
        return h

    def reset(self) -> None:
        """Zero every counter and histogram, keeping all handles bound.

        The machine-reset path: components re-resolve nothing, so the
        handles they bound at construction must stay live.  A reset
        registry serializes identically to a fresh one (zero-valued
        counters and empty histograms are filtered out), but any
        *previous* result still holding this registry now reads zeros —
        callers must copy ``counters()`` out before resetting.
        """
        for c in self._counters.values():
            c.value = 0
        for h in self._histograms.values():
            h.reset()

    def bump(self, name: str, amount: int = 1) -> None:
        """Shorthand for ``counter(name).add(amount)`` (cold paths only)."""
        self.counter(name).add(amount)

    def get(self, name: str, default: int = 0) -> int:
        c = self._counters.get(name)
        return c.value if c is not None else default

    def counters(self) -> dict[str, int]:
        """Nonzero counter totals, sorted by dotted name.

        Zero-valued counters are omitted so that eagerly binding a
        handle (which registers the name) is indistinguishable, in
        serialized results, from never having touched the counter —
        the pre-handle-binding encoding emitted exactly the counters
        that had been bumped.

        Finalization is one numpy pass over the cached name-sorted
        handle order: gather values, select the nonzero indices, build
        the dict.  Output is byte-identical to the historical sorted
        dict comprehension (same keys, same order, plain ints).
        """
        order = self._order
        if order is None:
            order = self._order = sorted(self._counters.items())
        values = np.fromiter(
            (c.value for _, c in order), dtype=np.int64, count=len(order)
        )
        return {
            order[i][0]: v
            for i, v in zip(np.nonzero(values)[0].tolist(), values[
                values != 0].tolist())
        }

    def histograms(self) -> dict[str, Histogram]:
        """Histograms holding at least one sample, sorted by name.

        Empty histograms are omitted for the same reason zero-valued
        counters are: eager handle binding must not change output.
        """
        return {
            k: h for k, h in sorted(self._histograms.items()) if h.count
        }

    def as_dict(self) -> dict[str, object]:
        """Flatten to plain data (for reports / EXPERIMENTS.md tables)."""
        out: dict[str, object] = dict(self.counters())
        for name, h in self.histograms().items():
            out[f"{name}.count"] = h.count
            out[f"{name}.mean"] = h.mean
            out[f"{name}.min"] = h.min
            out[f"{name}.max"] = h.max
        return out
