"""Optional event tracing.

Tracing exists for debugging protocol interactions (who aborted whom,
when a gating timer was renewed, ...) and for the protocol-invariant
tests, which assert properties over the recorded event stream rather
than instrumenting the models themselves.

The hot path calls ``trace.emit(...)`` unconditionally; ``NullTrace``
makes that a no-op attribute lookup + call, which profiling shows is
cheap enough at our event rates (~10^5–10^6 events per run).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator

__all__ = ["TraceEvent", "TraceRecorder", "NullTrace"]


@dataclass(frozen=True)
class TraceEvent:
    """One traced occurrence.

    ``kind`` is a dotted category (``"tx.abort"``, ``"gate.on"``, ...);
    ``payload`` is free-form keyword data captured at emission.
    """

    time: int
    kind: str
    payload: dict[str, Any]

    def __getattr__(self, item: str) -> Any:
        try:
            return self.payload[item]
        except KeyError as exc:  # pragma: no cover - defensive
            raise AttributeError(item) from exc


class NullTrace:
    """Discards everything (the default)."""

    enabled = False

    def emit(self, time: int, kind: str, **payload: Any) -> None:
        pass

    def events(self, kind: str | None = None) -> list[TraceEvent]:
        return []


class TraceRecorder(NullTrace):
    """Records every emitted event in order.

    ``kinds`` restricts recording to the given categories (prefix
    match on the dotted name), keeping memory bounded in long runs.
    """

    enabled = True

    def __init__(self, kinds: tuple[str, ...] | None = None) -> None:
        self._events: list[TraceEvent] = []
        self._kinds = kinds

    def emit(self, time: int, kind: str, **payload: Any) -> None:
        if self._kinds is not None and not any(
            kind == k or kind.startswith(k + ".") for k in self._kinds
        ):
            return
        self._events.append(TraceEvent(time, kind, payload))

    def events(self, kind: str | None = None) -> list[TraceEvent]:
        """All events, optionally filtered by (prefix of) category."""
        if kind is None:
            return list(self._events)
        return [
            e
            for e in self._events
            if e.kind == kind or e.kind.startswith(kind + ".")
        ]

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._events)

    def __len__(self) -> int:
        return len(self._events)
