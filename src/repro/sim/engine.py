"""Deterministic discrete-event simulation engine.

The engine is a classic calendar-queue kernel: callbacks are scheduled
at absolute cycle times and executed in ``(time, sequence)`` order, so
two events scheduled for the same cycle fire in scheduling order.  This
total order is what makes whole simulations bit-reproducible — given the
same seed and configuration, every run produces the identical event
history (tested in ``tests/test_determinism.py``).

Design notes
------------
* Cancellation is *lazy*: :meth:`Event.cancel` flips a flag and the
  event is discarded when popped.  This keeps ``heapq`` usage O(log n)
  and avoids the O(n) cost of removing from the middle of a heap.  The
  abort path of the HTM relies on this (a processor whose in-flight
  memory operation is aborted simply cancels its completion event).
* The engine never advances time backwards; scheduling in the past is a
  :class:`~repro.errors.SimulationError` (it would silently reorder
  causality).
* ``run()`` drains the queue.  An optional ``until`` bound and a
  ``max_events`` safety valve guard against runaway simulations; the
  HTM layer installs a deadlock watchdog on top (see
  :mod:`repro.htm.machine`).

Hot-path engineering (PR 3; measured by ``repro bench bench_engine``)
---------------------------------------------------------------------
Every simulated cycle pays the dispatch loop, so it is built around
three constant-factor decisions:

* :class:`Event` **is** its own heap entry — a ``list`` subclass laid
  out as ``[time, seq, fn, args]``.  ``heapq`` then orders events with
  C-level list comparison (which never looks past the unique ``seq``),
  instead of calling a Python-level ``__lt__`` per sift step.
* A bounded **event reuse pool**: executed and dead-popped entries are
  reinitialised in place by the next ``schedule`` instead of being
  reallocated.  The safety contract is that an :class:`Event` handle
  must not be touched after it has fired — every holder in this
  codebase clears its reference in (or before) the fired callback, and
  a cancelled handle is dropped by its holder at cancel time.
* **Zero-arg fast path**: events scheduled without arguments store
  ``None`` and are invoked as ``fn()``, skipping tuple unpacking.

``heappush``/``heappop`` are bound once at import and passed as default
arguments into the hot methods, avoiding a global lookup per event.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Any, Callable

from ..errors import SimulationError

__all__ = ["Event", "Engine"]

#: Upper bound on recycled Event objects kept per engine.  Sized to the
#: in-flight event population of a 16-processor machine with slack; the
#: pool exists to stop steady-state allocation, not to cache bursts.
_POOL_MAX = 512


class Event(list):
    """A scheduled callback.  Returned by :meth:`Engine.schedule`.

    The instance is simultaneously the caller-facing handle and the
    heap entry ``[time, seq, fn, args]``; instances order by
    ``(time, seq)`` through plain list comparison, which gives the
    deterministic execution order described in the module docstring.
    ``args`` is ``None`` for zero-argument callbacks (the fast path).
    """

    __slots__ = ("cancelled",)

    def __init__(self, time: int, seq: int, fn: Callable[..., Any],
                 args: tuple | None):
        list.__init__(self, (time, seq, fn, args))
        self.cancelled = False

    # Named access for callers and debugging; hot code indexes directly.
    @property
    def time(self) -> int:
        return self[0]

    @property
    def seq(self) -> int:
        return self[1]

    @property
    def fn(self) -> Callable[..., Any]:
        return self[2]

    @property
    def args(self) -> tuple:
        return self[3] if self[3] is not None else ()

    def cancel(self) -> None:
        """Mark the event dead; it will be skipped when popped.

        Must only be called while the event is still pending.  Once it
        has fired (or been dead-popped) the handle is expired: the
        engine marks it cancelled and may recycle the object for a
        future ``schedule`` call, so a late ``cancel()`` is a no-op at
        best and, after reuse, would silently kill an unrelated event.
        Holders must drop their reference in (or before) the fired
        callback — see the module docstring's pool contract.
        """
        self.cancelled = True

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = " cancelled" if self.cancelled else ""
        name = getattr(self[2], "__qualname__", repr(self[2]))
        return f"<Event t={self[0]} seq={self[1]} {name}{state}>"


class Engine:
    """The event queue and simulation clock.

    The current simulation time is :attr:`now` (integer cycles).  All
    model components share one engine instance; none of them keep their
    own notion of time.
    """

    def __init__(self) -> None:
        self.now: int = 0
        self._queue: list[Event] = []
        self._seq: int = 0
        self._pool: list[Event] = []
        self.events_executed: int = 0

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def schedule(
        self, delay: int, fn: Callable[..., Any], *args: Any, _push=heappush
    ) -> Event:
        """Schedule ``fn(*args)`` to run ``delay`` cycles from now."""
        # schedule() is the hottest entry point (every memory access,
        # bus hop and continuation passes through it), so the body of
        # schedule_at is inlined here rather than delegated to.
        if delay < 0:
            raise SimulationError(
                f"cannot schedule into the past (delay={delay} at t={self.now})"
            )
        time = self.now + delay
        seq = self._seq
        self._seq = seq + 1
        pool = self._pool
        if pool:
            event = pool.pop()
            event[0] = time
            event[1] = seq
            event[2] = fn
            event[3] = args or None
            event.cancelled = False
        else:
            event = Event(time, seq, fn, args or None)
        _push(self._queue, event)
        return event

    def schedule_at(
        self, time: int, fn: Callable[..., Any], *args: Any, _push=heappush
    ) -> Event:
        """Schedule ``fn(*args)`` at absolute cycle ``time``."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule at t={time}, current time is {self.now}"
            )
        seq = self._seq
        self._seq = seq + 1
        pool = self._pool
        if pool:
            event = pool.pop()
            event[0] = time
            event[1] = seq
            event[2] = fn
            event[3] = args or None
            event.cancelled = False
        else:
            event = Event(time, seq, fn, args or None)
        _push(self._queue, event)
        return event

    def reset(self) -> None:
        """Return the engine to its just-constructed state.

        Pending events are dropped (marked cancelled and stripped of
        their callback/argument references, honouring the expired-handle
        contract) and recycled into the reuse pool, which is kept warm
        across resets — pooled entries are inert until the next
        ``schedule`` reinitialises them, so a reset engine schedules and
        drains exactly like a fresh one.  Part of the
        :meth:`repro.htm.machine.Machine.reset` pristine-state contract.
        """
        pool = self._pool
        for event in self._queue:
            event.cancelled = True
            event[2] = event[3] = None
            if len(pool) < _POOL_MAX:
                pool.append(event)
        self._queue.clear()
        self.now = 0
        self._seq = 0
        self.events_executed = 0

    def _recycle(self, event: Event) -> None:
        """Return a finished heap entry to the reuse pool.

        The expired handle reads as cancelled so a (contract-breaking)
        late ``cancel()`` in the fire-to-reuse window is a no-op.
        """
        if len(self._pool) < _POOL_MAX:
            event.cancelled = True
            event[2] = None  # release the callback and its closure
            event[3] = None  # release argument references
            self._pool.append(event)

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def step(self, _pop=heappop) -> bool:
        """Execute the next live event.  Returns False when queue is empty."""
        queue = self._queue
        pool = self._pool
        while queue:
            event = _pop(queue)
            if event.cancelled:
                # Cold branch: dead-popping is rare, a method call is fine.
                self._recycle(event)
                continue
            self.now = event[0]
            self.events_executed += 1
            fn = event[2]
            args = event[3]
            if args is None:
                fn()
            else:
                fn(*args)
            # _recycle() inlined — this runs once per executed event.
            if len(pool) < _POOL_MAX:
                event.cancelled = True
                event[2] = event[3] = None
                pool.append(event)
            return True
        return False

    def run(
        self,
        until: int | None = None,
        max_events: int | None = None,
        _pop=heappop,
    ) -> None:
        """Drain the event queue.

        Parameters
        ----------
        until:
            Stop once the next event lies strictly beyond this cycle
            (the clock is left at the last executed event's time).
        max_events:
            Abort with :class:`SimulationError` after this many events —
            a safety valve against protocol livelock bugs.
        """
        queue = self._queue
        if until is None and max_events is None:
            # Unbounded drain: inline the dispatch loop (no per-event
            # method call, no head peeking).
            pool = self._pool
            executed = 0
            try:
                while queue:
                    event = _pop(queue)
                    if event.cancelled:
                        # Cold branch: dead-popping is rare.
                        self._recycle(event)
                        continue
                    self.now = event[0]
                    executed += 1
                    fn = event[2]
                    args = event[3]
                    if args is None:
                        fn()
                    else:
                        fn(*args)
                    # _recycle() inlined — once per executed event.
                    if len(pool) < _POOL_MAX:
                        event.cancelled = True
                        event[2] = event[3] = None
                        pool.append(event)
            finally:
                self.events_executed += executed
            return

        executed = 0
        while queue:
            # Peek past cancelled heads without executing them.
            head = queue[0]
            if head.cancelled:
                self._recycle(_pop(queue))
                continue
            if until is not None and head[0] > until:
                return
            if not self.step():  # pragma: no cover - guarded by `while queue`
                return
            executed += 1
            if max_events is not None and executed >= max_events:
                raise SimulationError(
                    f"event budget exhausted after {executed} events at "
                    f"t={self.now}; possible livelock"
                )

    def pending(self) -> int:
        """Number of live (non-cancelled) events still queued."""
        return sum(1 for e in self._queue if not e.cancelled)

    def next_event_time(self) -> int | None:
        """Time of the earliest live event, or ``None`` if drained."""
        for event in sorted(self._queue):
            if not event.cancelled:
                return event[0]
        return None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Engine t={self.now} pending={self.pending()}>"
