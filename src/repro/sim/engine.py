"""Deterministic discrete-event simulation engine.

The engine is a classic calendar-queue kernel: callbacks are scheduled
at absolute cycle times and executed in ``(time, sequence)`` order, so
two events scheduled for the same cycle fire in scheduling order.  This
total order is what makes whole simulations bit-reproducible — given the
same seed and configuration, every run produces the identical event
history (tested in ``tests/test_determinism.py``).

Design notes
------------
* Cancellation is *lazy*: :meth:`Event.cancel` flips a flag and the
  event is discarded when popped.  This keeps ``heapq`` usage O(log n)
  and avoids the O(n) cost of removing from the middle of a heap.  The
  abort path of the HTM relies on this (a processor whose in-flight
  memory operation is aborted simply cancels its completion event).
* The engine never advances time backwards; scheduling in the past is a
  :class:`~repro.errors.SimulationError` (it would silently reorder
  causality).
* ``run()`` drains the queue.  An optional ``until`` bound and a
  ``max_events`` safety valve guard against runaway simulations; the
  HTM layer installs a deadlock watchdog on top (see
  :mod:`repro.htm.machine`).
"""

from __future__ import annotations

import heapq
from typing import Any, Callable

from ..errors import SimulationError

__all__ = ["Event", "Engine"]


class Event:
    """A scheduled callback.  Returned by :meth:`Engine.schedule`.

    Instances order by ``(time, seq)`` which gives the deterministic
    execution order described in the module docstring.
    """

    __slots__ = ("time", "seq", "fn", "args", "cancelled")

    def __init__(self, time: int, seq: int, fn: Callable[..., Any], args: tuple):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Mark the event dead; it will be skipped when popped."""
        self.cancelled = True

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = " cancelled" if self.cancelled else ""
        name = getattr(self.fn, "__qualname__", repr(self.fn))
        return f"<Event t={self.time} seq={self.seq} {name}{state}>"


class Engine:
    """The event queue and simulation clock.

    The current simulation time is :attr:`now` (integer cycles).  All
    model components share one engine instance; none of them keep their
    own notion of time.
    """

    def __init__(self) -> None:
        self.now: int = 0
        self._queue: list[Event] = []
        self._seq: int = 0
        self.events_executed: int = 0

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: int, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` to run ``delay`` cycles from now."""
        if delay < 0:
            raise SimulationError(
                f"cannot schedule into the past (delay={delay} at t={self.now})"
            )
        return self.schedule_at(self.now + delay, fn, *args)

    def schedule_at(self, time: int, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` at absolute cycle ``time``."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule at t={time}, current time is {self.now}"
            )
        event = Event(time, self._seq, fn, args)
        self._seq += 1
        heapq.heappush(self._queue, event)
        return event

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Execute the next live event.  Returns False when queue is empty."""
        queue = self._queue
        while queue:
            event = heapq.heappop(queue)
            if event.cancelled:
                continue
            self.now = event.time
            self.events_executed += 1
            event.fn(*event.args)
            return True
        return False

    def run(
        self,
        until: int | None = None,
        max_events: int | None = None,
    ) -> None:
        """Drain the event queue.

        Parameters
        ----------
        until:
            Stop once the next event lies strictly beyond this cycle
            (the clock is left at the last executed event's time).
        max_events:
            Abort with :class:`SimulationError` after this many events —
            a safety valve against protocol livelock bugs.
        """
        executed = 0
        queue = self._queue
        while queue:
            # Peek past cancelled heads without executing them.
            head = queue[0]
            if head.cancelled:
                heapq.heappop(queue)
                continue
            if until is not None and head.time > until:
                return
            if not self.step():  # pragma: no cover - guarded by `while queue`
                return
            executed += 1
            if max_events is not None and executed >= max_events:
                raise SimulationError(
                    f"event budget exhausted after {executed} events at "
                    f"t={self.now}; possible livelock"
                )

    def pending(self) -> int:
        """Number of live (non-cancelled) events still queued."""
        return sum(1 for e in self._queue if not e.cancelled)

    def next_event_time(self) -> int | None:
        """Time of the earliest live event, or ``None`` if drained."""
        for event in sorted(self._queue):
            if not event.cancelled:
                return event.time
        return None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Engine t={self.now} pending={self.pending()}>"
