"""Transaction-level derived metrics shared by run-result types.

Both :class:`~repro.harness.runner.RunResult` (the full in-process
result) and :class:`~repro.exec.jobs.ExecResult` (the condensed
process-boundary result) expose the same derived view over the run's
counters — commits, futile re-executions, abort rate, wasted work —
and the same one-line summary.  Keeping the definitions here, in a
module with no simulator dependencies, guarantees the two views can
never drift apart (a cached result must report aborts exactly like a
fresh one) and keeps the import graph acyclic: ``repro.harness`` and
``repro.exec`` both depend on this module, never on each other's
result types.

Hosts must provide ``counters`` (a ``str -> int`` mapping) plus the
``workload``, ``scale``, ``config``, ``parallel_time`` and ``energy``
attributes used by :meth:`TxMetricsMixin.summary`.
"""

from __future__ import annotations

__all__ = ["TxMetricsMixin", "DECLARED_METRICS"]

#: The canonical catalog of every Counter/Histogram name the code may
#: bump — simulator stats (``StatsRegistry.counter/histogram/bump``)
#: and observability counters (``ObsRecorder.count``) alike.  Entries
#: are ``fnmatch`` patterns: per-component dotted prefixes that are
#: built with f-strings at wiring time (``f"{prefix}.cache.hits"``)
#: appear here with the dynamic segment collapsed to ``*``, exactly how
#: the ``OBS301[undeclared-metric]`` lint rule normalizes them.  Adding
#: a metric to the code without declaring it here fails `repro check` —
#: the registry is what keeps reporting, docs and manifests working
#: from one shared name catalog (see docs/static-analysis.md).
DECLARED_METRICS: frozenset[str] = frozenset({
    # -- transactions (htm/processor.py, htm/token.py) ---------------
    "tx.attempts",          # event count: transaction attempts started
    "tx.commits",           # event count: attempts that committed
    "tx.commit_attempts",   # event count: commit-token requests issued
    "tx.aborts.conflict",   # event count: conflict-invalidation aborts
    "tx.aborts.self",       # event count: wake-up self-aborts
    "tx.aborts.total",      # event count: all aborts (pairs wasted_cycles)
    "tx.wasted_cycles",     # cycle sum: work invested in aborted attempts
    "tx.aborts_while_committing",  # event count: aborts past token grant
    "tx.latency",           # histogram: attempt start -> commit
    "tx.attempts_to_commit",  # histogram: attempts needed per commit
    "tx.commit_phase",      # histogram: commit-phase duration
    # -- commit-token vendor (htm/token.py, htm/machine.py) ----------
    "vendor.tids_issued",   # event count: TIDs handed out
    "vendor.commits",       # event count: commit grants
    "vendor.releases",      # event count: token releases
    "vendor.barrier_waits",  # event count: waits at the TID-order barrier
    "vendor.stale_grants",  # event count: grants to already-aborted txs
    # -- clock gating (gating/protocol.py, htm/processor.py) ---------
    "gating.gated",         # event count: Stop-Clock transitions taken
    "gating.wakeups",       # event count: Turn-On transitions taken
    "gating.redundant_on",  # event count: Turn-Ons for running procs
    "gating.renewals",      # event count: window renewals (all dirs)
    "gating.txinfo_requests",  # event count: TxInfoReq round-trips
    "gating.gated_cycles",  # histogram: cycles spent gated per episode
    "gating.window",        # histogram: Eq. 8 window lengths armed
    "*.aborts_recorded",    # dirN.gating: aborts logged at this directory
    "*.renewals",           # dirN.gating: window renewals here
    "*.turn_ons",           # dirN.gating: Turn-Ons sent from here
    "*.stale_off_cleared",  # dirN.gating: stale-OFF recoveries here
    # -- memory system (mem/bus.py, mem/memory.py, mem/directory.py) -
    "bus.messages",         # event count: messages carried
    "bus.busy_cycles",      # cycle sum: bus occupancy
    "bus.queue_cycles",     # cycle sum: waiting for the bus
    "memory.accesses",      # event count: DRAM accesses
    "memory.port_wait_cycles",  # cycle sum: port-contention waits
    "dir.lines_per_flush",  # histogram: commit-flush batch sizes
    # -- per-processor / per-cache / per-directory prefixes ----------
    "*.cache.hits",         # procN.cache.hits
    "*.cache.misses",       # procN.cache.misses
    "*.commits",            # procN.commits
    "*.aborts",             # procN.aborts
    "*.stale_fills",        # procN.stale_fills (post-abort fills)
    "*.fills",              # procN.cache / dirN fills
    "*.evictions",          # procN.cache.evictions
    "*.spec_evictions",     # speculative-line evictions
    "*.invalidations",      # procN.cache.invalidations
    "*.aborts_caused",      # dirN.aborts_caused
    "*.flushes",            # dirN.flushes
    "*.lines_committed",    # dirN.lines_committed (commit-flush volume)
    # -- result store / executor observability (ObsRecorder.count) ---
    "store.puts",           # records written through the store
    "store.hits",           # cache hits served
    "store.misses",         # cache misses
    "store.invalidations",  # tombstones written
    "store.skipped_records",  # torn/foreign-schema lines skipped
    "store.lock_acquisitions",  # advisory-lock acquires
    "store.lock_wait_s",    # seconds spent waiting on the lock
    "dir.flush_batches",    # batched commit-flush drains (PR 7)
    "pack.reset_reuses",    # pack members served by Machine.reset
    "pack.shared_prep_hits",  # pack members served from the prep cache
})


class TxMetricsMixin:
    """Counter-derived metrics over a run's ``counters`` mapping."""

    @property
    def commits(self) -> int:
        return self.counters.get("tx.commits", 0)

    @property
    def aborts(self) -> int:
        """All futile re-executions (conflict aborts + wake-up self-aborts).

        An *event count*: reads ``tx.aborts.total`` (one increment per
        abort), falling back to the conflict/self split for results
        recorded before the total existed.  Never derived from
        ``tx.wasted_cycles``, which is a cycle *sum* — see
        :meth:`wasted_cycles`.
        """
        total = self.counters.get("tx.aborts.total")
        if total is not None:
            return total
        return self.counters.get("tx.aborts.conflict", 0) + self.counters.get(
            "tx.aborts.self", 0
        )

    @property
    def abort_rate(self) -> float:
        attempts = self.counters.get("tx.attempts", 0)
        return self.aborts / attempts if attempts else 0.0

    @property
    def wasted_cycles(self) -> int:
        """Total cycles invested in attempts that aborted.

        A *cycle sum*, not an event count: each abort adds the age of
        the dying attempt.  Its paired count is ``tx.aborts.total``
        (exposed as :meth:`aborts`) — divide the sum by the count for
        mean wasted work per abort, and never mix the two in a rate.
        """
        return self.counters.get("tx.wasted_cycles", 0)

    def summary(self) -> str:
        gating = "gated" if self.config.gating.enabled else "ungated"
        return (
            f"{self.workload}[{self.scale}] x{self.config.num_procs} "
            f"({gating}): N={self.parallel_time} E={self.energy.total:.0f} "
            f"commits={self.commits} aborts={self.aborts} "
            f"(rate {self.abort_rate:.1%})"
        )
