"""Transaction-level derived metrics shared by run-result types.

Both :class:`~repro.harness.runner.RunResult` (the full in-process
result) and :class:`~repro.exec.jobs.ExecResult` (the condensed
process-boundary result) expose the same derived view over the run's
counters — commits, futile re-executions, abort rate, wasted work —
and the same one-line summary.  Keeping the definitions here, in a
module with no simulator dependencies, guarantees the two views can
never drift apart (a cached result must report aborts exactly like a
fresh one) and keeps the import graph acyclic: ``repro.harness`` and
``repro.exec`` both depend on this module, never on each other's
result types.

Hosts must provide ``counters`` (a ``str -> int`` mapping) plus the
``workload``, ``scale``, ``config``, ``parallel_time`` and ``energy``
attributes used by :meth:`TxMetricsMixin.summary`.
"""

from __future__ import annotations

__all__ = ["TxMetricsMixin"]


class TxMetricsMixin:
    """Counter-derived metrics over a run's ``counters`` mapping."""

    @property
    def commits(self) -> int:
        return self.counters.get("tx.commits", 0)

    @property
    def aborts(self) -> int:
        """All futile re-executions (conflict aborts + wake-up self-aborts).

        An *event count*: reads ``tx.aborts.total`` (one increment per
        abort), falling back to the conflict/self split for results
        recorded before the total existed.  Never derived from
        ``tx.wasted_cycles``, which is a cycle *sum* — see
        :meth:`wasted_cycles`.
        """
        total = self.counters.get("tx.aborts.total")
        if total is not None:
            return total
        return self.counters.get("tx.aborts.conflict", 0) + self.counters.get(
            "tx.aborts.self", 0
        )

    @property
    def abort_rate(self) -> float:
        attempts = self.counters.get("tx.attempts", 0)
        return self.aborts / attempts if attempts else 0.0

    @property
    def wasted_cycles(self) -> int:
        """Total cycles invested in attempts that aborted.

        A *cycle sum*, not an event count: each abort adds the age of
        the dying attempt.  Its paired count is ``tx.aborts.total``
        (exposed as :meth:`aborts`) — divide the sum by the count for
        mean wasted work per abort, and never mix the two in a rate.
        """
        return self.counters.get("tx.wasted_cycles", 0)

    def summary(self) -> str:
        gating = "gated" if self.config.gating.enabled else "ungated"
        return (
            f"{self.workload}[{self.scale}] x{self.config.num_procs} "
            f"({gating}): N={self.parallel_time} E={self.energy.total:.0f} "
            f"commits={self.commits} aborts={self.aborts} "
            f"(rate {self.abort_rate:.1%})"
        )
