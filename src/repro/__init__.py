"""repro — Clock Gate on Abort: energy-efficient hardware TM (IPPS 2009).

A complete architectural reproduction of Sanyal et al.'s clock-gating
HTM study: a Scalable-TCC-style hardware transactional memory on a
directory-based NUMA machine, the clock-gate-on-abort protocol with its
gating-aware contention management (Eq. 8), the Alpha 21264 @ 65 nm
power model (Table I) with interval energy accounting (Eqs. 1–7), and
STAMP-equivalent workloads (genome, yada, intruder).

Quickstart::

    from repro import SystemConfig, run_workload, workload

    wl = workload("intruder", scale="tiny")
    config = SystemConfig(num_procs=4, seed=7)
    result = run_workload(wl, config)
    print(result.parallel_time, result.energy.total)

See ``examples/`` for full scenarios and ``benchmarks/`` for the
experiments that regenerate every table and figure of the paper.
"""

from .config import (
    BusConfig,
    CacheConfig,
    CommitConfig,
    DirectoryConfig,
    GatingConfig,
    MemoryConfig,
    SystemConfig,
)
from .errors import (
    CacheOverflowError,
    ConfigError,
    DeadlockError,
    HarnessError,
    MemoryModelError,
    ProtocolError,
    ReproError,
    SimulationError,
    WorkloadError,
)
from .htm import (
    BarrierOp,
    Compute,
    Load,
    Machine,
    MachineResult,
    Store,
    ThreadContext,
    ThreadProgram,
    TxOp,
    transaction,
)
from .power import (
    EnergyBreakdown,
    EnergyReport,
    PowerModel,
    PowerModelParams,
    ProcState,
    compute_energy,
    format_energy_report,
    tcc_cache_power_curve,
    tcc_total_power_factor,
)

__version__ = "1.0.0"

__all__ = [
    # configuration
    "SystemConfig",
    "CacheConfig",
    "BusConfig",
    "DirectoryConfig",
    "MemoryConfig",
    "CommitConfig",
    "GatingConfig",
    # errors
    "ReproError",
    "ConfigError",
    "SimulationError",
    "DeadlockError",
    "ProtocolError",
    "MemoryModelError",
    "CacheOverflowError",
    "WorkloadError",
    "HarnessError",
    # HTM / programs
    "Machine",
    "MachineResult",
    "ThreadProgram",
    "ThreadContext",
    "Load",
    "Store",
    "Compute",
    "TxOp",
    "BarrierOp",
    "transaction",
    # power
    "ProcState",
    "PowerModel",
    "PowerModelParams",
    "EnergyBreakdown",
    "EnergyReport",
    "compute_energy",
    "format_energy_report",
    "tcc_cache_power_curve",
    "tcc_total_power_factor",
    # high-level API (populated below)
    "run_workload",
    "compare_gating",
    "workload",
    "available_workloads",
    "RunResult",
    "GatingComparison",
    # parallel execution / caching (populated below)
    "Executor",
    "RunJob",
    "ExecResult",
    "ResultStore",
    # declarative scenarios (populated below)
    "ScenarioSpec",
    "ScenarioSuite",
    "scenario",
    "run_suite",
    "get_suite",
    "available_suites",
    "FigureBuilder",
    "FigureParams",
    "FigureSpec",
    "available_figures",
    "__version__",
]

# High-level harness API; imported last to avoid import cycles.
from .harness import (  # noqa: E402
    GatingComparison,
    RunResult,
    available_workloads,
    compare_gating,
    run_workload,
    workload,
)
from .exec import ExecResult, Executor, ResultStore, RunJob  # noqa: E402
from .scenarios import (  # noqa: E402
    ScenarioSpec,
    ScenarioSuite,
    available_suites,
    get_suite,
    run_suite,
    scenario,
)
from .figures import (  # noqa: E402
    FigureBuilder,
    FigureParams,
    FigureSpec,
    available_figures,
)
