"""SQLite backend: one ``results.db`` per cache directory.

Records are digest-keyed upserts into a single ``records`` table whose
``payload`` column holds the exact record JSON the JSONL backend would
have logged — so the two backends are interchangeable and migration is
byte-stable in both directions.  Tombstones are rows with
``tombstone=1`` and no payload, preserving the replay semantics (a
reopened store still sees the digest invalidated; a later put
resurrects it).

The database opens in WAL journal mode with a generous busy timeout:
many processes can read and append concurrently without corrupting or
losing records, which is what suite shards pointed at one shared
directory need.  Where WAL is unavailable (some network filesystems)
SQLite falls back to its default rollback journal — still locked
correctly, just slower under write contention.
"""

from __future__ import annotations

import json
import sqlite3
import time
from typing import Any

from ...errors import ExecutionError
from ...obs import get_recorder
from ..jobs import SCHEMA_VERSION
from .base import StoreBackend

__all__ = ["SqliteBackend"]

_TABLE_DDL = """
CREATE TABLE IF NOT EXISTS records (
    digest    TEXT PRIMARY KEY,
    schema    INTEGER,
    tombstone INTEGER NOT NULL DEFAULT 0,
    payload   TEXT
)
"""


class SqliteBackend(StoreBackend):
    """WAL-mode SQLite storage with digest-keyed upserts."""

    name = "sqlite"
    filename = "results.db"

    def __init__(self, directory: str | Path) -> None:
        super().__init__(directory)
        self._conn: sqlite3.Connection | None = None

    # ------------------------------------------------------------------
    def _connect(self) -> sqlite3.Connection:
        if self._conn is None:
            try:
                # isolation_level=None: autocommit, with transactions
                # managed explicitly where multi-statement atomicity
                # matters (compact).
                conn = sqlite3.connect(
                    self.path, timeout=30.0, isolation_level=None
                )
                conn.execute("PRAGMA busy_timeout=30000")
                conn.execute("PRAGMA journal_mode=WAL")
                conn.execute("PRAGMA synchronous=NORMAL")
                conn.execute(_TABLE_DDL)
            except sqlite3.Error as exc:
                raise ExecutionError(
                    f"cannot open result database {self.path}: {exc}"
                ) from exc
            self._conn = conn
        return self._conn

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    @staticmethod
    def _read_index(
        conn: sqlite3.Connection,
    ) -> tuple[dict[str, dict[str, Any]], int]:
        index: dict[str, dict[str, Any]] = {}
        skipped = 0
        for digest, tombstone, payload in conn.execute(
            "SELECT digest, tombstone, payload FROM records"
        ):
            if tombstone:
                continue
            try:
                record = json.loads(payload)
                if record["digest"] != digest:
                    raise KeyError(digest)
            except (ValueError, KeyError, TypeError):
                skipped += 1
                continue
            if record.get("schema") != SCHEMA_VERSION:
                skipped += 1
                continue
            index[digest] = record
        return index, skipped

    # ------------------------------------------------------------------
    def load(self) -> tuple[dict[str, dict[str, Any]], int]:
        if not self.path.exists():
            # Opening a store for reading must not create results.db —
            # a read-only `exec-status`/`suite plan` probe would
            # otherwise pollute the directory and break auto-detection.
            return {}, 0
        return self._read_index(self._connect())

    def append(self, record: dict[str, Any]) -> None:
        conn = self._connect()
        # the busy-timeout retry loop inside sqlite is this backend's
        # equivalent of the JSONL flock wait — surface it the same way
        started = time.perf_counter()
        try:
            self._append(conn, record)
        finally:
            recorder = get_recorder()
            recorder.count("store.lock_acquisitions")
            recorder.count(
                "store.lock_wait_s", time.perf_counter() - started
            )

    @staticmethod
    def _append(conn: sqlite3.Connection, record: dict[str, Any]) -> None:
        if record.get("tombstone"):
            conn.execute(
                "INSERT OR REPLACE INTO records "
                "(digest, schema, tombstone, payload) VALUES (?, NULL, 1, NULL)",
                (record["digest"],),
            )
        else:
            conn.execute(
                "INSERT OR REPLACE INTO records "
                "(digest, schema, tombstone, payload) VALUES (?, ?, 0, ?)",
                (
                    record["digest"],
                    record.get("schema"),
                    json.dumps(record, separators=(",", ":")),
                ),
            )

    def compact(self) -> dict[str, dict[str, Any]]:
        if not self.path.exists():
            return {}
        conn = self._connect()
        # One immediate transaction around read-and-rewrite: concurrent
        # appenders block (busy timeout) instead of being deleted.
        conn.execute("BEGIN IMMEDIATE")
        try:
            index, _skipped = self._read_index(conn)
            conn.execute("DELETE FROM records")
            conn.executemany(
                "INSERT INTO records "
                "(digest, schema, tombstone, payload) VALUES (?, ?, 0, ?)",
                (
                    (
                        record["digest"],
                        record.get("schema"),
                        json.dumps(record, separators=(",", ":")),
                    )
                    for record in index.values()
                ),
            )
            conn.execute("COMMIT")
        except BaseException:
            conn.execute("ROLLBACK")
            raise
        self._vacuum(conn)
        return index

    def clear(self) -> None:
        if not self.path.exists():
            return
        conn = self._connect()
        conn.execute("DELETE FROM records")
        self._vacuum(conn)

    @staticmethod
    def _vacuum(conn: sqlite3.Connection) -> None:
        """Return freed pages to the filesystem (best effort — another
        writer holding the database merely skips the space reclaim)."""
        try:
            conn.execute("PRAGMA wal_checkpoint(TRUNCATE)")
            conn.execute("VACUUM")
        except sqlite3.Error:  # pragma: no cover - contention only
            pass

    def record_count(self) -> int:
        if not self.path.exists():
            return 0
        row = self._connect().execute("SELECT COUNT(*) FROM records").fetchone()
        return int(row[0])

    def file_bytes(self) -> int:
        return self.path.stat().st_size if self.path.exists() else 0
