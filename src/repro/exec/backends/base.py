"""The storage contract every :class:`~repro.exec.store.ResultStore`
backend implements.

A backend owns *persistence only*: it turns record dicts (exactly the
JSON objects the store has always logged — ``{"digest", "schema",
"created", "result", ...}`` for results, ``{"digest", "tombstone"}``
for invalidations) into durable bytes and back.  Session accounting
(hit/miss counters), the in-memory index, and the replay semantics
(last record per digest wins, tombstones drop the digest, foreign
schemas are skipped) all live in the front-end; every backend must
round-trip record dicts **verbatim**, which is what makes migration and
shard merging byte-stable across backends.

Concurrency contract: :meth:`StoreBackend.append` must be safe against
concurrent appenders in other *processes* (and other hosts, for
backends on shared filesystems) — two simultaneous appends may land in
either order, but neither may be torn, truncated, or lost.
"""

from __future__ import annotations

import abc
from pathlib import Path
from typing import Any, ClassVar

__all__ = ["StoreBackend"]


class StoreBackend(abc.ABC):
    """Persistence engine for one result-store directory."""

    #: registry key and the value ``--store`` selects
    name: ClassVar[str]
    #: the file this backend owns inside the cache directory
    filename: ClassVar[str]

    def __init__(self, directory: str | Path) -> None:
        self.directory = Path(directory)
        self.path = self.directory / self.filename

    # ------------------------------------------------------------------
    @abc.abstractmethod
    def load(self) -> tuple[dict[str, dict[str, Any]], int]:
        """Replay storage into ``(index, skipped)``.

        ``index`` maps digest -> live record dict (tombstoned digests
        absent, last write wins); ``skipped`` counts records that could
        not be used (unparseable, or written under a foreign schema).
        """

    @abc.abstractmethod
    def append(self, record: dict[str, Any]) -> None:
        """Durably add one record (result or tombstone), atomically with
        respect to concurrent appenders in other processes."""

    @abc.abstractmethod
    def compact(self) -> dict[str, dict[str, Any]]:
        """Atomically rewrite storage down to its current live records.

        The live set is re-read from storage *inside* the exclusive
        lock/transaction — never from a caller-supplied snapshot — so
        records appended by concurrent processes since the caller's
        load are preserved, not silently deleted.  Returns the
        resulting live index so the caller can refresh its own.
        """

    @abc.abstractmethod
    def clear(self) -> None:
        """Drop every physical record."""

    @abc.abstractmethod
    def record_count(self) -> int:
        """Physical records present, including tombstones and dead lines."""

    @abc.abstractmethod
    def file_bytes(self) -> int:
        """On-disk size of the primary storage file (0 if absent)."""

    def close(self) -> None:
        """Release any held resources (idempotent; default no-op)."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({str(self.path)!r})"
