"""Pluggable persistence backends for the result store.

Two implementations of the :class:`~repro.exec.backends.base.StoreBackend`
contract ship in-tree:

* :class:`JsonlBackend` — the original append-only ``results.jsonl``
  log, now crash/concurrency-safe via advisory ``fcntl`` locking.
* :class:`SqliteBackend` — ``results.db`` in WAL mode with digest-keyed
  upserts, built for many concurrent writer processes.

:func:`create_backend` resolves the ``--store jsonl|sqlite|auto``
choice; ``auto`` detects which storage file already exists in the cache
directory (new, empty directories default to JSONL).
"""

from __future__ import annotations

from pathlib import Path

from ...errors import ExecutionError
from .base import StoreBackend
from .jsonl import JsonlBackend
from .sqlite import SqliteBackend

__all__ = [
    "StoreBackend",
    "JsonlBackend",
    "SqliteBackend",
    "BACKENDS",
    "BACKEND_CHOICES",
    "create_backend",
    "detect_backend",
]

#: registry of selectable backends, keyed by ``--store`` value
BACKENDS: dict[str, type[StoreBackend]] = {
    JsonlBackend.name: JsonlBackend,
    SqliteBackend.name: SqliteBackend,
}

#: every valid ``--store`` argument, in CLI help order
BACKEND_CHOICES = ("auto", *sorted(BACKENDS))


def detect_backend(directory: str | Path) -> str:
    """Which backend owns *directory*?  Defaults to JSONL when empty.

    Raises :class:`~repro.errors.ExecutionError` when both storage
    files exist — the caller must choose explicitly.
    """
    directory = Path(directory)
    present = [
        name
        for name, cls in sorted(BACKENDS.items())
        if (directory / cls.filename).exists()
    ]
    if len(present) > 1:
        raise ExecutionError(
            f"cache directory {directory} holds more than one store "
            f"({', '.join(BACKENDS[name].filename for name in present)}); "
            f"select a backend explicitly (--store {'|'.join(sorted(BACKENDS))})"
        )
    return present[0] if present else JsonlBackend.name


def create_backend(directory: str | Path, kind: str = "auto") -> StoreBackend:
    """Instantiate the backend *kind* (``auto`` detects from disk)."""
    if kind == "auto":
        kind = detect_backend(directory)
    try:
        cls = BACKENDS[kind]
    except KeyError:
        raise ExecutionError(
            f"unknown store backend {kind!r}; choose from "
            f"{', '.join(BACKEND_CHOICES)}"
        ) from None
    return cls(directory)
