"""Append-only JSON-lines backend (the original store format).

One ``results.jsonl`` per cache directory; every record is one compact
JSON line.  Writes take an advisory ``fcntl`` lock on a sidecar
``results.jsonl.lock`` file, so concurrent appenders — parallel CLI
invocations, suite shards pointed at one directory, processes on
different NFS clients — serialize their appends instead of interleaving
them into torn lines that load would silently skip.  Loads take the
shared lock, so a reader never observes a half-written compaction.

On platforms without :mod:`fcntl` (Windows), locking degrades to a
no-op and the format keeps its original single-writer guarantees.
"""

from __future__ import annotations

import json
import os
import time
from contextlib import contextmanager
from typing import Any, Iterator

from ...obs import get_recorder
from ..jobs import SCHEMA_VERSION
from .base import StoreBackend

try:  # POSIX only; the store stays usable (single-writer) without it
    import fcntl
except ImportError:  # pragma: no cover - exercised only on Windows
    fcntl = None  # type: ignore[assignment]

__all__ = ["JsonlBackend"]


class JsonlBackend(StoreBackend):
    """JSON-lines log with advisory-flock append/load safety."""

    name = "jsonl"
    filename = "results.jsonl"

    def __init__(self, directory: str | Path) -> None:
        super().__init__(directory)
        self._lock_path = self.directory / (self.filename + ".lock")

    # ------------------------------------------------------------------
    @contextmanager
    def _locked(self, exclusive: bool) -> Iterator[None]:
        """Advisory inter-process lock scope (no-op without fcntl)."""
        if fcntl is None:  # pragma: no cover - Windows fallback
            yield
            return
        with open(self._lock_path, "ab") as fh:
            waited = time.perf_counter()
            fcntl.flock(fh, fcntl.LOCK_EX if exclusive else fcntl.LOCK_SH)
            waited = time.perf_counter() - waited
            recorder = get_recorder()
            recorder.count("store.lock_acquisitions")
            recorder.count("store.lock_wait_s", waited)
            try:
                yield
            finally:
                fcntl.flock(fh, fcntl.LOCK_UN)

    def _read_index(self) -> tuple[dict[str, dict[str, Any]], int]:
        """Parse the log into (live index, skipped).  Caller holds a lock."""
        index: dict[str, dict[str, Any]] = {}
        skipped = 0
        if not self.path.exists():
            return index, skipped
        with self.path.open("r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                    digest = record["digest"]
                except (ValueError, KeyError, TypeError):
                    skipped += 1
                    continue
                if record.get("tombstone"):
                    index.pop(digest, None)
                    continue
                if record.get("schema") != SCHEMA_VERSION:
                    skipped += 1
                    continue
                index[digest] = record
        return index, skipped

    # ------------------------------------------------------------------
    def load(self) -> tuple[dict[str, dict[str, Any]], int]:
        if not self.path.exists():
            return {}, 0
        with self._locked(exclusive=False):
            return self._read_index()

    def append(self, record: dict[str, Any]) -> None:
        line = json.dumps(record, separators=(",", ":")) + "\n"
        with self._locked(exclusive=True):
            # One write() of one whole line, flushed before the lock
            # drops: a concurrent appender can never tear it.
            with self.path.open("a", encoding="utf-8") as fh:
                fh.write(line)
                fh.flush()
                os.fsync(fh.fileno())

    def compact(self) -> dict[str, dict[str, Any]]:
        if not self.path.exists():
            return {}
        with self._locked(exclusive=True):
            # Re-read inside the exclusive lock: records appended by
            # concurrent processes since our caller's load survive.
            index, _skipped = self._read_index()
            with self.path.open("w", encoding="utf-8") as fh:
                for record in index.values():
                    fh.write(json.dumps(record, separators=(",", ":")) + "\n")
        return index

    def clear(self) -> None:
        with self._locked(exclusive=True):
            if self.path.exists():
                self.path.write_text("")

    def record_count(self) -> int:
        if not self.path.exists():
            return 0
        with self._locked(exclusive=False):
            with self.path.open("r", encoding="utf-8") as fh:
                return sum(1 for line in fh if line.strip())

    def file_bytes(self) -> int:
        return self.path.stat().st_size if self.path.exists() else 0
