"""Batch execution of :class:`~repro.exec.jobs.RunJob` values.

The executor turns a batch of jobs into a list of results, in
submission order, through three stages:

1. **Dedup** — jobs are keyed by content digest; identical jobs (e.g.
   the shared ungated baseline of a :math:`W_0` sweep) execute once and
   fan their result out to every submitter.
2. **Cache** — with a :class:`~repro.exec.store.ResultStore` attached,
   unique digests are answered from disk when possible; fresh results
   are written back, so re-running an unchanged figure or sweep is pure
   cache hits.
3. **Execute** — remaining jobs run either inline (``jobs=1``, the
   serial backend) or fanned across a
   :class:`concurrent.futures.ProcessPoolExecutor`.  Each worker wires
   its own deterministic engine from the pickled job, so the parallel
   path produces bit-identical numbers to the serial path, and result
   ordering never depends on completion order.  On the pool path, jobs
   that differ only in their seeds are grouped into *replicate packs*
   (:mod:`repro.exec.jobs`): one warmed worker process runs the whole
   seed family back to back instead of paying one dispatch round-trip
   per job.  Packing never changes results — every member still runs
   the plain ``execute_job`` path and lands under its own digest — and
   can be disabled with ``packs=False`` / ``--no-packs`` /
   ``REPRO_NO_PACKS=1``.

Every ``run`` leaves a :class:`BatchReport` on
:attr:`Executor.last_report` with per-batch totals and the measured
serial-equivalent speed-up.

Observability (:mod:`repro.obs`): each ``run`` is a ``batch`` span;
every executed job lands as a ``job`` span carrying its digest, worker
pid, duration, and the simulator's transaction/gating counters; cache
hits are ``job.cache_hit`` events and failures are ``job.failed``
events with the full worker traceback.  Spans are recorded in the
*parent* process as results land (workers never write the event log on
the pool path), and the run manifest is rewritten after every batch —
so a killed run still documents everything that finished.  All of it
no-ops through :class:`~repro.obs.NullRecorder` when observability is
off, leaving result bytes untouched.
"""

from __future__ import annotations

import dataclasses
import os
import time
import traceback as _tb
from concurrent.futures import FIRST_EXCEPTION, ProcessPoolExecutor, wait
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Sequence

from ..errors import ExecutionError
from ..obs import get_recorder
from .jobs import (
    ExecResult,
    PackMemberOutcome,
    PackStats,
    RunJob,
    execute_job,
    execute_pack,
    replicate_key,
)
from .progress import ProgressListener
from .store import ResultStore

__all__ = ["Executor", "BatchReport", "BatchExecutionError", "JobFailure"]

#: environment switch disabling replicate packing (``--no-packs`` on the
#: CLI); any non-empty value other than ``0``/``false``/``no`` disables
NO_PACKS_ENV = "REPRO_NO_PACKS"

#: a pack smaller than this is not worth a grouped dispatch
MIN_PACK_SIZE = 2

#: never split a pack below this size when balancing across workers
MIN_PACK_SPLIT = 4


def packs_enabled_from_env() -> bool:
    """Replicate packing default: on unless ``REPRO_NO_PACKS`` is set."""
    value = os.environ.get(NO_PACKS_ENV, "").strip().lower()
    return value in ("", "0", "false", "no")

#: sim counter namespaces surfaced into job spans — the abort/retry and
#: clock-gating activity that explains *why* a grid point behaved as it
#: did (everything else in ``counters`` is derivable from the result)
SPAN_COUNTER_PREFIXES = ("tx.", "gating.")


def _timed_execute(
    job: RunJob, profile: bool = False
) -> tuple[ExecResult, float, int, list[tuple[str, int, float, float]] | None]:
    """Pool entry point: run one job, measuring its own wall clock.

    Returns ``(result, seconds, worker pid, profile rows | None)``; the
    pid and optional cProfile rows feed the parent-side job span and
    manifest.
    """
    started = time.perf_counter()
    if profile:
        from ..obs.profile import profile_call

        result, rows = profile_call(execute_job, job)
    else:
        result, rows = execute_job(job), None
    return result, time.perf_counter() - started, os.getpid(), rows


def _timed_execute_pack(
    jobs: list[RunJob], profile: bool = False
) -> tuple[list[PackMemberOutcome], PackStats, float, int]:
    """Pool entry point for a replicate pack: one dispatch, N jobs.

    Returns ``(per-member outcomes, pack amortization stats, pack wall
    seconds, worker pid)``; member failures are already folded into
    their outcomes (see :func:`repro.exec.jobs.execute_pack`), so this
    call only raises on infrastructure-level breakage.
    """
    started = time.perf_counter()
    outcomes, stats = execute_pack(jobs, profile)
    return outcomes, stats, time.perf_counter() - started, os.getpid()


def _span_counters(result: ExecResult) -> dict[str, float]:
    """The tx/gating slice of a result's counters, for its job span."""
    return {
        name: value
        for name, value in result.counters.items()
        if name.startswith(SPAN_COUNTER_PREFIXES)
    }


@dataclass(frozen=True)
class JobFailure:
    """One failed job, with enough context to reproduce and debug it."""

    digest: str
    label: str
    workload: str
    error: str
    traceback: str


class BatchExecutionError(ExecutionError):
    """A batch aborted on job failure(s); carries per-job detail.

    ``failures`` lists every failure observed before the batch stopped
    (the pool can surface several at once); the message stays
    compatible with the plain :class:`ExecutionError` it replaces by
    leading with the first failure.
    """

    def __init__(self, message: str, failures: Sequence[JobFailure]) -> None:
        super().__init__(message)
        self.failures = list(failures)


@dataclass(frozen=True)
class BatchReport:
    """Totals for one :meth:`Executor.run` call."""

    total: int
    unique: int
    deduplicated: int
    cache_hits: int
    executed: int
    workers: int
    wall_seconds: float
    run_seconds: float
    failed: int = 0

    @property
    def speedup(self) -> float:
        """Serial-equivalent time over actual wall clock (>= 1 is a win)."""
        if self.wall_seconds <= 0:
            return 1.0
        return self.run_seconds / self.wall_seconds

    @property
    def sims_per_second(self) -> float:
        """Simulations actually executed per wall-clock second.

        The batch-level throughput number ``repro.bench``'s e2e
        benchmark tracks; 0.0 when the batch was answered entirely from
        cache/dedup (no simulation ran, so there is no meaningful rate).
        """
        if self.executed <= 0 or self.wall_seconds <= 0:
            return 0.0
        return self.executed / self.wall_seconds

    def summary(self) -> str:
        return (
            f"executed {self.executed} of {self.total} submitted "
            f"({self.deduplicated} deduplicated, {self.cache_hits} cache "
            f"hit(s)) on {self.workers} worker(s) in {self.wall_seconds:.2f}s"
            + (
                f" (serial-equivalent {self.run_seconds:.2f}s, "
                f"speed-up {self.speedup:.2f}x, "
                f"{self.sims_per_second:.1f} sims/s)"
                if self.executed
                else ""
            )
            + (f" [{self.failed} FAILED]" if self.failed else "")
        )


class Executor:
    """Serial or process-pool job execution with dedup and caching.

    Parameters
    ----------
    jobs:
        Worker processes.  ``1`` (default) executes inline in this
        process; ``0`` means one per CPU.
    store:
        Optional :class:`~repro.exec.store.ResultStore` consulted before
        executing and updated after.  A plain directory path is also
        accepted and opened with backend auto-detection
        (:mod:`repro.exec.backends`); the store's own locking makes the
        write-through safe even when other executor processes — suite
        shards, parallel CLI invocations — share the same directory.
    progress:
        Optional :class:`~repro.exec.progress.ProgressListener`.
    refresh:
        Skip cache *reads* (every unique job re-executes) while still
        writing results back — recompute-and-overwrite semantics.
    profile:
        Wrap each executed job in :mod:`cProfile` and merge the hot
        spots into the observability run manifest.  Meaningful only
        with observability enabled; adds real overhead, so it is strictly
        opt-in.
    packs:
        Group pool-path jobs that differ only in their seeds into
        :class:`~repro.exec.jobs.ReplicatePack` dispatch units — one
        warmed worker process serves a whole seed family instead of one
        pool round-trip per job.  Results, store records and digests
        are bit-identical either way (each member still runs the plain
        ``execute_job`` path).  ``None`` (default) resolves from the
        ``REPRO_NO_PACKS`` environment switch; the serial path never
        packs (there is nothing to amortize in-process).
    """

    def __init__(
        self,
        jobs: int = 1,
        store: ResultStore | str | Path | None = None,
        progress: ProgressListener | None = None,
        refresh: bool = False,
        profile: bool = False,
        packs: bool | None = None,
    ) -> None:
        if jobs < 0:
            raise ExecutionError(f"worker count cannot be negative: {jobs}")
        self.jobs = jobs if jobs > 0 else (os.cpu_count() or 1)
        if isinstance(store, (str, Path)):
            store = ResultStore(store)
        self.store = store
        self.progress = progress if progress is not None else ProgressListener()
        self.refresh = refresh
        self.profile = profile
        self.packs = packs_enabled_from_env() if packs is None else packs
        self.last_report: BatchReport | None = None

    # ------------------------------------------------------------------
    def run(self, batch: Sequence[RunJob]) -> list[ExecResult]:
        """Resolve every job; returns results in submission order."""
        recorder = get_recorder()
        try:
            with recorder.span("batch", total=len(batch)) as span:
                return self._run_observed(list(batch), recorder, span)
        finally:
            # one manifest rewrite (and one fsync) per batch, success or
            # not — crashed runs keep everything that finished
            recorder.write_manifest()

    def _run_observed(
        self, batch: list[RunJob], recorder: Any, span: Any
    ) -> list[ExecResult]:
        started = time.perf_counter()
        digests = [job.digest for job in batch]
        recorder.note_jobs(digests)

        unique: dict[str, RunJob] = {}
        for job, digest in zip(batch, digests):
            unique.setdefault(digest, job)

        results: dict[str, ExecResult] = {}
        if self.store is not None and not self.refresh:
            for digest in unique:
                cached = self.store.get(digest)
                if cached is not None:
                    results[digest] = cached
                    if recorder.enabled:
                        recorder.event(
                            "job.cache_hit",
                            digest=digest,
                            label=unique[digest].label(),
                        )
        cache_hits = len(results)

        pending = [
            (digest, job)
            for digest, job in unique.items()
            if digest not in results
        ]
        workers = min(self.jobs, len(pending)) if pending else 0
        self.progress.batch_started(
            len(batch), len(unique), cache_hits, max(workers, 1)
        )

        run_seconds = 0.0
        failed = 0
        try:
            if pending:
                if workers <= 1:
                    run_seconds = self._run_serial(pending, results, recorder)
                else:
                    run_seconds = self._run_pool(
                        pending, results, workers, recorder
                    )
        except BatchExecutionError as exc:
            failed = len(exc.failures)
            raise
        finally:
            executed = len(results) - cache_hits
            report = BatchReport(
                total=len(batch),
                unique=len(unique),
                deduplicated=len(batch) - len(unique),
                cache_hits=cache_hits,
                executed=executed if failed else len(pending),
                workers=max(workers, 1),
                wall_seconds=time.perf_counter() - started,
                run_seconds=run_seconds,
                failed=failed,
            )
            self.last_report = report
            span.annotate(**dataclasses.asdict(report))
            recorder.note_batch(dataclasses.asdict(report))
            if not failed:
                self.progress.batch_finished(report)

        # Fan results back out in submission order.  A dedup/cache hit can
        # hand back a result computed under a digest-equivalent but not
        # field-identical config (e.g. an ungated baseline recorded at a
        # different W0); re-stamp it so every caller sees exactly the
        # config it submitted.  The numbers are identical by construction.
        out: list[ExecResult] = []
        for digest, job in zip(digests, batch):
            result = results[digest]
            if result.config != job.config:
                result = dataclasses.replace(result, config=job.config)
            out.append(result)
        return out

    def run_one(self, job: RunJob) -> ExecResult:
        """Convenience wrapper: a batch of one."""
        return self.run([job])[0]

    # ------------------------------------------------------------------
    def _record(
        self,
        digest: str,
        job: RunJob,
        result: ExecResult,
        results: dict[str, ExecResult],
        recorder: Any,
        seconds: float,
        pid: int,
        profile_rows: list[tuple[str, int, float, float]] | None,
    ) -> None:
        """Land one finished result — write-through to the store so
        completed work survives even if a later job in the batch fails."""
        results[digest] = result
        if self.store is not None:
            self.store.put(digest, result, job=job)
        recorder.note_job_seconds(seconds)
        if recorder.enabled:
            recorder.complete_span(
                "job",
                seconds,
                digest=digest,
                label=job.label(),
                workload=job.spec.name,
                worker_pid=pid,
                cached=False,
                counters=_span_counters(result),
            )
            # run-level flush-batch tally: how many batched commit
            # flushes the directories serviced across every executed
            # job (the per-flush line distribution lives sim-side in
            # the ``dir.lines_per_flush`` histogram)
            flushes = sum(
                value
                for name, value in result.counters.items()
                if name.startswith("dir") and name.endswith(".flushes")
            )
            if flushes:
                recorder.count("dir.flush_batches", flushes)
        if profile_rows is not None:
            recorder.add_profile(profile_rows)

    def _fail(
        self,
        failures: list[JobFailure],
        recorder: Any,
    ) -> BatchExecutionError:
        """Record failure events and build the batch error (not raised
        here so callers keep their own ``raise ... from exc`` chain)."""
        for failure in failures:
            recorder.event(
                "job.failed",
                digest=failure.digest,
                label=failure.label,
                workload=failure.workload,
                error=failure.error,
                traceback=failure.traceback,
            )
            recorder.note_failure(
                failure.workload, failure.digest, failure.label, failure.error
            )
        first = failures[0]
        message = (
            f"job {first.label} ({first.digest[:12]}) failed in "
            f"worker: {first.error}"
        )
        if len(failures) > 1:
            message += f" (+{len(failures) - 1} more failure(s))"
        return BatchExecutionError(message, failures)

    def _run_serial(
        self,
        pending: list[tuple[str, RunJob]],
        results: dict[str, ExecResult],
        recorder: Any,
    ) -> float:
        run_seconds = 0.0
        for done, (digest, job) in enumerate(pending, start=1):
            try:
                result, seconds, pid, rows = _timed_execute(
                    job, self.profile
                )
            except Exception as exc:
                failure = JobFailure(
                    digest=digest,
                    label=job.label(),
                    workload=job.spec.name,
                    error=str(exc),
                    traceback="".join(_tb.format_exception(exc)),
                )
                raise self._fail([failure], recorder) from exc
            self._record(
                digest, job, result, results, recorder, seconds, pid, rows
            )
            run_seconds += seconds
            self.progress.job_finished(done, len(pending), job, seconds)
        return run_seconds

    def _dispatch_units(
        self, pending: list[tuple[str, RunJob]], workers: int
    ) -> list[list[tuple[str, RunJob]]]:
        """Group pending jobs into pool dispatch units.

        With packing on, jobs sharing a :func:`replicate_key` (same
        spec, different seeds) form one unit; everything else stays a
        singleton.  Oversized packs are split while fewer units than
        workers exist, so a batch that is one big seed family still
        fans across the whole pool.  Grouping is deterministic in
        submission order — it only changes *where* jobs run, never what
        any of them computes.
        """
        if not self.packs:
            return [[entry] for entry in pending]
        groups: dict[str, list[tuple[str, RunJob]]] = {}
        order: list[str] = []
        for digest, job in pending:
            key = replicate_key(job)
            if key not in groups:
                groups[key] = []
                order.append(key)
            groups[key].append((digest, job))
        units = [groups[key] for key in order]
        # keep every worker busy: halve the largest splittable pack
        # until there are enough units (or nothing left worth splitting)
        while len(units) < workers:
            largest = max(units, key=len)
            if len(largest) < MIN_PACK_SPLIT:
                break
            at = units.index(largest)
            half = len(largest) // 2
            units[at:at + 1] = [largest[:half], largest[half:]]
        return units

    def _land_pack(
        self,
        unit: list[tuple[str, RunJob]],
        outcomes: list[PackMemberOutcome],
        pack_stats: PackStats,
        pack_seconds: float,
        pid: int,
        results: dict[str, ExecResult],
        recorder: Any,
        failures: list[JobFailure],
        progress_state: list[int],
        pending_total: int,
    ) -> float:
        """Land every member of one finished pack; returns run seconds."""
        run_seconds = 0.0
        for (digest, job), outcome in zip(unit, outcomes):
            if outcome.result is None:
                failures.append(
                    JobFailure(
                        digest=digest,
                        label=job.label(),
                        workload=job.spec.name,
                        error=outcome.error or "unknown pack member failure",
                        traceback=outcome.traceback or "",
                    )
                )
                continue
            self._record(
                digest, job, outcome.result, results, recorder,
                outcome.seconds, pid, outcome.profile_rows,
            )
            run_seconds += outcome.seconds
            progress_state[0] += 1
            self.progress.job_finished(
                progress_state[0], pending_total, job, outcome.seconds
            )
        if recorder.enabled:
            recorder.complete_span(
                "pack",
                pack_seconds,
                replicates=len(unit),
                label=unit[0][1].label(),
                workload=unit[0][1].spec.name,
                worker_pid=pid,
                failed=sum(1 for o in outcomes if o.result is None),
                reset_reuses=pack_stats.reset_reuses,
                shared_prep_hits=pack_stats.shared_prep_hits,
            )
            # run-level amortization tallies: how many pack members
            # were served by a machine reset / a shared workload build
            # instead of a from-scratch rebuild
            if pack_stats.reset_reuses:
                recorder.count("pack.reset_reuses", pack_stats.reset_reuses)
            if pack_stats.shared_prep_hits:
                recorder.count(
                    "pack.shared_prep_hits", pack_stats.shared_prep_hits
                )
        return run_seconds

    def _run_pool(
        self,
        pending: list[tuple[str, RunJob]],
        results: dict[str, ExecResult],
        workers: int,
        recorder: Any,
    ) -> float:
        run_seconds = 0.0
        progress_state = [0]  # mutable done-counter shared with pack landing
        units = self._dispatch_units(pending, workers)
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = {}
            for unit in units:
                if len(unit) >= MIN_PACK_SIZE:
                    future = pool.submit(
                        _timed_execute_pack,
                        [job for _digest, job in unit],
                        self.profile,
                    )
                else:
                    future = pool.submit(
                        _timed_execute, unit[0][1], self.profile
                    )
                futures[future] = unit
            remaining = set(futures)
            while remaining:
                finished, remaining = wait(
                    remaining, return_when=FIRST_EXCEPTION
                )
                # land every success in this wave first — the store
                # write-through must not lose completed work to a
                # sibling's failure
                failures: list[JobFailure] = []
                first_exc: Exception | None = None
                for future in finished:
                    unit = futures[future]
                    try:
                        payload = future.result()
                    except Exception as exc:
                        # infrastructure failure (e.g. a broken pool):
                        # every job in the unit went down with it
                        if first_exc is None:
                            first_exc = exc
                        for digest, job in unit:
                            failures.append(
                                JobFailure(
                                    digest=digest,
                                    label=job.label(),
                                    workload=job.spec.name,
                                    error=str(exc),
                                    traceback="".join(
                                        _tb.format_exception(exc)
                                    ),
                                )
                            )
                        continue
                    if len(unit) >= MIN_PACK_SIZE:
                        outcomes, pack_stats, pack_seconds, pid = payload
                        run_seconds += self._land_pack(
                            unit, outcomes, pack_stats, pack_seconds, pid,
                            results, recorder, failures, progress_state,
                            len(pending),
                        )
                    else:
                        digest, job = unit[0]
                        result, seconds, pid, rows = payload
                        self._record(
                            digest, job, result, results, recorder, seconds,
                            pid, rows,
                        )
                        run_seconds += seconds
                        progress_state[0] += 1
                        self.progress.job_finished(
                            progress_state[0], len(pending), job, seconds
                        )
                if failures:
                    # repro: allow[DET003] — cancellation of the not-yet-
                    # scheduled futures is order-insensitive: no result
                    # is produced or stored on this path
                    for other in remaining:
                        other.cancel()
                    raise self._fail(failures, recorder) from first_exc
        return run_seconds
