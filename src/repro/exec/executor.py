"""Batch execution of :class:`~repro.exec.jobs.RunJob` values.

The executor turns a batch of jobs into a list of results, in
submission order, through three stages:

1. **Dedup** — jobs are keyed by content digest; identical jobs (e.g.
   the shared ungated baseline of a :math:`W_0` sweep) execute once and
   fan their result out to every submitter.
2. **Cache** — with a :class:`~repro.exec.store.ResultStore` attached,
   unique digests are answered from disk when possible; fresh results
   are written back, so re-running an unchanged figure or sweep is pure
   cache hits.
3. **Execute** — remaining jobs run either inline (``jobs=1``, the
   serial backend) or fanned across a
   :class:`concurrent.futures.ProcessPoolExecutor`.  Each worker wires
   its own deterministic engine from the pickled job, so the parallel
   path produces bit-identical numbers to the serial path, and result
   ordering never depends on completion order.

Every ``run`` leaves a :class:`BatchReport` on
:attr:`Executor.last_report` with per-batch totals and the measured
serial-equivalent speed-up.
"""

from __future__ import annotations

import dataclasses
import os
import time
from concurrent.futures import FIRST_EXCEPTION, ProcessPoolExecutor, wait
from dataclasses import dataclass
from pathlib import Path
from typing import Sequence

from ..errors import ExecutionError
from .jobs import ExecResult, RunJob, execute_job
from .progress import ProgressListener
from .store import ResultStore

__all__ = ["Executor", "BatchReport"]


def _timed_execute(job: RunJob) -> tuple[ExecResult, float]:
    """Pool entry point: run one job, measuring its own wall clock."""
    started = time.perf_counter()
    result = execute_job(job)
    return result, time.perf_counter() - started


@dataclass(frozen=True)
class BatchReport:
    """Totals for one :meth:`Executor.run` call."""

    total: int
    unique: int
    deduplicated: int
    cache_hits: int
    executed: int
    workers: int
    wall_seconds: float
    run_seconds: float

    @property
    def speedup(self) -> float:
        """Serial-equivalent time over actual wall clock (>= 1 is a win)."""
        if self.wall_seconds <= 0:
            return 1.0
        return self.run_seconds / self.wall_seconds

    @property
    def sims_per_second(self) -> float:
        """Simulations actually executed per wall-clock second.

        The batch-level throughput number ``repro.bench``'s e2e
        benchmark tracks; 0.0 when the batch was answered entirely from
        cache/dedup (no simulation ran, so there is no meaningful rate).
        """
        if self.executed <= 0 or self.wall_seconds <= 0:
            return 0.0
        return self.executed / self.wall_seconds

    def summary(self) -> str:
        return (
            f"executed {self.executed} of {self.total} submitted "
            f"({self.deduplicated} deduplicated, {self.cache_hits} cache "
            f"hit(s)) on {self.workers} worker(s) in {self.wall_seconds:.2f}s"
            + (
                f" (serial-equivalent {self.run_seconds:.2f}s, "
                f"speed-up {self.speedup:.2f}x, "
                f"{self.sims_per_second:.1f} sims/s)"
                if self.executed
                else ""
            )
        )


class Executor:
    """Serial or process-pool job execution with dedup and caching.

    Parameters
    ----------
    jobs:
        Worker processes.  ``1`` (default) executes inline in this
        process; ``0`` means one per CPU.
    store:
        Optional :class:`~repro.exec.store.ResultStore` consulted before
        executing and updated after.  A plain directory path is also
        accepted and opened with backend auto-detection
        (:mod:`repro.exec.backends`); the store's own locking makes the
        write-through safe even when other executor processes — suite
        shards, parallel CLI invocations — share the same directory.
    progress:
        Optional :class:`~repro.exec.progress.ProgressListener`.
    refresh:
        Skip cache *reads* (every unique job re-executes) while still
        writing results back — recompute-and-overwrite semantics.
    """

    def __init__(
        self,
        jobs: int = 1,
        store: ResultStore | str | Path | None = None,
        progress: ProgressListener | None = None,
        refresh: bool = False,
    ):
        if jobs < 0:
            raise ExecutionError(f"worker count cannot be negative: {jobs}")
        self.jobs = jobs if jobs > 0 else (os.cpu_count() or 1)
        if isinstance(store, (str, Path)):
            store = ResultStore(store)
        self.store = store
        self.progress = progress if progress is not None else ProgressListener()
        self.refresh = refresh
        self.last_report: BatchReport | None = None

    # ------------------------------------------------------------------
    def run(self, batch: Sequence[RunJob]) -> list[ExecResult]:
        """Resolve every job; returns results in submission order."""
        started = time.perf_counter()
        batch = list(batch)
        digests = [job.digest for job in batch]

        unique: dict[str, RunJob] = {}
        for job, digest in zip(batch, digests):
            unique.setdefault(digest, job)

        results: dict[str, ExecResult] = {}
        if self.store is not None and not self.refresh:
            for digest in unique:
                cached = self.store.get(digest)
                if cached is not None:
                    results[digest] = cached
        cache_hits = len(results)

        pending = [
            (digest, job)
            for digest, job in unique.items()
            if digest not in results
        ]
        workers = min(self.jobs, len(pending)) if pending else 0
        self.progress.batch_started(
            len(batch), len(unique), cache_hits, max(workers, 1)
        )

        run_seconds = 0.0
        if pending:
            if workers <= 1:
                run_seconds = self._run_serial(pending, results)
            else:
                run_seconds = self._run_pool(pending, results, workers)

        report = BatchReport(
            total=len(batch),
            unique=len(unique),
            deduplicated=len(batch) - len(unique),
            cache_hits=cache_hits,
            executed=len(pending),
            workers=max(workers, 1),
            wall_seconds=time.perf_counter() - started,
            run_seconds=run_seconds,
        )
        self.last_report = report
        self.progress.batch_finished(report)

        # Fan results back out in submission order.  A dedup/cache hit can
        # hand back a result computed under a digest-equivalent but not
        # field-identical config (e.g. an ungated baseline recorded at a
        # different W0); re-stamp it so every caller sees exactly the
        # config it submitted.  The numbers are identical by construction.
        out: list[ExecResult] = []
        for digest, job in zip(digests, batch):
            result = results[digest]
            if result.config != job.config:
                result = dataclasses.replace(result, config=job.config)
            out.append(result)
        return out

    def run_one(self, job: RunJob) -> ExecResult:
        """Convenience wrapper: a batch of one."""
        return self.run([job])[0]

    # ------------------------------------------------------------------
    def _record(self, digest: str, job: RunJob, result: ExecResult,
                results: dict[str, ExecResult]) -> None:
        """Land one finished result — write-through to the store so
        completed work survives even if a later job in the batch fails."""
        results[digest] = result
        if self.store is not None:
            self.store.put(digest, result, job=job)

    def _run_serial(
        self,
        pending: list[tuple[str, RunJob]],
        results: dict[str, ExecResult],
    ) -> float:
        run_seconds = 0.0
        for done, (digest, job) in enumerate(pending, start=1):
            try:
                result, seconds = _timed_execute(job)
            except Exception as exc:
                raise ExecutionError(
                    f"job {job.label()} ({digest[:12]}) failed: {exc}"
                ) from exc
            self._record(digest, job, result, results)
            run_seconds += seconds
            self.progress.job_finished(done, len(pending), job, seconds)
        return run_seconds

    def _run_pool(
        self,
        pending: list[tuple[str, RunJob]],
        results: dict[str, ExecResult],
        workers: int,
    ) -> float:
        run_seconds = 0.0
        done = 0
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = {
                pool.submit(_timed_execute, job): (digest, job)
                for digest, job in pending
            }
            remaining = set(futures)
            while remaining:
                finished, remaining = wait(
                    remaining, return_when=FIRST_EXCEPTION
                )
                for future in finished:
                    digest, job = futures[future]
                    try:
                        result, seconds = future.result()
                    except Exception as exc:
                        for other in remaining:
                            other.cancel()
                        raise ExecutionError(
                            f"job {job.label()} ({digest[:12]}) failed in "
                            f"worker: {exc}"
                        ) from exc
                    self._record(digest, job, result, results)
                    run_seconds += seconds
                    done += 1
                    self.progress.job_finished(done, len(pending), job, seconds)
        return run_seconds
