"""Per-job status and wall-clock reporting for executor batches.

The executor drives a :class:`ProgressListener` through three hooks:
``batch_started`` (after dedup/cache resolution, so the listener knows
how much real work remains), ``job_finished`` (once per *executed* job,
in completion order) and ``batch_finished`` (with the final
:class:`~repro.exec.executor.BatchReport`).

:class:`ConsoleProgress` renders those hooks as single status lines —
to ``stderr`` by default so figure tables on ``stdout`` stay clean and
pipeable.
"""

from __future__ import annotations

import sys
from typing import IO, TYPE_CHECKING

if TYPE_CHECKING:
    from .executor import BatchReport
    from .jobs import RunJob

__all__ = ["ProgressListener", "NullProgress", "ConsoleProgress"]


class ProgressListener:
    """No-op base class; subclass and override what you need."""

    def batch_started(
        self, total: int, unique: int, cached: int, workers: int
    ) -> None:
        """A batch was resolved: ``total`` submitted jobs collapsed to
        ``unique`` distinct ones, of which ``cached`` came from the
        store; the rest run on ``workers`` worker(s)."""

    def job_finished(
        self, done: int, pending: int, job: "RunJob", seconds: float
    ) -> None:
        """One executed job completed (``done`` of ``pending``)."""

    def batch_finished(self, report: "BatchReport") -> None:
        """The whole batch resolved; ``report`` has the totals."""


#: Alias that makes call sites read naturally when progress is off.
NullProgress = ProgressListener


class ConsoleProgress(ProgressListener):
    """Human-readable one-line-per-event reporting."""

    def __init__(self, stream: IO[str] | None = None) -> None:
        self.stream = stream if stream is not None else sys.stderr

    def _emit(self, text: str) -> None:
        print(text, file=self.stream, flush=True)

    def batch_started(
        self, total: int, unique: int, cached: int, workers: int
    ) -> None:
        deduped = total - unique
        self._emit(
            f"exec: {total} job(s) -> {unique} unique "
            f"({deduped} deduplicated, {cached} cache hit(s)), "
            f"{unique - cached} to run on {workers} worker(s)"
        )

    def job_finished(
        self, done: int, pending: int, job: "RunJob", seconds: float
    ) -> None:
        self._emit(f"exec: [{done}/{pending}] {job.label()} ({seconds:.2f}s)")

    def batch_finished(self, report: "BatchReport") -> None:
        self._emit("exec: " + report.summary())
