"""Exact JSON codecs for configs, energy breakdowns and exec results.

The result store persists :class:`~repro.exec.jobs.ExecResult` values
as JSON lines; a cache hit must reproduce the original numbers *bit for
bit*, so the codecs here rely only on representations that round-trip
exactly: ints, strings, booleans, and floats via ``repr`` (Python's
``json`` emits the shortest repr, and ``float(repr(x)) == x`` for every
finite float).

Also home to :func:`canonical_json`, the deterministic encoding that
:class:`~repro.exec.jobs.RunJob` digests are computed over: sorted
keys, no whitespace, and a stable ``repr`` fallback for exotic
override values.
"""

from __future__ import annotations

import json
from typing import Any

from ..config import (
    BusConfig,
    CacheConfig,
    CommitConfig,
    DirectoryConfig,
    GatingConfig,
    MemoryConfig,
    SystemConfig,
)
from ..power.energy import EnergyBreakdown
from ..power.model import PowerModel
from ..power.states import ProcState

__all__ = [
    "canonical_json",
    "config_to_dict",
    "config_from_dict",
    "energy_to_dict",
    "energy_from_dict",
    "result_to_dict",
    "result_from_dict",
]


def canonical_json(payload: Any) -> str:
    """Deterministic JSON: sorted keys, compact separators, repr fallback."""
    return json.dumps(
        payload, sort_keys=True, separators=(",", ":"), default=repr
    )


# ----------------------------------------------------------------------
# SystemConfig
# ----------------------------------------------------------------------
_SECTION_TYPES = {
    "cache": CacheConfig,
    "bus": BusConfig,
    "directory": DirectoryConfig,
    "memory": MemoryConfig,
    "commit": CommitConfig,
    "gating": GatingConfig,
}


def config_to_dict(config: SystemConfig) -> dict[str, Any]:
    import dataclasses

    return dataclasses.asdict(config)


def config_from_dict(data: dict[str, Any]) -> SystemConfig:
    kwargs: dict[str, Any] = {}
    for key, value in data.items():
        section = _SECTION_TYPES.get(key)
        kwargs[key] = section(**value) if section is not None else value
    return SystemConfig(**kwargs)


# ----------------------------------------------------------------------
# EnergyBreakdown
# ----------------------------------------------------------------------
def energy_to_dict(energy: EnergyBreakdown) -> dict[str, Any]:
    return {
        "window": list(energy.window),
        "num_procs": energy.num_procs,
        "gated_run": energy.gated_run,
        "total": energy.total,
        "by_state": {
            state.name: [cycles, joules]
            for state, (cycles, joules) in energy.by_state.items()
        },
        "interval_total": energy.interval_total,
    }


def energy_from_dict(data: dict[str, Any]) -> EnergyBreakdown:
    return EnergyBreakdown(
        window=(data["window"][0], data["window"][1]),
        num_procs=data["num_procs"],
        gated_run=data["gated_run"],
        total=data["total"],
        by_state={
            ProcState[name]: (cycles, joules)
            for name, (cycles, joules) in data["by_state"].items()
        },
        interval_total=data["interval_total"],
    )


# ----------------------------------------------------------------------
# ExecResult
# ----------------------------------------------------------------------
def result_to_dict(result: "Any") -> dict[str, Any]:
    """Encode an :class:`~repro.exec.jobs.ExecResult` as plain data."""
    import dataclasses

    return {
        "workload": result.workload,
        "scale": result.scale,
        "config": config_to_dict(result.config),
        "power": dataclasses.asdict(result.power),
        "end_cycle": result.end_cycle,
        "parallel_start": result.parallel_start,
        "parallel_end": result.parallel_end,
        "energy": energy_to_dict(result.energy),
        "counters": dict(result.counters),
    }


def result_from_dict(data: dict[str, Any]) -> "Any":
    from .jobs import ExecResult  # local: jobs imports this module

    return ExecResult(
        workload=data["workload"],
        scale=data["scale"],
        config=config_from_dict(data["config"]),
        power=PowerModel(**data["power"]),
        end_cycle=data["end_cycle"],
        parallel_start=data["parallel_start"],
        parallel_end=data["parallel_end"],
        energy=energy_from_dict(data["energy"]),
        counters={str(k): int(v) for k, v in data["counters"].items()},
    )
