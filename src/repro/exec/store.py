"""Content-addressed on-disk result cache with pluggable backends.

The store maps a :class:`~repro.exec.jobs.RunJob` digest to its
:class:`~repro.exec.jobs.ExecResult`.  Persistence is delegated to a
:class:`~repro.exec.backends.StoreBackend` — the append-only
``results.jsonl`` log (advisory-locked, the default) or the
``results.db`` SQLite database (WAL mode, digest-keyed upserts) — while
this front-end owns the in-memory index, the replay semantics (last
record per digest wins, tombstones drop a digest), and the session
accounting.

Records written under a different :data:`~repro.exec.jobs.SCHEMA_VERSION`
— or that fail to parse (e.g. a run killed mid-append) — are skipped on
load and reported via :meth:`ResultStore.stats`.

Accounting contract: :meth:`ResultStore.get` and ``digest in store``
both count one session hit or miss (so cache-aware planning with ``in``
and executor reads with ``get`` show up identically in ``exec-status``
statistics); ``len()``, :meth:`labels`, :meth:`records` and
:meth:`stats` never touch the counters.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterator

from ..errors import ExecutionError
from ..obs import get_recorder
from .backends import StoreBackend, create_backend
from .jobs import SCHEMA_VERSION, ExecResult, RunJob
from .serialize import result_from_dict, result_to_dict

__all__ = ["ResultStore", "StoreStats", "PruneReport"]


@dataclass(frozen=True)
class PruneReport:
    """Outcome of one :meth:`ResultStore.prune` pass."""

    entries: int
    lines_dropped: int
    bytes_reclaimed: int
    #: live entries invalidated by a GC policy (age/label) before compaction
    expired: int = 0

    def summary(self) -> str:
        policy = f", {self.expired} expired by policy" if self.expired else ""
        return (
            f"pruned {self.lines_dropped} dead line(s) "
            f"({self.bytes_reclaimed} bytes reclaimed{policy}); "
            f"{self.entries} live entries kept"
        )


@dataclass(frozen=True)
class StoreStats:
    """Snapshot of one store's content and session traffic."""

    path: str
    entries: int
    file_bytes: int
    hits: int
    misses: int
    skipped_records: int
    schema: int = SCHEMA_VERSION
    backend: str = "jsonl"

    def summary(self) -> str:
        return (
            f"result store {self.path} [{self.backend}]: "
            f"{self.entries} entries "
            f"({self.file_bytes} bytes, schema v{self.schema}), "
            f"session hits/misses {self.hits}/{self.misses}, "
            f"{self.skipped_records} skipped records"
        )


class ResultStore:
    """Digest-keyed persistent cache of simulation results.

    Parameters
    ----------
    directory:
        The cache directory (created if missing).
    backend:
        ``"jsonl"``, ``"sqlite"``, ``"auto"`` (detect from the files
        already in the directory; new directories default to JSONL), or
        a ready :class:`~repro.exec.backends.StoreBackend` instance.
    """

    def __init__(
        self, directory: str | Path, backend: str | StoreBackend = "auto"
    ) -> None:
        self.directory = Path(directory)
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
        except OSError as exc:
            raise ExecutionError(
                f"cannot create cache directory {self.directory}: {exc}"
            ) from exc
        if isinstance(backend, StoreBackend):
            self.backend = backend
        else:
            self.backend = create_backend(self.directory, backend)
        self.path = self.backend.path
        self.hits = 0
        self.misses = 0
        self._skipped = 0
        self._index: dict[str, dict[str, Any]] = {}
        self._load()

    # ------------------------------------------------------------------
    def _load(self) -> None:
        self._index, self._skipped = self.backend.load()
        if self._skipped:
            recorder = get_recorder()
            recorder.count("store.skipped_records", self._skipped)
            if recorder.enabled:
                recorder.event(
                    "store.skipped_records",
                    path=str(self.path),
                    skipped=self._skipped,
                )

    # ------------------------------------------------------------------
    def get(self, digest: str) -> ExecResult | None:
        """Look up a result; counts a session hit or miss."""
        record = self._index.get(digest)
        if record is None:
            self.misses += 1
            get_recorder().count("store.misses")
            return None
        self.hits += 1
        get_recorder().count("store.hits")
        return result_from_dict(record["result"])

    def put(self, digest: str, result: ExecResult, job: RunJob | None = None) -> None:
        """Persist one result (idempotent; later writes win on replay)."""
        record: dict[str, Any] = {
            "digest": digest,
            "schema": SCHEMA_VERSION,
            "created": time.time(),
            "result": result_to_dict(result),
        }
        if job is not None:
            record["label"] = job.label()
        self.backend.append(record)
        self._index[digest] = record
        get_recorder().count("store.puts")

    def invalidate(self, digest: str) -> bool:
        """Drop one entry (appends a tombstone). Returns True if present."""
        present = digest in self._index
        if present:
            self.backend.append({"digest": digest, "tombstone": True})
            self._index.pop(digest, None)
            get_recorder().count("store.invalidations")
        return present

    def clear(self) -> int:
        """Drop every entry and truncate storage. Returns entries removed."""
        removed = len(self._index)
        self._index.clear()
        self._skipped = 0  # the skipped records are gone with the file
        self.backend.clear()
        return removed

    def compact(self) -> None:
        """Rewrite storage down to only live records (drops tombstones).

        The live set is re-read from storage atomically inside the
        backend — not taken from this instance's (possibly stale)
        index — so compacting a store that concurrent processes are
        appending to never deletes their records.  The in-memory index
        refreshes to the rewritten state.
        """
        with get_recorder().span("store.compact", path=str(self.path)) as span:
            self._index = self.backend.compact()
            span.annotate(entries=len(self._index))

    def prune(
        self,
        older_than_seconds: float | None = None,
        label: str | None = None,
    ) -> "PruneReport":
        """Compact the store — optionally expiring entries first — and
        report what was dropped.

        Append-oriented storage otherwise only grows: invalidations
        leave the dead record *and* a tombstone behind, crashed appends
        leave unparseable fragments, and schema bumps strand whole
        generations of records.  Pruning rewrites storage with exactly
        the live index — every live result survives byte-for-byte.

        GC policies (shared stores grow unboundedly without them):

        * ``older_than_seconds`` — expire entries whose ``created``
          timestamp is older than the cutoff (records written before
          timestamps existed count as infinitely old);
        * ``label`` — expire entries whose job label contains the text
          (e.g. a workload name, ``"[medium]"``, or ``"ungated"``).

        When both are given an entry must match **both** to expire, so
        ``--older-than 30 --label genome`` ages out only one workload's
        records.  Expiry appends tombstones through the normal
        invalidation path (safe against concurrent appenders), then
        compaction drops them from storage.
        """
        expired = 0
        if older_than_seconds is not None or label is not None:
            cutoff = (
                time.time() - older_than_seconds
                if older_than_seconds is not None
                else None
            )
            victims = [
                digest
                for digest, record in self._index.items()
                if (cutoff is None
                    or float(record.get("created", 0.0)) <= cutoff)
                and (label is None or label in str(record.get("label", "")))
            ]
            for digest in victims:
                self.invalidate(digest)
            expired = len(victims)
        # snapshot AFTER expiry: the dropped-line/byte accounting must
        # include the expired records and their just-appended tombstones
        records_before = self.backend.record_count()
        bytes_before = self.backend.file_bytes()
        self.compact()
        self._skipped = 0  # the skipped records are gone from storage now
        return PruneReport(
            entries=len(self._index),
            lines_dropped=records_before - len(self._index),
            bytes_reclaimed=bytes_before - self.backend.file_bytes(),
            expired=expired,
        )

    def merge_from(self, other: "ResultStore") -> int:
        """Upsert every live record from *other* into this store.

        Records travel verbatim (timestamps and labels included), so
        merging is idempotent — a record already present and identical
        is not rewritten — and byte-stable across backends, which is
        what ``repro suite merge`` relies on to fold shard stores from
        many hosts into one.  Returns the number of records written.
        """
        written = 0
        for digest, record in other._index.items():
            if self._index.get(digest) != record:
                self.backend.append(record)
                self._index[digest] = record
                written += 1
        return written

    def close(self) -> None:
        """Release backend resources (safe to call more than once)."""
        self.backend.close()

    # ------------------------------------------------------------------
    def __contains__(self, digest: str) -> bool:
        """Membership probe; counts a session hit or miss, like :meth:`get`."""
        present = digest in self._index
        if present:
            self.hits += 1
            get_recorder().count("store.hits")
        else:
            self.misses += 1
            get_recorder().count("store.misses")
        return present

    def __len__(self) -> int:
        return len(self._index)

    def labels(self) -> Iterator[tuple[str, str]]:
        """(digest, label) pairs for every entry (label may be '')."""
        for digest, record in self._index.items():
            yield digest, record.get("label", "")

    def records(self) -> Iterator[dict[str, Any]]:
        """Live record dicts, exactly as persisted (defensive copies)."""
        for record in self._index.values():
            yield dict(record)

    def stats(self) -> StoreStats:
        return StoreStats(
            path=str(self.path),
            entries=len(self._index),
            file_bytes=self.backend.file_bytes(),
            hits=self.hits,
            misses=self.misses,
            skipped_records=self._skipped,
            backend=self.backend.name,
        )
