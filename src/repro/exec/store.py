"""Content-addressed on-disk result cache (append-only JSON lines).

The store maps a :class:`~repro.exec.jobs.RunJob` digest to its
:class:`~repro.exec.jobs.ExecResult`.  Records append to one
``results.jsonl`` file inside the cache directory; on open, the file is
replayed into an in-memory index where the *last* record per digest
wins.  Invalidations append tombstone records, so the file remains a
faithful log and the store never rewrites history except in
:meth:`ResultStore.clear`/:meth:`ResultStore.compact`.

Records written under a different :data:`~repro.exec.jobs.SCHEMA_VERSION`
— or lines that fail to parse (e.g. a run killed mid-append) — are
skipped on load and reported via :meth:`ResultStore.stats`.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterator

from ..errors import ExecutionError
from .jobs import SCHEMA_VERSION, ExecResult, RunJob
from .serialize import result_from_dict, result_to_dict

__all__ = ["ResultStore", "StoreStats", "PruneReport"]

_FILENAME = "results.jsonl"


@dataclass(frozen=True)
class PruneReport:
    """Outcome of one :meth:`ResultStore.prune` pass."""

    entries: int
    lines_dropped: int
    bytes_reclaimed: int

    def summary(self) -> str:
        return (
            f"pruned {self.lines_dropped} dead line(s) "
            f"({self.bytes_reclaimed} bytes reclaimed); "
            f"{self.entries} live entries kept"
        )


@dataclass(frozen=True)
class StoreStats:
    """Snapshot of one store's content and session traffic."""

    path: str
    entries: int
    file_bytes: int
    hits: int
    misses: int
    skipped_records: int
    schema: int = SCHEMA_VERSION

    def summary(self) -> str:
        return (
            f"result store {self.path}: {self.entries} entries "
            f"({self.file_bytes} bytes, schema v{self.schema}), "
            f"session hits/misses {self.hits}/{self.misses}, "
            f"{self.skipped_records} skipped records"
        )


class ResultStore:
    """Digest-keyed persistent cache of simulation results."""

    def __init__(self, directory: str | Path):
        self.directory = Path(directory)
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
        except OSError as exc:
            raise ExecutionError(
                f"cannot create cache directory {self.directory}: {exc}"
            ) from exc
        self.path = self.directory / _FILENAME
        self.hits = 0
        self.misses = 0
        self._skipped = 0
        self._index: dict[str, dict[str, Any]] = {}
        self._load()

    # ------------------------------------------------------------------
    def _load(self) -> None:
        self._index.clear()
        self._skipped = 0
        if not self.path.exists():
            return
        with self.path.open("r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                    digest = record["digest"]
                except (ValueError, KeyError, TypeError):
                    self._skipped += 1
                    continue
                if record.get("tombstone"):
                    self._index.pop(digest, None)
                    continue
                if record.get("schema") != SCHEMA_VERSION:
                    self._skipped += 1
                    continue
                self._index[digest] = record

    def _append(self, record: dict[str, Any]) -> None:
        with self.path.open("a", encoding="utf-8") as fh:
            fh.write(json.dumps(record, separators=(",", ":")) + "\n")

    # ------------------------------------------------------------------
    def get(self, digest: str) -> ExecResult | None:
        """Look up a result; counts a session hit or miss."""
        record = self._index.get(digest)
        if record is None:
            self.misses += 1
            return None
        self.hits += 1
        return result_from_dict(record["result"])

    def put(self, digest: str, result: ExecResult, job: RunJob | None = None) -> None:
        """Persist one result (idempotent; later writes win on replay)."""
        record: dict[str, Any] = {
            "digest": digest,
            "schema": SCHEMA_VERSION,
            "created": time.time(),
            "result": result_to_dict(result),
        }
        if job is not None:
            record["label"] = job.label()
        self._append(record)
        self._index[digest] = record

    def invalidate(self, digest: str) -> bool:
        """Drop one entry (appends a tombstone). Returns True if present."""
        present = digest in self._index
        if present:
            self._append({"digest": digest, "tombstone": True})
            self._index.pop(digest, None)
        return present

    def clear(self) -> int:
        """Drop every entry and truncate the log. Returns entries removed."""
        removed = len(self._index)
        self._index.clear()
        if self.path.exists():
            self.path.write_text("")
        return removed

    def compact(self) -> None:
        """Rewrite the log with only the live records (drops tombstones)."""
        with self.path.open("w", encoding="utf-8") as fh:
            for record in self._index.values():
                fh.write(json.dumps(record, separators=(",", ":")) + "\n")

    def prune(self) -> "PruneReport":
        """Compact the log and report what was dropped.

        The append-only log otherwise only grows: invalidations leave
        the dead record *and* a tombstone line behind, crashed appends
        leave unparseable fragments, and schema bumps strand whole
        generations of records.  Pruning rewrites the file with exactly
        the live index — every live result survives byte-for-byte.
        """
        lines_before = 0
        if self.path.exists():
            with self.path.open("r", encoding="utf-8") as fh:
                lines_before = sum(1 for line in fh if line.strip())
        bytes_before = self.path.stat().st_size if self.path.exists() else 0
        self.compact()
        self._skipped = 0  # the skipped records are gone from the file now
        return PruneReport(
            entries=len(self._index),
            lines_dropped=lines_before - len(self._index),
            bytes_reclaimed=bytes_before - self.path.stat().st_size,
        )

    # ------------------------------------------------------------------
    def __contains__(self, digest: str) -> bool:
        return digest in self._index

    def __len__(self) -> int:
        return len(self._index)

    def labels(self) -> Iterator[tuple[str, str]]:
        """(digest, label) pairs for every entry (label may be '')."""
        for digest, record in self._index.items():
            yield digest, record.get("label", "")

    def stats(self) -> StoreStats:
        file_bytes = self.path.stat().st_size if self.path.exists() else 0
        return StoreStats(
            path=str(self.path),
            entries=len(self._index),
            file_bytes=file_bytes,
            hits=self.hits,
            misses=self.misses,
            skipped_records=self._skipped,
        )
