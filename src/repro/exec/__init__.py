"""Parallel experiment execution with content-addressed result caching.

``repro.exec`` turns the paper's evaluation grids — workload × config ×
:math:`W_0` × processor count, Figs. 3–7 — from a serial loop into a
batch of independent, deduplicated, cacheable jobs:

* :mod:`~repro.exec.jobs` — :class:`RunJob`, a picklable, hashable run
  request with a stable SHA-256 content digest, and :class:`ExecResult`,
  the condensed process-boundary result.
* :mod:`~repro.exec.executor` — :class:`Executor`, serial or
  ``ProcessPoolExecutor``-backed fan-out with in-batch dedup and
  deterministic result ordering; :class:`BatchReport` totals.
* :mod:`~repro.exec.store` — :class:`ResultStore`, a digest-keyed
  on-disk cache with tombstone invalidation, backed by a pluggable
  :mod:`~repro.exec.backends` layer (advisory-locked JSON lines, or
  SQLite in WAL mode for many concurrent writer processes).
* :mod:`~repro.exec.progress` — per-job status and wall-clock/speed-up
  reporting.

Quickstart::

    from repro import SystemConfig
    from repro.exec import Executor, ResultStore, RunJob
    from repro.harness.runner import workload

    exe = Executor(jobs=4, store=ResultStore(".repro-cache"))
    spec = workload("intruder", scale="small")
    jobs = [RunJob(spec, SystemConfig(num_procs=p)) for p in (4, 8, 16)]
    results = exe.run(jobs)           # parallel, cached, in order
    print(exe.last_report.summary())

The harness layers (:mod:`repro.harness.sweep`,
:mod:`repro.harness.compare`, :mod:`repro.harness.experiments`) accept
an ``executor=`` argument and submit through this subsystem; the CLI
exposes it as ``--jobs N``, ``--cache-dir PATH``, ``--no-cache`` and
the ``exec-status`` subcommand.
"""

from __future__ import annotations

from .backends import (
    BACKEND_CHOICES,
    BACKENDS,
    JsonlBackend,
    SqliteBackend,
    StoreBackend,
    create_backend,
    detect_backend,
)
from .executor import BatchExecutionError, BatchReport, Executor, JobFailure
from .jobs import SCHEMA_VERSION, ExecResult, RunJob, execute_job
from .progress import ConsoleProgress, NullProgress, ProgressListener
from .store import PruneReport, ResultStore, StoreStats

__all__ = [
    "RunJob",
    "ExecResult",
    "execute_job",
    "SCHEMA_VERSION",
    "Executor",
    "BatchReport",
    "BatchExecutionError",
    "JobFailure",
    "ResultStore",
    "StoreStats",
    "PruneReport",
    "StoreBackend",
    "JsonlBackend",
    "SqliteBackend",
    "BACKENDS",
    "BACKEND_CHOICES",
    "create_backend",
    "detect_backend",
    "ProgressListener",
    "NullProgress",
    "ConsoleProgress",
]
