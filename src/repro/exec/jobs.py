"""The job model: one simulation run as a picklable, hashable value.

A :class:`RunJob` captures *everything* that determines a run's outcome
— the workload spec (name, scale, seed, overrides), the full
:class:`~repro.config.SystemConfig`, the power-model fingerprint and
the validation switch — and renders it as a stable content digest
(SHA-256 over a canonical JSON encoding).  Two jobs with equal digests
are guaranteed to produce numerically identical results, which is what
lets the executor deduplicate work inside a batch and the result store
answer repeat runs from disk.

Digest normalization
--------------------
An ungated run cannot depend on gating-only parameters.  When
``config.gating.enabled`` is ``False`` and the configured contention
manager declares its ungated retry schedule independent of :math:`W_0`
(see :attr:`~repro.cm.base.ContentionManager.ungated_w0_independent`),
the digest zeroes out ``gating.w0`` — so one shared ungated baseline
serves an entire Fig. 7 :math:`W_0` sweep instead of one baseline per
sweep point.

:class:`ExecResult` is the condensed, process-boundary-friendly form of
:class:`~repro.harness.runner.RunResult`: the same headline numbers
(parallel time, energy breakdown, counters) without the raw timelines
and memory snapshot, so it pickles cheaply across workers and
round-trips exactly through JSON (see :mod:`repro.exec.serialize`).

Replicate packs
---------------
Seed replicates of one scenario — jobs identical except for the seed
fields — are the common bulk shape of statistical runs.
:func:`replicate_key` is the grouping digest (the job payload with
both seed slots zeroed) and :class:`ReplicatePack` +
:func:`execute_pack` are the worker-side shape: all members of a seed
family execute sequentially inside ONE worker process (warm
interpreter, warm import graph, one pool round-trip), while each
member still produces its own independently digest-keyed
:class:`ExecResult` — the store, dedup, sharding and planning layers
never see packs at all.
"""

from __future__ import annotations

import dataclasses
import hashlib
import os
import time
import traceback
from dataclasses import dataclass, field
from functools import cached_property
from typing import TYPE_CHECKING, Any, Sequence

from ..config import SystemConfig
from ..metrics import TxMetricsMixin
from ..power.energy import EnergyBreakdown
from ..power.model import PowerModel
from .serialize import canonical_json

if TYPE_CHECKING:  # imported lazily at run time to avoid a package cycle
    from ..harness.runner import RunResult, RunReuse, WorkloadSpec

__all__ = [
    "SCHEMA_VERSION",
    "RunJob",
    "ExecResult",
    "execute_job",
    "replicate_key",
    "ReplicatePack",
    "PackMemberOutcome",
    "PackStats",
    "execute_pack",
    "reset_enabled_from_env",
]

#: environment switch disabling machine reset-reuse inside replicate
#: packs (mirror of ``REPRO_NO_PACKS``); any non-empty value other than
#: ``0``/``false``/``no`` disables — members then rebuild per seed
NO_RESET_ENV = "REPRO_NO_RESET"


def reset_enabled_from_env() -> bool:
    """Pack reset-reuse default: on unless ``REPRO_NO_RESET`` is set."""
    value = os.environ.get(NO_RESET_ENV, "").strip().lower()
    return value in ("", "0", "false", "no")

#: Bump whenever job semantics or the result encoding change in a way
#: that invalidates previously cached results; the store skips records
#: written under a different schema.
SCHEMA_VERSION = 1


def _ungated_w0_independent(config: SystemConfig) -> bool:
    """Does the configured CM ignore :math:`W_0` when gating is off?"""
    from ..cm.registry import create_cm

    return create_cm(config.gating, config.seed).ungated_w0_independent


@dataclass(frozen=True)
class RunJob:
    """One (workload spec × configuration × power model) run request."""

    spec: "WorkloadSpec"
    config: SystemConfig
    power: PowerModel = field(default_factory=PowerModel.derive)
    validate: bool = True

    def payload(self) -> dict[str, Any]:
        """The canonical content of this job, as plain JSON-able data."""
        config = dataclasses.asdict(self.config)
        if not self.config.gating.enabled and _ungated_w0_independent(
            self.config
        ):
            # The gating protocol is off and the CM's ungated retry
            # schedule ignores W0 — normalize it out of the digest so
            # one baseline serves a whole W0 sweep.
            config["gating"]["w0"] = 0
        return {
            "schema": SCHEMA_VERSION,
            "workload": {
                "name": self.spec.name,
                "scale": self.spec.scale,
                "seed": self.spec.seed,
                "overrides": [list(pair) for pair in self.spec.overrides],
            },
            "config": config,
            "power": dataclasses.asdict(self.power),
            "validate": self.validate,
        }

    @cached_property
    def digest(self) -> str:
        """Stable SHA-256 content digest (hex) of the canonical payload."""
        return hashlib.sha256(canonical_json(self.payload()).encode()).hexdigest()

    def label(self) -> str:
        """Short human-readable description for progress reporting."""
        gating = self.config.gating
        mode = f"gated w0={gating.w0}" if gating.enabled else "ungated"
        return (
            f"{self.spec.name}[{self.spec.scale}] "
            f"x{self.config.num_procs} {mode}"
        )


@dataclass(frozen=True)
class ExecResult(TxMetricsMixin):
    """Condensed outcome of one job — everything the harness layers use.

    Mirrors the read API of :class:`~repro.harness.runner.RunResult`
    (``parallel_time``, ``energy``, ``counters``, and the
    :class:`~repro.metrics.TxMetricsMixin` metrics, shared with it) but
    drops the raw timelines, memory snapshot and stats objects, so it is
    cheap to ship across a process pool and serializes exactly to JSON.
    """

    workload: str
    scale: str
    config: SystemConfig
    power: PowerModel
    end_cycle: int
    parallel_start: int
    parallel_end: int
    energy: EnergyBreakdown
    counters: dict[str, int]

    @property
    def parallel_time(self) -> int:
        """The paper's N (N1 ungated, N2 gated)."""
        return self.parallel_end - self.parallel_start

    @classmethod
    def from_run_result(
        cls, result: "RunResult", power: PowerModel
    ) -> "ExecResult":
        return cls(
            workload=result.workload,
            scale=result.scale,
            config=result.config,
            power=power,
            end_cycle=result.machine_result.end_cycle,
            parallel_start=result.machine_result.parallel_start,
            parallel_end=result.machine_result.parallel_end,
            energy=result.energy,
            counters=dict(result.counters),
        )


def execute_job(job: RunJob, reuse: "RunReuse | None" = None) -> ExecResult:
    """Worker entry point: run one job in the current process.

    Each invocation wires a fresh deterministic engine/machine from the
    job's spec and config, so executing in a pool worker produces
    bit-identical numbers to executing inline (the engine has no global
    state and every seed travels inside the job).  With ``reuse`` (the
    pack warm path), the machine is reset instead of rebuilt — pinned
    bit-identical by :meth:`repro.htm.machine.Machine.reset`'s contract
    and the rebuild-vs-reset parity tests.
    """
    from ..harness.runner import run_workload  # lazy: avoids import cycle

    result = run_workload(
        job.spec, job.config, power_model=job.power, validate=job.validate,
        reuse=reuse,
    )
    return ExecResult.from_run_result(result, job.power)


# ----------------------------------------------------------------------
# replicate packs
# ----------------------------------------------------------------------
def replicate_key(job: RunJob) -> str:
    """The seed-family grouping digest of a job.

    The job's canonical payload with both seed slots — the workload
    seed and ``config.seed`` — zeroed out, hashed like the job digest.
    Jobs that differ *only* in their seeds share a replicate key; any
    other difference (workload, scale, overrides, gating, power model)
    keeps them apart, so packing by this key can never co-schedule
    jobs that are not seed replicates of one another.
    """
    payload = job.payload()
    payload["workload"]["seed"] = 0
    payload["config"]["seed"] = 0
    return hashlib.sha256(canonical_json(payload).encode()).hexdigest()


@dataclass(frozen=True)
class ReplicatePack:
    """All pending seed replicates of one spec, as one dispatch unit."""

    members: tuple[RunJob, ...]

    def __post_init__(self) -> None:
        if not self.members:
            raise ValueError("a replicate pack needs at least one member")

    @cached_property
    def key(self) -> str:
        """The shared :func:`replicate_key` of every member."""
        return replicate_key(self.members[0])

    def label(self) -> str:
        first = self.members[0]
        return f"{first.label()} pack of {len(self.members)} seed(s)"


@dataclass(frozen=True)
class PackMemberOutcome:
    """One member's result (or failure) from a pack execution.

    Exactly one of ``result`` and ``error`` is set; a member failure
    never discards its siblings' finished work — the executor lands
    every success in the pack before surfacing the failures.
    """

    result: ExecResult | None
    seconds: float
    error: str | None = None
    traceback: str | None = None
    profile_rows: list[tuple[str, int, float, float]] | None = None


@dataclass(frozen=True)
class PackStats:
    """Amortization tallies of one pack execution (obs counters)."""

    #: members served by :meth:`Machine.reset` instead of a rebuild
    reset_reuses: int = 0
    #: members whose workload build came from the shared prep cache
    shared_prep_hits: int = 0


def execute_pack(
    jobs: Sequence[RunJob], profile: bool = False
) -> tuple[list[PackMemberOutcome], PackStats]:
    """Worker entry point: run a seed family sequentially in one process.

    Each member runs through the exact same :func:`execute_job` path a
    standalone dispatch uses — same seeds travelling inside the job —
    so pack results are bit-identical to per-process results by
    construction.  The pack amortizes process/dispatch overhead plus,
    via a shared :class:`~repro.harness.runner.RunReuse` (unless
    ``REPRO_NO_RESET`` is set), the per-seed constant factor: the
    machine topology is built once and reset between members, and
    seed-invariant workload preparation is cached across the family.
    Per-member exceptions are caught so one bad seed cannot take down
    the rest of the family; a failure also drops the cached machine
    (it may be mid-run), so the next member rebuilds from scratch.
    """
    from ..harness.runner import RunReuse  # lazy: avoids import cycle

    reuse = RunReuse() if reset_enabled_from_env() else None
    outcomes: list[PackMemberOutcome] = []
    for job in jobs:
        started = time.perf_counter()
        try:
            if profile:
                from ..obs.profile import profile_call

                result, rows = profile_call(execute_job, job, reuse)
            else:
                result, rows = execute_job(job, reuse), None
        except Exception as exc:
            if reuse is not None:
                reuse.discard_machine()
            outcomes.append(
                PackMemberOutcome(
                    result=None,
                    seconds=time.perf_counter() - started,
                    error=str(exc),
                    traceback="".join(traceback.format_exception(exc)),
                )
            )
        else:
            outcomes.append(
                PackMemberOutcome(
                    result=result,
                    seconds=time.perf_counter() - started,
                    profile_rows=rows,
                )
            )
    stats = PackStats(
        reset_reuses=reuse.machine_resets if reuse is not None else 0,
        shared_prep_hits=reuse.prep_hits if reuse is not None else 0,
    )
    return outcomes, stats
