"""Clock-gate-on-abort protocol (system S5 in DESIGN.md).

* :mod:`~repro.gating.table` — the per-directory table of Fig. 1
  (aborter processor, aborter transaction id, abort counter, renew
  counter, gating timer, OFF bit).
* :mod:`~repro.gating.protocol` — the gate/ungate state machine of
  Section V (Stop-Clock on abort, timer expiry, the marked-committer
  OR circuit, TxInfoReq renewal check, stale-OFF recovery).
"""

from .table import GatingEntry, GatingTable
from .protocol import GatingUnit

__all__ = ["GatingEntry", "GatingTable", "GatingUnit"]
