"""The gate/ungate protocol of Section V, one unit per directory.

Lifecycle of a gating episode (paper Fig. 2):

1. **Abort** — a commit flush at this directory invalidates a line the
   victim speculatively read.  The directory logs the aborter processor
   id, bumps the abort counter (resetting the renew counter), presets
   the timer to the contention manager's :math:`W_t(N_a, N_r)`, sets
   the OFF bit, and sends Stop-Clock with the invalidation
   (:meth:`GatingUnit.on_abort`).  A ``TxInfoReq`` round-trip to the
   committer fills the "Aborter Tx Id" field.
2. **Expiry** — the timer fires; after the multi-cycle high-fan-in OR
   over the Marked committer ids (Fig. 2e):

   * aborter not marked here → send "on";
   * aborter marked → ``TxInfoReq`` to it; a null reply (aborter gated
     or not in a transaction) or a different transaction id → "on";
   * same transaction id → **renew**: bump the renew counter and re-arm
     the timer with the new (longer) :math:`W_t`.

3. **Stale-OFF recovery** — any load/store/flush received from a
   processor marked OFF proves some other directory already woke it;
   the OFF bit is cleared and the local timer cancelled.

The protocol deliberately biases toward turning processors back on
(Section VI: "the protocol described in the previous section biases
slightly more on turning on the processor"); every uncertain branch
resolves to "on".
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..cm.base import ContentionManager
from ..config import SystemConfig
from ..mem.messages import TurnOn
from ..sim.stats import StatsRegistry
from ..sim.trace import NullTrace
from .table import GatingEntry, GatingTable

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..htm.machine import Machine
    from ..mem.directory import Directory

__all__ = ["GatingUnit"]


class GatingUnit:
    """Gating controller attached to one directory."""

    def __init__(
        self,
        directory: "Directory",
        machine: "Machine",
        cm: ContentionManager,
        config: SystemConfig,
        stats: StatsRegistry,
        trace: NullTrace,
    ):
        self._dir = directory
        self._m = machine
        self._cm = cm
        self._config = config
        self._stats = stats
        self._trace = trace
        self._trace_on = trace.enabled
        self.table = GatingTable(config.num_procs)
        self._entries = self.table.entries
        self._prefix = f"dir{directory.dir_id}.gating"
        self._c_aborts_recorded = stats.counter(
            f"{self._prefix}.aborts_recorded"
        )
        self._c_renewals = stats.counter(f"{self._prefix}.renewals")
        self._c_renewals_global = stats.counter("gating.renewals")
        self._c_turn_ons = stats.counter(f"{self._prefix}.turn_ons")
        self._c_stale_off_cleared = stats.counter(
            f"{self._prefix}.stale_off_cleared"
        )
        self._h_window = stats.histogram("gating.window")

    # ------------------------------------------------------------------
    def reset(self, cm: ContentionManager, config: SystemConfig) -> None:
        """Restore pristine table state and rebind the per-run policy.

        The contention manager is seed-dependent (randomized policies
        draw from a seeded RNG), so :meth:`repro.htm.machine.Machine.reset`
        creates a fresh one per member and passes it here along with the
        member's config.  Entries are reset in place — the protocol
        layer's bound ``entries`` list survives.
        """
        self._cm = cm
        self._config = config
        for entry in self._entries:
            entry.reset()

    # ------------------------------------------------------------------
    # 1. abort path
    # ------------------------------------------------------------------
    def on_abort(self, victim: int, aborter: int, aborter_site: str | None) -> bool:
        """Record an abort of ``victim`` by ``aborter`` at this directory.

        ``aborter_site`` is the committing transaction's identity,
        carried by the flush request (see
        :class:`~repro.mem.messages.FlushRequest` for why this replaces
        the paper's *initial* TxInfoReq round-trip; the renewal-check
        TxInfoReq below is unchanged).

        Returns True when a Stop-Clock command should ride with the
        invalidation (i.e. this directory did not already believe the
        victim to be off).
        """
        now = self._m.engine.now
        entry = self.table.entry(victim)
        send_stop = not entry.off

        entry.cancel_timer()  # re-arm below; bumps epoch
        entry.bump_abort(self._config.gating.abort_counter_max)
        entry.aborter_proc = aborter
        entry.aborter_site = aborter_site
        entry.off = True
        entry.gated_at = now
        # Momentum (Section VI future work): the victim's invested work
        # at abort time, learned from the abort acknowledgement.  Used
        # only by momentum-aware policies; Eq. 8 ignores it.
        entry.momentum = self._m.proc(victim).attempt_age()
        self._arm_timer(entry)

        self._c_aborts_recorded.add()
        if self._trace_on:
            self._trace.emit(
                now,
                "gate.record",
                directory=self._dir.dir_id,
                victim=victim,
                aborter=aborter,
                abort_count=entry.abort_count,
            )
        return send_stop

    def _arm_timer(self, entry: GatingEntry) -> None:
        # Eq. 8 precondition: a window only exists for a recorded abort.
        # Both callers uphold this (on_abort bumps first, _renew checks
        # and ends stale episodes in a Turn-On) — keep the invariant
        # local so no future caller can reintroduce the PR 5 crash.
        assert entry.abort_count >= 1, (
            f"gating window armed with no abort recorded (proc {entry.proc})"
        )
        window = self._cm.gating_window_ex(
            entry.abort_count, entry.renew_count, entry.momentum
        )
        self._h_window.record(window)
        epoch = entry.epoch
        entry.timer_event = self._m.engine.schedule(
            window, self._timer_expired, entry, epoch
        )

    # ------------------------------------------------------------------
    # 2. expiry path
    # ------------------------------------------------------------------
    def _timer_expired(self, entry: GatingEntry, epoch: int) -> None:
        # Note: the chain deliberately does NOT check the OFF bit.  The
        # bit is the directory's *belief* and may be cleared by stale-OFF
        # recovery while the victim is in fact still frozen (the request
        # that cleared it could have been in flight when the Stop-Clock
        # landed).  A gating episode's timer chain therefore always runs
        # to completion and ends in a Turn-On — redundant Turn-Ons are
        # ignored by running processors, and this is what makes the
        # protocol deadlock-free ("biases slightly more on turning on").
        if entry.epoch != epoch:
            return
        entry.timer_event = None
        # The high fan-in bitwise OR over Marked processor ids "will
        # take multiple cycles ... extending the clock gating period
        # further by a small amount of time."
        self._m.engine.schedule(
            self._config.effective_or_circuit_cycles, self._check_ungate, entry, epoch
        )

    def _check_ungate(self, entry: GatingEntry, epoch: int) -> None:
        if entry.epoch != epoch:
            return
        aborter = entry.aborter_proc
        if aborter is None or aborter not in self._dir.marked:
            self._send_on(entry, reason="aborter-absent")
            return
        if entry.aborter_site is None:
            # Aborter info never arrived (or was null); bias to "on".
            self._send_on(entry, reason="no-aborter-tx")
            return
        self._m.query_tx_site(
            aborter, lambda site: self._after_tx_info(entry, epoch, site)
        )

    def _after_tx_info(self, entry: GatingEntry, epoch: int, site: str | None) -> None:
        if entry.epoch != epoch:
            return
        if site is not None and site == entry.aborter_site:
            self._renew(entry)
        else:
            # Null reply (aborter itself gated / between transactions)
            # or a different transaction: turn the victim on.
            self._send_on(entry, reason="aborter-moved-on")

    def _renew(self, entry: GatingEntry) -> None:
        if entry.abort_count < 1:
            # The victim committed since this episode began (stale-OFF
            # recovery let it resume; notify_commit reset its counters)
            # while this timer chain was still in flight.  The episode
            # is over: renewing would query Eq. 8 with N_a = 0.  End the
            # chain in its guaranteed Turn-On instead.
            self._send_on(entry, reason="victim-committed")
            return
        entry.renew_count += 1
        self._c_renewals.add()
        self._c_renewals_global.add()
        if self._trace_on:
            self._trace.emit(
                self._m.engine.now,
                "gate.renew",
                directory=self._dir.dir_id,
                victim=entry.proc,
                abort_count=entry.abort_count,
                renew_count=entry.renew_count,
            )
        self._arm_timer(entry)

    def _send_on(self, entry: GatingEntry, reason: str) -> None:
        entry.off = False
        entry.cancel_timer()
        self._c_turn_ons.add()
        if self._trace_on:
            self._trace.emit(
                self._m.engine.now,
                "gate.turn_on",
                directory=self._dir.dir_id,
                victim=entry.proc,
                reason=reason,
            )
        proc = self._m.proc(entry.proc)
        self._m.bus.send_ctrl(
            proc.receive_turn_on, TurnOn(entry.proc, self._dir.dir_id)
        )

    # ------------------------------------------------------------------
    # 3. stale-OFF recovery
    # ------------------------------------------------------------------
    def notify_access(self, proc: int, sent_at: int) -> None:
        """A request issued by ``proc`` arrived: is it proof of life?

        Only requests *issued after* this gating episode began count —
        a gated processor cannot issue requests, so a later issue time
        proves some other directory already turned it on.  Requests
        that were in flight when the Stop-Clock landed prove nothing
        and must not cancel the wake-up timer (deadlock otherwise).
        """
        entry = self._entries[proc]
        if entry.off and sent_at > entry.gated_at:
            # Paper: "it resets the OFF bit as well in its local table."
            # Only the bit — the timer chain keeps running and delivers
            # a redundant Turn-On (see _timer_expired for why this is
            # load-bearing for deadlock freedom).
            entry.off = False
            self._c_stale_off_cleared.add()
            if self._trace_on:
                self._trace.emit(
                    self._m.engine.now,
                    "gate.stale_off",
                    directory=self._dir.dir_id,
                    proc=proc,
                )

    # ------------------------------------------------------------------
    def notify_commit(self, proc: int) -> None:
        """``proc`` committed: reset its abort counter here."""
        self.table.entry(proc).reset_on_commit()
