"""The additional directory table proposed in Section III (Fig. 1).

One entry per processor, holding:

=================  ====================================================
Field              Purpose
=================  ====================================================
aborter_proc       processor id that aborted this victim here
aborter_site       id of the aborting transaction ("Aborter Tx Id" —
                   the PC that began it; filled in by a TxInfoReq
                   round-trip, so transiently ``None``)
abort_count        up-counter of aborts of the victim's current
                   transaction (8-bit, saturating at 255; reset to 0
                   when the victim commits)
renew_count        times the gating period was renewed at the current
                   abort level (reset when abort_count increments)
timer ("Wt")       expiry handled by the protocol layer; the table
                   stores the scheduled engine event
off                current state bit: 1 = this directory believes the
                   processor is clock gated
=================  ====================================================

Counters live per *directory* (local knowledge): the same victim may
hold different counts in different directories, exactly as the paper
allows ("a directory turns off or turns on a processor based on its
local knowledge about the abort behavior of the processor").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..sim.engine import Event

__all__ = ["GatingEntry", "GatingTable"]


@dataclass(slots=True)
class GatingEntry:
    """Per-(directory, processor) gating state."""

    proc: int
    aborter_proc: int | None = None
    aborter_site: str | None = None
    abort_count: int = 0
    renew_count: int = 0
    off: bool = False
    #: cycle at which the current gating episode began (for filtering
    #: in-flight requests out of stale-OFF recovery)
    gated_at: int = -1
    #: victim's invested work at abort time (momentum-aware policies)
    momentum: int = 0
    #: live timer event, if any (engine Event; cancelled on re-arm)
    timer_event: Optional[Event] = field(default=None, repr=False)
    #: guards stale timer/TxInfo callbacks after the entry is re-armed
    epoch: int = 0

    def bump_abort(self, saturation: int) -> None:
        """Increment the abort counter (saturating); reset renew count.

        "Renew count field is reset to 0 whenever Abort count field is
        incremented."
        """
        if self.abort_count < saturation:
            self.abort_count += 1
        self.renew_count = 0

    def reset_on_commit(self) -> None:
        """"Abort count field is reset to 0 whenever a thread commits."""
        self.abort_count = 0
        self.renew_count = 0

    def cancel_timer(self) -> None:
        if self.timer_event is not None:
            self.timer_event.cancel()
            self.timer_event = None
        self.epoch += 1

    def reset(self) -> None:
        """Restore field defaults (machine-reset path).

        The timer event is dropped without cancelling: resets only run
        between simulations, when the engine queue has already been
        cleared, so the handle is expired.  ``epoch`` returns to 0 —
        safe for the same reason (no in-flight callbacks can observe
        the rollback).
        """
        self.aborter_proc = None
        self.aborter_site = None
        self.abort_count = 0
        self.renew_count = 0
        self.off = False
        self.gated_at = -1
        self.momentum = 0
        self.timer_event = None
        self.epoch = 0


class GatingTable:
    """All per-processor entries of one directory."""

    def __init__(self, num_procs: int):
        #: public for the protocol layer's hot path: ``notify_access``
        #: runs once per request arrival at a gated-config directory,
        #: and indexing this list directly beats an ``entry()`` call.
        self.entries = [GatingEntry(p) for p in range(num_procs)]
        self._entries = self.entries

    def entry(self, proc: int) -> GatingEntry:
        return self._entries[proc]

    def __iter__(self):
        return iter(self._entries)

    def off_procs(self) -> list[int]:
        """Processors this directory currently believes are gated."""
        return [e.proc for e in self._entries if e.off]
