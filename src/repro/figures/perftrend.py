"""The ``perf-trend`` artifact: the committed bench trajectory.

Every performance PR leaves a ``BENCH_*.json`` behind (see
docs/performance.md) — a plain bench payload (``kind: "bench"``) or a
before/after comparison (``kind: "comparison"``).  This module renders
that committed series through the regular figures pipeline: one row per
(file, label, benchmark) point with its throughput, so the repository's
performance history is a first-class, provenance-stamped artifact
instead of loose JSON files.

Staleness plugs into the normal digest machinery via
:func:`bench_fingerprint` (the :attr:`FigureSpec.fingerprint` hook):
the figure digest covers the content hash of every bench file, so
committing a new ``BENCH_*.json`` — or editing one — marks the artifact
stale exactly like a changed scenario suite would, while leaving every
simulation-fed figure's digest untouched.

``REPRO_BENCH_DIR`` overrides where the series is read from (tests
point it at fixtures; the default is the repository root, where the
bench files are committed).
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Any

from .extract import ExtractionContext, register_extractor

__all__ = ["bench_dir", "bench_files", "bench_fingerprint",
           "extract_perf_trend", "PERF_TREND_HEADERS"]

_ENV_DIR = "REPRO_BENCH_DIR"

PERF_TREND_HEADERS = ["source", "label", "benchmark", "unit",
                      "units_per_second"]


def bench_dir() -> Path:
    """Where the committed ``BENCH_*.json`` series lives."""
    override = os.environ.get(_ENV_DIR, "").strip()
    if override:
        return Path(override)
    # src/repro/figures/perftrend.py -> repository root
    return Path(__file__).resolve().parents[3]


def bench_files() -> list[Path]:
    """The series, sorted by filename for a stable row order."""
    directory = bench_dir()
    if not directory.is_dir():
        return []
    return sorted(directory.glob("BENCH_*.json"))


def bench_fingerprint() -> list[list[str]]:
    """(filename, content SHA-256) per bench file — the digest input."""
    return [
        [path.name,
         hashlib.sha256(path.read_bytes()).hexdigest()]
        for path in bench_files()
    ]


def _series_rows(source: str, label: str,
                 benchmarks: dict[str, Any]) -> list[list[Any]]:
    return [
        [source, label, name, entry.get("unit", ""),
         entry.get("units_per_second")]
        for name, entry in sorted(benchmarks.items())
    ]


@register_extractor("perf-trend", version=1)
def extract_perf_trend(_ctx: ExtractionContext) -> dict[str, Any]:
    """Rows-shaped data over every committed bench point.

    Plain bench payloads contribute one series; comparison payloads
    contribute both sides (labelled ``before``/``after`` payload
    labels), so a PR's pre/post measurement pair stays adjacent in the
    trend.  Unreadable files are reported in ``skipped`` rather than
    failing the whole artifact — the trend should survive one corrupt
    measurement.
    """
    rows: list[list[Any]] = []
    skipped: list[str] = []
    for path in bench_files():
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            skipped.append(path.name)
            continue
        if payload.get("kind") == "comparison":
            for side in ("before", "after"):
                part = payload.get(side) or {}
                rows.extend(_series_rows(
                    path.name,
                    str(part.get("label") or side),
                    part.get("benchmarks") or {},
                ))
        else:
            rows.extend(_series_rows(
                path.name,
                str(payload.get("label") or path.stem),
                payload.get("benchmarks") or {},
            ))
    return {
        "headers": list(PERF_TREND_HEADERS),
        "rows": rows,
        "skipped": skipped,
    }
