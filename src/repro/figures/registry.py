"""The paper's artifact set, registered as declarative figure specs.

Every figure and table of the paper is one :class:`FigureSpec` here:

========  =======  ======================  ==========================
name      kind     suite                   extractor
========  =======  ======================  ==========================
fig3      figure   — (analytic)            fig3-cache-power
fig4      figure   evaluation grid         fig4-execution-time
fig5      figure   evaluation grid         fig5-energy
fig6      figure   evaluation grid         fig6-average-power
fig7      figure   W0 sensitivity grid     fig7-w0-sensitivity
table1    table    — (analytic)            table1-power-model
table2    table    — (analytic)            table2-system-config
headline  table    evaluation grid         headline-averages
perf-trend figure  — (bench files)         perf-trend
========  =======  ======================  ==========================

Figs. 4–6 and the headline averages share ONE suite (the paper derives
them from the same simulations), and the Fig. 7 grid shares its
ungated baselines and W0 = 8 gated runs with it by job-digest dedup —
so a full ``repro figures build`` plans all suites together and
simulates each unique job exactly once.

``register_figure`` accepts user-defined specs (see
``examples/figures_pipeline.py``); registration order is presentation
order.
"""

from __future__ import annotations

from ..errors import FigureError
from ..scenarios.spec import ScenarioSpec
from ..scenarios.suite import ScenarioSuite, suite
from .perftrend import bench_fingerprint  # registers the extractor too
from .spec import FigureParams, FigureSpec

__all__ = [
    "available_figures",
    "get_figure",
    "register_figure",
    "figure_help",
    "eval_grid_suite",
    "w0_grid_suite",
]


def _grid_base(params: FigureParams) -> ScenarioSpec:
    return ScenarioSpec(
        workload=params.apps[0],
        scale=params.scale,
        threads=params.procs[0],
        seed=params.seed,
        w0=params.w0,
        cm=params.cm,
    )


def eval_grid_suite(params: FigureParams) -> ScenarioSuite:
    """The Figs. 4–6 grid: every (app × procs) point, both gating modes.

    Axis order (workload, threads, gating) matches the built-in
    ``paper-eval`` suite and :class:`~repro.harness.experiments.
    EvaluationSuite`, so all three lower to identical job batches and
    share one result store.
    """
    return suite(
        "paper-eval",
        _grid_base(params),
        axes={
            "workload": params.apps,
            "threads": params.procs,
            "gating": (False, True),
        },
        description=(
            "Figs. 4-6 evaluation grid: every (application x processor "
            "count) point with and without clock gating"
        ),
    )


def w0_grid_suite(params: FigureParams) -> ScenarioSuite:
    """The Fig. 7 grid: the evaluation matrix crossed with the W0 sweep.

    Ungated scenarios collapse onto one baseline per (app, procs) by
    job-digest normalization, and the W0 = 8 gated runs are shared with
    the evaluation grid when ``params.w0`` is in ``params.w0_values``.
    """
    return suite(
        "paper-fig7",
        _grid_base(params),
        axes={
            "workload": params.apps,
            "threads": params.procs,
            "gating": (False, True),
            "w0": params.w0_values,
        },
        description=(
            "Fig. 7 sensitivity grid: speed-up vs W0 and Np (ungated "
            "baselines shared across the W0 axis by job-digest dedup)"
        ),
    )


_REGISTRY: dict[str, FigureSpec] = {}


def register_figure(spec: FigureSpec, overwrite: bool = False) -> FigureSpec:
    """Add a figure to the registry (presentation order = registration
    order).  Re-registering an existing name requires ``overwrite``."""
    if spec.name in _REGISTRY and not overwrite:
        raise FigureError(
            f"figure {spec.name!r} is already registered; "
            f"pass overwrite=True to replace it"
        )
    _REGISTRY[spec.name] = spec
    return spec


def available_figures() -> list[str]:
    """Registered figure names, in registration (presentation) order."""
    return list(_REGISTRY)


def get_figure(name: str) -> FigureSpec:
    try:
        return _REGISTRY[name]
    except KeyError:
        raise FigureError(
            f"unknown figure {name!r}; available: "
            f"{', '.join(available_figures())}"
        ) from None


def figure_help() -> list[tuple[str, str, str, str]]:
    """(name, kind, suite, title) rows for every registered figure."""
    rows = []
    for name in available_figures():
        spec = _REGISTRY[name]
        resolved = spec.resolve_suite(FigureParams())
        rows.append(
            (name, spec.kind,
             resolved.name if resolved is not None else "-", spec.title)
        )
    return rows


# ----------------------------------------------------------------------
# the paper's artifacts
# ----------------------------------------------------------------------
register_figure(FigureSpec(
    name="fig3",
    title="Normalized TCC data-cache power vs RW-bit resolution",
    extractor="fig3-cache-power",
    suite=None,
    description="analytic CACTI-derived curves; no simulation",
))
register_figure(FigureSpec(
    name="fig4",
    title="Total parallel execution time, with/without clock gating",
    extractor="fig4-execution-time",
    suite=eval_grid_suite,
))
register_figure(FigureSpec(
    name="fig5",
    title="Energy consumption with and without clock gating",
    extractor="fig5-energy",
    suite=eval_grid_suite,
))
register_figure(FigureSpec(
    name="fig6",
    title="Average power dissipation with and without clock gating",
    extractor="fig6-average-power",
    suite=eval_grid_suite,
))
register_figure(FigureSpec(
    name="fig7",
    title="Speed-up as a function of W0 and Np",
    extractor="fig7-w0-sensitivity",
    suite=w0_grid_suite,
))
register_figure(FigureSpec(
    name="table1",
    title="Power model of the Alpha 21264 (derived factors)",
    extractor="table1-power-model",
    kind="table",
    suite=None,
    description="derived from the Section VII power model; no simulation",
))
register_figure(FigureSpec(
    name="table2",
    title="Parameters used in the simulation",
    extractor="table2-system-config",
    kind="table",
    suite=None,
    description="the default simulated machine; no simulation",
))
register_figure(FigureSpec(
    name="headline",
    title="Section VIII headline averages over the evaluation grid",
    extractor="headline-averages",
    kind="table",
    suite=eval_grid_suite,
))
register_figure(FigureSpec(
    name="perf-trend",
    title="Toolkit performance trajectory (committed BENCH_*.json series)",
    extractor="perf-trend",
    suite=None,
    description="the repository's committed bench series as one "
                "rows-shaped artifact; no simulation (see "
                "docs/performance.md)",
    # content-hash of every bench file: committing or editing one marks
    # the artifact stale through the normal figure-digest machinery
    fingerprint=bench_fingerprint,
))
