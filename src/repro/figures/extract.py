"""Metric extractors: store records in, figure data out — pure functions.

An *extractor* turns the simulation results a figure's scenario suite
produced into the plain-JSON data the figure plots.  Extractors never
simulate and never touch the filesystem: the
:class:`~repro.figures.builder.FigureBuilder` resolves every expanded
scenario against the result store and hands the paired
:class:`~repro.scenarios.runner.ScenarioResult` list in here, so the
same extractor serves a live build, a golden-fixture test, and a store
merged from many shard hosts identically.

This module is also the single home of the row derivations the paper's
figures need — the gated/ungated pairing, the Fig. 4–6 row shapes, the
Fig. 7 speed-up matrix, and the Section VIII headline averages.
:class:`~repro.harness.experiments.EvaluationSuite`, the benchmark
modules and :meth:`~repro.scenarios.runner.SuiteRun.paired_rows` all
delegate here instead of keeping private copies.

Versioning: every registered extractor carries an integer version that
enters the figure content digest — bump it when an extractor's output
changes meaning, and every downstream artifact goes stale at once.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Mapping, Sequence

from ..errors import FigureError
from ..harness.compare import GatingComparison
from ..power.model import PowerModel

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..scenarios.runner import ScenarioResult
    from ..scenarios.spec import ScenarioSpec
    from .spec import FigureParams

__all__ = [
    "ExtractionContext",
    "available_extractors",
    "register_extractor",
    "get_extractor",
    "extractor_version",
    "pair_results",
    "comparisons_from_results",
    "fig4_rows",
    "fig5_rows",
    "fig6_rows",
    "fig7_speedup_matrix",
    "headline_from_comparisons",
]


# ----------------------------------------------------------------------
# extraction context
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ExtractionContext:
    """Everything an extractor may read: grid parameters + store results.

    ``results`` holds one entry per *expanded* scenario of the figure's
    suite, in expansion order, each paired with the
    :class:`~repro.exec.jobs.ExecResult` the store answered for its job
    digest.  Analytic figures (Fig. 3, Tables I–II) receive an empty
    tuple and derive everything from ``params`` and ``power``.
    """

    params: "FigureParams"
    power: PowerModel = field(default_factory=PowerModel.derive)
    results: tuple["ScenarioResult", ...] = ()

    @property
    def apps(self) -> tuple[str, ...]:
        return self.params.apps

    @property
    def procs(self) -> tuple[int, ...]:
        return self.params.procs

    @property
    def w0_values(self) -> tuple[int, ...]:
        return self.params.w0_values


# ----------------------------------------------------------------------
# extractor registry
# ----------------------------------------------------------------------
_EXTRACTORS: dict[str, tuple[Callable[[ExtractionContext], Any], int]] = {}


def register_extractor(
    name: str, version: int = 1
) -> Callable[[Callable[[ExtractionContext], Any]], Callable[[ExtractionContext], Any]]:
    """Register ``fn(ctx) -> JSON-able data`` under *name* (decorator)."""

    def decorate(
        fn: Callable[[ExtractionContext], Any]
    ) -> Callable[[ExtractionContext], Any]:
        _EXTRACTORS[name] = (fn, version)
        return fn

    return decorate


def available_extractors() -> list[str]:
    return sorted(_EXTRACTORS)


def get_extractor(name: str) -> Callable[[ExtractionContext], Any]:
    try:
        return _EXTRACTORS[name][0]
    except KeyError:
        raise FigureError(
            f"unknown extractor {name!r}; available: "
            f"{', '.join(available_extractors())}"
        ) from None


def extractor_version(name: str) -> int:
    get_extractor(name)  # raises the shared error on unknown names
    return _EXTRACTORS[name][1]


# ----------------------------------------------------------------------
# shared row derivations (the former private duplicates)
# ----------------------------------------------------------------------
def _pair_key(spec: "ScenarioSpec", with_w0: bool) -> tuple[Any, ...]:
    return (
        spec.workload,
        spec.scale,
        spec.threads,
        spec.seed,
        spec.params,
        spec.cm,
        spec.system,
        spec.w0 if with_w0 else None,
    )


def pair_results(
    results: Sequence["ScenarioResult"],
) -> list[tuple["ScenarioResult", "ScenarioResult"]]:
    """(gated, ungated-baseline) pairs from a mixed result list.

    A gated scenario pairs with the ungated scenario identical in every
    other spec field — same :math:`W_0` point first, any :math:`W_0`
    otherwise (ungated runs do not depend on :math:`W_0` for the CMs
    that declare so).  Gated scenarios without a baseline are dropped.
    """
    ungated: dict[tuple, "ScenarioResult"] = {}
    for entry in results:
        if not entry.spec.gating:
            ungated[_pair_key(entry.spec, with_w0=True)] = entry
            ungated.setdefault(_pair_key(entry.spec, with_w0=False), entry)
    pairs = []
    for entry in results:
        if not entry.spec.gating:
            continue
        baseline = ungated.get(
            _pair_key(entry.spec, with_w0=True)
        ) or ungated.get(_pair_key(entry.spec, with_w0=False))
        if baseline is not None:
            pairs.append((entry, baseline))
    return pairs


def comparisons_from_results(
    results: Sequence["ScenarioResult"],
) -> dict[tuple[str, int], GatingComparison]:
    """``{(workload, threads): GatingComparison}`` from an eval grid.

    Expects one gated/ungated pair per (workload, threads) point — the
    Figs. 4–6 grid shape.  Extra :math:`W_0` points would silently
    overwrite each other, so duplicates raise.
    """
    comparisons: dict[tuple[str, int], GatingComparison] = {}
    for gated, baseline in pair_results(results):
        key = (gated.spec.workload, gated.spec.threads)
        if key in comparisons:
            raise FigureError(
                f"multiple gated runs for evaluation point {key}; "
                f"use fig7_speedup_matrix for W0 sweeps"
            )
        comparisons[key] = GatingComparison(
            workload=gated.spec.workload,
            num_procs=gated.spec.threads,
            ungated=baseline.result,
            gated=gated.result,
        )
    return comparisons


def _comparison(
    comparisons: Mapping[tuple[str, int], GatingComparison],
    app: str,
    procs: int,
) -> GatingComparison:
    try:
        return comparisons[(app, procs)]
    except KeyError:
        raise FigureError(
            f"evaluation grid is missing the ({app}, {procs} procs) point"
        ) from None


def fig4_rows(
    comparisons: Mapping[tuple[str, int], GatingComparison],
    apps: Sequence[str],
    procs: Sequence[int],
) -> list[tuple]:
    """(app, procs, N1, N2, speed-up) — Fig. 4's bar pairs."""
    return [
        (app, p, c.n1, c.n2, c.speedup)
        for app in apps
        for p in procs
        for c in (_comparison(comparisons, app, p),)
    ]


def fig5_rows(
    comparisons: Mapping[tuple[str, int], GatingComparison],
    apps: Sequence[str],
    procs: Sequence[int],
) -> list[tuple]:
    """(app, procs, Eug, Eg, reduction factor) — Fig. 5."""
    return [
        (app, p, c.ungated.energy.total, c.gated.energy.total,
         c.energy_reduction)
        for app in apps
        for p in procs
        for c in (_comparison(comparisons, app, p),)
    ]


def fig6_rows(
    comparisons: Mapping[tuple[str, int], GatingComparison],
    apps: Sequence[str],
    procs: Sequence[int],
) -> list[tuple]:
    """(app, procs, avg power ungated, gated, reduction) — Fig. 6."""
    return [
        (app, p, c.ungated.energy.average_power,
         c.gated.energy.average_power, c.power_reduction)
        for app in apps
        for p in procs
        for c in (_comparison(comparisons, app, p),)
    ]


def fig7_speedup_matrix(
    results: Sequence["ScenarioResult"],
    apps: Sequence[str],
    procs: Sequence[int],
    w0_values: Sequence[int],
) -> dict[str, dict[int, dict[int, float]]]:
    """``{app: {num_procs: {w0: speed-up}}}`` — Fig. 7, from suite results."""
    speedups: dict[tuple[str, int, int], float] = {}
    for gated, baseline in pair_results(results):
        key = (gated.spec.workload, gated.spec.threads, gated.spec.w0)
        speedups[key] = (
            baseline.result.parallel_time / gated.result.parallel_time
        )
    matrix: dict[str, dict[int, dict[int, float]]] = {}
    for app in apps:
        matrix[app] = {}
        for p in procs:
            curve = {}
            for w0 in w0_values:
                try:
                    curve[w0] = speedups[(app, p, w0)]
                except KeyError:
                    raise FigureError(
                        f"W0 grid is missing the ({app}, {p} procs, "
                        f"W0={w0}) point"
                    ) from None
            matrix[app][p] = curve
    return matrix


def headline_from_comparisons(
    comparisons: Mapping[tuple[str, int], GatingComparison],
    apps: Sequence[str],
    procs: Sequence[int],
) -> dict[str, float]:
    """Section VIII averages over the evaluation grid.

    The paper reports the averages as percentages: a reduction factor
    ``f`` maps to a percentage as ``1 - 1/f`` (energy/power) and
    ``f - 1`` (speed-up).
    """
    points = [
        _comparison(comparisons, app, p) for app in apps for p in procs
    ]
    n = len(points)
    if n == 0:
        raise FigureError("headline averages need at least one grid point")
    avg_speedup = sum(c.speedup for c in points) / n
    avg_energy = sum(c.energy_reduction for c in points) / n
    avg_power = sum(c.power_reduction for c in points) / n
    return {
        "average_speedup_factor": avg_speedup,
        "average_speedup_pct": (avg_speedup - 1.0) * 100.0,
        "average_energy_reduction_factor": avg_energy,
        "average_energy_reduction_pct": (1.0 - 1.0 / avg_energy) * 100.0,
        "average_power_reduction_factor": avg_power,
        "average_power_reduction_pct": (1.0 - 1.0 / avg_power) * 100.0,
        "points": float(n),
    }


# ----------------------------------------------------------------------
# the registered paper extractors
# ----------------------------------------------------------------------
def _rows_data(headers: Sequence[str], rows: Sequence[tuple]) -> dict[str, Any]:
    return {"headers": list(headers), "rows": [list(row) for row in rows]}


@register_extractor("fig3-cache-power", version=1)
def extract_fig3(ctx: ExtractionContext) -> dict[str, Any]:
    """Normalized TCC data-cache power vs RW-bit resolution (analytic)."""
    from ..power.cacti import (
        FIG3_CACHE_SIZES_KB,
        FIG3_GRANULARITIES,
        tcc_cache_power_curve,
        tcc_total_power_factor,
    )

    return {
        "cache_sizes_kb": list(FIG3_CACHE_SIZES_KB),
        "granularities_bytes": list(FIG3_GRANULARITIES),
        "normalized_power": {
            str(size): {
                str(granularity): power
                for granularity, power in tcc_cache_power_curve(size)
            }
            for size in FIG3_CACHE_SIZES_KB
        },
        "total_power_factor": tcc_total_power_factor(),
    }


@register_extractor("fig4-execution-time", version=1)
def extract_fig4(ctx: ExtractionContext) -> dict[str, Any]:
    comparisons = comparisons_from_results(ctx.results)
    return _rows_data(
        ("app", "procs", "n1_ungated", "n2_gated", "speedup"),
        fig4_rows(comparisons, ctx.apps, ctx.procs),
    )


@register_extractor("fig5-energy", version=1)
def extract_fig5(ctx: ExtractionContext) -> dict[str, Any]:
    comparisons = comparisons_from_results(ctx.results)
    return _rows_data(
        ("app", "procs", "energy_ungated", "energy_gated",
         "reduction_factor"),
        fig5_rows(comparisons, ctx.apps, ctx.procs),
    )


@register_extractor("fig6-average-power", version=1)
def extract_fig6(ctx: ExtractionContext) -> dict[str, Any]:
    comparisons = comparisons_from_results(ctx.results)
    return _rows_data(
        ("app", "procs", "avg_power_ungated", "avg_power_gated",
         "reduction_factor"),
        fig6_rows(comparisons, ctx.apps, ctx.procs),
    )


@register_extractor("fig7-w0-sensitivity", version=1)
def extract_fig7(ctx: ExtractionContext) -> dict[str, Any]:
    matrix = fig7_speedup_matrix(
        ctx.results, ctx.apps, ctx.procs, ctx.w0_values
    )
    return {
        "apps": list(ctx.apps),
        "procs": list(ctx.procs),
        "w0_values": list(ctx.w0_values),
        "speedup": {
            app: {
                str(p): {str(w0): value for w0, value in curve.items()}
                for p, curve in by_procs.items()
            }
            for app, by_procs in matrix.items()
        },
    }


@register_extractor("table1-power-model", version=1)
def extract_table1(ctx: ExtractionContext) -> dict[str, Any]:
    return _rows_data(("operation", "power_factor"), ctx.power.table1_rows())


@register_extractor("table2-system-config", version=1)
def extract_table2(ctx: ExtractionContext) -> dict[str, Any]:
    return _rows_data(
        ("feature", "description"),
        ctx.params.system_config().table2_rows(),
    )


@register_extractor("headline-averages", version=1)
def extract_headline(ctx: ExtractionContext) -> dict[str, Any]:
    comparisons = comparisons_from_results(ctx.results)
    return headline_from_comparisons(comparisons, ctx.apps, ctx.procs)
