"""Renderers: figure payload dicts to JSON / CSV / PNG artifacts.

The JSON renderer is canonical and always available: sorted keys,
two-space indent, trailing newline — two builds of the same figure from
the same store produce byte-identical files, which is what the
incremental-figures CI job asserts.  CSV is a flat row export for
spreadsheet users; PNG requires matplotlib and degrades to a
:class:`~repro.errors.FigureError` naming the missing dependency when
it is not installed (the toolkit never hard-depends on it).

Provenance: every JSON artifact records where its bytes came from —
the figure content digest, extractor name + version, the resolved
suite's name/size/digest, the sorted job digests consumed from the
store, the store backend, and the git commit the build ran at.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Any

from ..errors import FigureError
from ..exec.serialize import canonical_json
from ..vcs import git_sha
from .spec import FIGURE_SCHEMA_VERSION, FigureSpec

__all__ = [
    "figure_payload",
    "render_json",
    "render_csv",
    "render_png",
    "csv_rows",
    "data_shape",
    "git_sha",
]


def data_shape(data: Any) -> str:
    """Classify a figure's ``data`` section for rendering dispatch.

    ``"rows"`` (headers + rows tables), ``"matrix"`` (the Fig. 7
    speed-up grid), ``"curves"`` (the Fig. 3 power curves),
    ``"scalars"`` (flat metric mappings like the headline), or
    ``"unknown"``.  The CSV, PNG and text renderers all dispatch
    through this one classifier, so a new shape is added in one place.
    """
    if isinstance(data, dict):
        if "rows" in data and "headers" in data:
            return "rows"
        # nested-shape checks, not bare key sniffs: a user extractor's
        # flat mapping may legitimately contain a "speedup" scalar
        if isinstance(data.get("speedup"), dict) and "apps" in data:
            return "matrix"
        if isinstance(data.get("normalized_power"), dict):
            return "curves"
        return "scalars"
    return "unknown"


def suite_digest(suite: Any) -> str:
    """Stable SHA-256 of a suite's canonical JSON description."""
    return hashlib.sha256(
        canonical_json(suite.to_dict()).encode()
    ).hexdigest()


def figure_payload(
    spec: FigureSpec,
    suite: Any,
    digest: str,
    data: Any,
    job_digests: list[str],
    store_backend: str,
) -> dict[str, Any]:
    """Assemble the full JSON artifact for one figure."""
    from .extract import extractor_version

    return {
        "schema": FIGURE_SCHEMA_VERSION,
        "name": spec.name,
        "kind": spec.kind,
        "title": spec.title,
        "data": data,
        "provenance": {
            "figure_digest": digest,
            "extractor": {
                "name": spec.extractor,
                "version": extractor_version(spec.extractor),
            },
            "suite": (
                {
                    "name": suite.name,
                    "scenarios": suite.size,
                    "digest": suite_digest(suite),
                }
                if suite is not None
                else None
            ),
            "jobs": list(job_digests),
            "store_backend": store_backend,
            "git_sha": git_sha(),
        },
    }


def render_json(payload: dict[str, Any], path: str | Path) -> Path:
    """Write the canonical JSON artifact (deterministic bytes)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    return path


# ----------------------------------------------------------------------
# CSV
# ----------------------------------------------------------------------
def csv_rows(payload: dict[str, Any]) -> tuple[list[str], list[list[Any]]]:
    """Flatten any figure payload into (headers, rows) for CSV export.

    Row-shaped data exports as-is; the Fig. 7 matrix and the Fig. 3
    curves flatten to long form; scalar mappings (headline) export as
    (metric, value) pairs.
    """
    data = payload["data"]
    shape = data_shape(data)
    if shape == "rows":
        return list(data["headers"]), [list(row) for row in data["rows"]]
    if shape == "matrix":  # fig7
        rows = [
            [app, int(procs), int(w0), value]
            for app, by_procs in data["speedup"].items()
            for procs, curve in by_procs.items()
            for w0, value in curve.items()
        ]
        return ["app", "procs", "w0", "speedup"], rows
    if shape == "curves":  # fig3
        rows = [
            [int(size), int(granularity), power]
            for size, curve in data["normalized_power"].items()
            for granularity, power in curve.items()
        ]
        return ["cache_kb", "granularity_bytes", "normalized_power"], rows
    if shape == "scalars":  # headline-style metric mapping
        return ["metric", "value"], [[k, v] for k, v in data.items()]
    raise FigureError(
        f"figure {payload.get('name')!r} has no CSV representation"
    )


def render_csv(payload: dict[str, Any], path: str | Path) -> Path:
    import csv as _csv

    headers, rows = csv_rows(payload)
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="", encoding="utf-8") as fh:
        writer = _csv.writer(fh)
        writer.writerow(headers)
        writer.writerows(rows)
    return path


# ----------------------------------------------------------------------
# PNG (optional dependency)
# ----------------------------------------------------------------------
def render_png(payload: dict[str, Any], path: str | Path) -> Path:
    """Plot the figure with matplotlib (optional; clear error without)."""
    try:
        import matplotlib  # noqa: F401

        matplotlib.use("Agg")
        import matplotlib.pyplot as plt
    except ImportError:
        raise FigureError(
            "PNG rendering needs matplotlib, which is not installed; "
            "use the JSON/CSV artifacts instead"
        ) from None

    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    data = payload["data"]
    shape = data_shape(data)
    fig, ax = plt.subplots(figsize=(7, 4))
    try:
        if shape == "matrix":
            for app, by_procs in data["speedup"].items():
                for procs, curve in by_procs.items():
                    w0s = sorted(curve, key=int)
                    ax.plot([int(w) for w in w0s],
                            [curve[w] for w in w0s],
                            marker="o", label=f"{app} x{procs}")
            ax.set_xlabel("W0")
            ax.set_ylabel("speed-up (N1/N2)")
            ax.set_xscale("log", base=2)
            ax.legend(fontsize=7)
        elif shape == "curves":
            for size, curve in data["normalized_power"].items():
                gs = sorted(curve, key=int, reverse=True)
                ax.plot([int(g) for g in gs], [curve[g] for g in gs],
                        marker="o", label=f"{size} KB")
            ax.set_xlabel("RW-bit granularity (bytes)")
            ax.set_ylabel("normalized power (normal cache = 100)")
            ax.invert_xaxis()
            ax.legend(fontsize=7)
        else:
            headers, rows = csv_rows(payload)
            labels = [" ".join(str(v) for v in row[:-1]) for row in rows]
            values = [row[-1] for row in rows]
            numeric = [v for v in values if isinstance(v, (int, float))]
            ax.bar(range(len(numeric)), numeric)
            ax.set_xticks(range(len(numeric)))
            ax.set_xticklabels(
                [l for l, v in zip(labels, values)
                 if isinstance(v, (int, float))],
                rotation=60, ha="right", fontsize=6,
            )
            ax.set_ylabel(headers[-1])
        ax.set_title(payload["title"], fontsize=9)
        fig.tight_layout()
        fig.savefig(path, dpi=150)
    finally:
        plt.close(fig)
    return path
