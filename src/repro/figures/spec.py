"""Declarative figure specifications and their content digests.

A :class:`FigureSpec` names everything that defines one paper artifact:
the scenario suite whose simulations feed it (a
:class:`~repro.scenarios.suite.ScenarioSuite`/``SpecListSuite`` value, a
factory over :class:`FigureParams`, or ``None`` for analytic figures),
the registered metric **extractor** that turns store records into
figure data, and presentation metadata.  Nothing here simulates or
writes files — the :class:`~repro.figures.builder.FigureBuilder` does
both.

Identity: :func:`figure_digest` hashes the figure name, the extractor
name + version, the *resolved* suite's canonical JSON, the grid
parameters and the power-model fingerprint.  Any change that could
alter the artifact — a new workload in the grid, a bumped extractor, a
re-derived power model — changes the digest, which is how
``repro figures status``/``build`` decide an on-disk artifact is stale.
"""

from __future__ import annotations

import dataclasses
import hashlib
from dataclasses import dataclass
from typing import Any, Callable, Union

from ..config import GatingConfig, SystemConfig
from ..errors import FigureError
from ..exec.serialize import canonical_json
from ..harness.sweep import DEFAULT_W0_VALUES
from ..power.model import PowerModel
from ..scenarios.suite import ScenarioSuite, SpecListSuite
from ..workloads.registry import PAPER_APPS

__all__ = [
    "FIGURE_SCHEMA_VERSION",
    "FigureParams",
    "FigureSpec",
    "figure_digest",
]

#: bump when the figure JSON payload layout changes incompatibly
FIGURE_SCHEMA_VERSION = 1

Suite = Union[ScenarioSuite, SpecListSuite]
SuiteSource = Union[Suite, Callable[["FigureParams"], Suite], None]


@dataclass(frozen=True)
class FigureParams:
    """The evaluation-grid knobs shared by every figure of one build.

    Defaults reproduce the paper's grid (three applications ×
    {4, 8, 16} processors, W0 = 8, the Fig. 7 W0 sweep); tests, smoke
    scripts and user pipelines shrink it (fewer apps/procs, ``tiny``
    scale) without touching any figure definition.
    """

    scale: str = "small"
    seed: int = 0
    apps: tuple[str, ...] = PAPER_APPS
    procs: tuple[int, ...] = (4, 8, 16)
    #: the evaluation-grid gating window (Figs. 4–6)
    w0: int = 8
    #: the Fig. 7 sensitivity sweep
    w0_values: tuple[int, ...] = DEFAULT_W0_VALUES
    cm: str = "gating-aware"

    def __post_init__(self) -> None:
        # tuples, not lists: params are hashed into figure digests
        for name in ("apps", "procs", "w0_values"):
            value = getattr(self, name)
            if not isinstance(value, tuple):
                object.__setattr__(self, name, tuple(value))
        if not self.apps or not self.procs or not self.w0_values:
            raise FigureError(
                "figure params need at least one app, processor count "
                "and W0 value"
            )

    def fingerprint(self) -> dict[str, Any]:
        """Plain-data identity (part of every figure digest)."""
        return dataclasses.asdict(self)

    def system_config(self, num_procs: int | None = None) -> SystemConfig:
        """The Table II machine these parameters evaluate on."""
        return dataclasses.replace(
            SystemConfig(),
            num_procs=num_procs if num_procs is not None else self.procs[-1],
            num_dirs=None,
            seed=self.seed,
            gating=GatingConfig(
                enabled=True, w0=self.w0, contention_manager=self.cm
            ),
        )


@dataclass(frozen=True)
class FigureSpec:
    """One declarative paper artifact: suite reference + extractor."""

    name: str
    title: str
    #: registered extractor name (see :mod:`repro.figures.extract`)
    extractor: str
    #: ``"figure"`` or ``"table"`` (presentation only)
    kind: str = "figure"
    #: suite value, ``FigureParams -> suite`` factory, or None (analytic)
    suite: SuiteSource = None
    description: str = ""
    #: optional extra-identity hook for figures fed by out-of-store
    #: inputs (e.g. committed ``BENCH_*.json`` files): a callable whose
    #: JSON-able return value folds into the figure digest, so changed
    #: inputs mark the artifact stale exactly like a changed suite would
    fingerprint: Callable[[], Any] | None = None

    def __post_init__(self) -> None:
        if not self.name:
            raise FigureError("figure name must be non-empty")
        if self.kind not in ("figure", "table"):
            raise FigureError(
                f"figure {self.name!r}: kind must be 'figure' or 'table', "
                f"got {self.kind!r}"
            )

    def resolve_suite(self, params: FigureParams) -> Suite | None:
        """The concrete scenario suite this figure needs (or ``None``)."""
        if self.suite is None:
            return None
        if callable(self.suite):
            return self.suite(params)
        return self.suite

    def label(self) -> str:
        return f"{self.name} ({self.kind}): {self.title}"


def figure_digest(
    spec: FigureSpec,
    suite: Suite | None,
    params: FigureParams,
    power: PowerModel,
) -> str:
    """Stable SHA-256 identity of one figure artifact.

    Covers the resolved suite (hence every scenario digest feeding the
    figure), the extractor name and version, the grid parameters and
    the power model — everything that determines the bytes of the
    figure's ``data`` section.
    """
    from .extract import extractor_version

    payload = {
        "schema": FIGURE_SCHEMA_VERSION,
        "figure": spec.name,
        "kind": spec.kind,
        "extractor": [spec.extractor, extractor_version(spec.extractor)],
        "suite": suite.to_dict() if suite is not None else None,
        "params": params.fingerprint(),
        "power": dataclasses.asdict(power),
    }
    if spec.fingerprint is not None:
        # only when the figure declares extra inputs: adding the key
        # unconditionally would shift every existing figure digest
        payload["inputs"] = spec.fingerprint()
    return hashlib.sha256(canonical_json(payload).encode()).hexdigest()
