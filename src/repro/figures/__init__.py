"""Declarative figure pipeline: every paper artifact as data.

Each figure/table of the paper is a :class:`FigureSpec` — a scenario
suite reference, a versioned metric extractor over result-store
records, and renderers — and the :class:`FigureBuilder` regenerates the
whole set incrementally: plan suites against the store, simulate only
the residual misses (one executor batch), extract, and write
``figures/<name>.json`` with provenance.  ``repro figures
list|status|build`` is the CLI surface; ``examples/figures_pipeline.py``
shows a user-defined figure over a custom suite.
"""

from __future__ import annotations

from .builder import BuildReport, FigureArtifact, FigureBuilder, FigureStatus
from .extract import (
    ExtractionContext,
    available_extractors,
    get_extractor,
    extractor_version,
    register_extractor,
)
from .registry import (
    available_figures,
    eval_grid_suite,
    figure_help,
    get_figure,
    register_figure,
    w0_grid_suite,
)
from .render import (
    csv_rows,
    data_shape,
    figure_payload,
    render_csv,
    render_json,
    render_png,
)
from .spec import FIGURE_SCHEMA_VERSION, FigureParams, FigureSpec, figure_digest

__all__ = [
    "FIGURE_SCHEMA_VERSION",
    "FigureParams",
    "FigureSpec",
    "figure_digest",
    "FigureBuilder",
    "FigureStatus",
    "FigureArtifact",
    "BuildReport",
    "ExtractionContext",
    "available_extractors",
    "get_extractor",
    "extractor_version",
    "register_extractor",
    "available_figures",
    "get_figure",
    "register_figure",
    "figure_help",
    "eval_grid_suite",
    "w0_grid_suite",
    "csv_rows",
    "data_shape",
    "figure_payload",
    "render_csv",
    "render_json",
    "render_png",
]
