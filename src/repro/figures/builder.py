"""Incremental, store-driven regeneration of every registered artifact.

The :class:`FigureBuilder` turns "rerun the paper" into one cache-aware
pass:

1. **Resolve** — every requested figure resolves its scenario suite
   under one shared :class:`~repro.figures.spec.FigureParams`; suites
   shared between figures (Figs. 4–6 + headline) are expanded and
   lowered once.
2. **Plan** — each unique suite is planned against the result store
   with :func:`~repro.scenarios.runner.plan_suite` (digest probes, zero
   simulation); the union of residual misses across all suites is the
   only work left.
3. **Execute** — the residual specs run as ONE executor batch
   (``--jobs`` workers, write-through to the store), optionally
   restricted to a :class:`~repro.scenarios.runner.Shard` of the job
   list for multi-host builds.
4. **Extract + render** — each figure's extractor runs over the store's
   records and the JSON artifact is written with full provenance.
   Artifacts whose content digest already matches on disk are skipped
   (``fresh``); a warm store plus fresh artifacts makes a repeat build
   report **0 simulations** and leave every byte untouched.
"""

from __future__ import annotations

import json
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Sequence

from ..errors import FigureError
from ..exec.executor import BatchReport, Executor
from ..exec.progress import ProgressListener
from ..exec.store import ResultStore
from ..obs import get_recorder
from ..power.model import PowerModel
from ..scenarios.runner import ScenarioResult, Shard, SuitePlan, plan_suite
from .extract import ExtractionContext, get_extractor
from .registry import available_figures, get_figure
from .render import figure_payload, render_csv, render_json, render_png
from .spec import FigureParams, FigureSpec, figure_digest

__all__ = ["FigureBuilder", "FigureStatus", "FigureArtifact", "BuildReport"]


@dataclass(frozen=True)
class FigureStatus:
    """One figure's standing against the store and the output directory."""

    name: str
    kind: str
    digest: str
    #: artifact file state: ``fresh`` (digest matches), ``stale``
    #: (exists, different digest), ``missing``
    artifact: str
    path: Path
    suite: str | None
    total_jobs: int
    hits: int
    misses: int

    def row(self) -> tuple:
        coverage = (
            f"{self.hits}/{self.total_jobs}" if self.suite is not None else "-"
        )
        return (self.name, self.kind, self.suite or "-", coverage,
                self.artifact)

    ROW_HEADERS = ("figure", "kind", "suite", "cached jobs", "artifact")


@dataclass(frozen=True)
class FigureArtifact:
    """Outcome of one figure in a build pass."""

    name: str
    #: ``fresh`` (skipped, digest matched), ``built`` (new file),
    #: ``rebuilt`` (stale file replaced), ``incomplete`` (store lacks
    #: runs — e.g. a sharded build before the merge)
    status: str
    digest: str
    path: Path | None = None


@dataclass
class BuildReport:
    """Everything one :meth:`FigureBuilder.build` pass did."""

    artifacts: list[FigureArtifact] = field(default_factory=list)
    #: unique jobs across every requested figure's suite
    total_jobs: int = 0
    #: residual cache misses the plan found (before shard filtering)
    planned_misses: int = 0
    #: simulations actually executed by this pass
    executed: int = 0
    batch: BatchReport | None = None
    shard: Shard | None = None

    def counts(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for artifact in self.artifacts:
            out[artifact.status] = out.get(artifact.status, 0) + 1
        return out

    def summary(self) -> str:
        states = ", ".join(
            f"{count} {status}" for status, count in sorted(self.counts().items())
        ) or "nothing to do"
        shard = f" [shard {self.shard}]" if self.shard is not None else ""
        return (
            f"figures build{shard}: {states}; simulated {self.executed} "
            f"residual job(s) ({self.planned_misses} missing of "
            f"{self.total_jobs} unique)"
        )


class FigureBuilder:
    """Builds declarative figures incrementally against a result store.

    Parameters
    ----------
    store:
        The :class:`~repro.exec.store.ResultStore` (or cache directory
        path) that holds — and receives — every simulation result.
        ``None`` uses a throw-away temporary store (nothing persists).
    out_dir:
        Where ``<name>.json`` (and optional ``.csv``/``.png``)
        artifacts land.
    params:
        The shared :class:`~repro.figures.spec.FigureParams` grid.
    specs:
        Explicit figure set; default is every registered figure.
    jobs / progress:
        Executor fan-out for the residual simulations.
    """

    def __init__(
        self,
        store: ResultStore | str | Path | None = None,
        out_dir: str | Path = "figures",
        params: FigureParams | None = None,
        specs: Sequence[FigureSpec] | None = None,
        jobs: int = 1,
        progress: ProgressListener | None = None,
        power_model: PowerModel | None = None,
        profile: bool = False,
    ) -> None:
        self._tmpdir: tempfile.TemporaryDirectory | None = None
        if store is None:
            # held on the builder so the throw-away store really is
            # thrown away (removed when the builder is collected)
            self._tmpdir = tempfile.TemporaryDirectory(
                prefix="repro-figures-"
            )
            store = ResultStore(self._tmpdir.name)
        elif isinstance(store, (str, Path)):
            store = ResultStore(store)
        self.store = store
        self.out_dir = Path(out_dir)
        self.params = params if params is not None else FigureParams()
        self._specs = list(specs) if specs is not None else None
        self._model = (
            power_model if power_model is not None else PowerModel.derive()
        )
        self._executor = Executor(
            jobs=jobs, store=store, progress=progress, profile=profile
        )

    # ------------------------------------------------------------------
    # resolution
    # ------------------------------------------------------------------
    def figures(self, names: Sequence[str] | None = None) -> list[FigureSpec]:
        """The build set, in presentation order (optionally filtered)."""
        if self._specs is not None:
            specs = list(self._specs)
        else:
            specs = [get_figure(name) for name in available_figures()]
        if names is None:
            return specs
        by_name = {spec.name: spec for spec in specs}
        unknown = sorted(set(names) - set(by_name))
        if unknown:
            raise FigureError(
                f"unknown figure(s): {', '.join(unknown)}; available: "
                f"{', '.join(by_name)}"
            )
        # preserve presentation order, not request order
        wanted = set(names)
        return [spec for spec in specs if spec.name in wanted]

    def artifact_path(self, name: str) -> Path:
        return self.out_dir / f"{name}.json"

    def _resolved(
        self, names: Sequence[str] | None
    ) -> list[tuple[FigureSpec, Any, str]]:
        """(figure, resolved suite or None, figure digest) per figure."""
        out = []
        for spec in self.figures(names):
            get_extractor(spec.extractor)  # fail fast on unknown names
            suite = spec.resolve_suite(self.params)
            out.append(
                (spec, suite, figure_digest(spec, suite, self.params,
                                            self._model))
            )
        return out

    def _suite_plans(
        self, resolved: Sequence[tuple[FigureSpec, Any, str]]
    ) -> dict[str, SuitePlan]:
        """One :func:`plan_suite` per *unique* suite (keyed by suite JSON).

        Figures sharing a suite (Figs. 4–6 + headline) are planned — and
        later expanded/lowered — exactly once.
        """
        plans: dict[str, SuitePlan] = {}
        for _spec, suite, _digest in resolved:
            if suite is None:
                continue
            key = suite.to_json()
            if key not in plans:
                plans[key] = plan_suite(
                    suite, store=self.store, power_model=self._model
                )
        return plans

    def _artifact_state(self, path: Path, digest: str) -> str:
        if not path.exists():
            return "missing"
        try:
            recorded = json.loads(path.read_text(encoding="utf-8"))[
                "provenance"]["figure_digest"]
        except (ValueError, KeyError, TypeError, OSError):
            return "stale"
        return "fresh" if recorded == digest else "stale"

    @staticmethod
    def _collect_misses(
        plans: dict[str, SuitePlan],
    ) -> tuple[dict[str, Any], set[str]]:
        """(uncached digest -> representative spec, all unique digests)
        across every planned suite — figures sharing jobs count once."""
        misses: dict[str, Any] = {}
        total: set[str] = set()
        for plan in plans.values():
            for entry in plan.entries:
                total.add(entry.digest)
                if not entry.cached:
                    misses.setdefault(entry.digest, entry.spec)
        return misses, total

    # ------------------------------------------------------------------
    # planning / status
    # ------------------------------------------------------------------
    def overview(
        self, names: Sequence[str] | None = None
    ) -> tuple[list[FigureStatus], int, int]:
        """One resolve+plan pass: (statuses, residual jobs, total jobs).

        The job counts are *unique* across the requested figures —
        figures sharing a suite (or individual jobs, like the Fig. 7
        baselines) are deduplicated, unlike the per-figure miss counts
        in the status rows — so "residual" is exactly what a build
        would simulate.
        """
        resolved = self._resolved(names)
        plans = self._suite_plans(resolved)
        misses, total = self._collect_misses(plans)
        return self._statuses(resolved, plans), len(misses), len(total)

    def residual_jobs(
        self, names: Sequence[str] | None = None
    ) -> tuple[int, int]:
        """(uncached, total) unique jobs across the requested figures."""
        _statuses, misses, total = self.overview(names)
        return misses, total

    def status(self, names: Sequence[str] | None = None) -> list[FigureStatus]:
        """Artifact freshness + store coverage per figure; no simulation."""
        return self.overview(names)[0]

    def _statuses(
        self,
        resolved: Sequence[tuple[FigureSpec, Any, str]],
        plans: dict[str, SuitePlan],
    ) -> list[FigureStatus]:
        statuses = []
        for spec, suite, digest in resolved:
            plan = plans.get(suite.to_json()) if suite is not None else None
            statuses.append(FigureStatus(
                name=spec.name,
                kind=spec.kind,
                digest=digest,
                artifact=self._artifact_state(self.artifact_path(spec.name),
                                              digest),
                path=self.artifact_path(spec.name),
                suite=suite.name if suite is not None else None,
                total_jobs=plan.unique_jobs if plan is not None else 0,
                hits=plan.hits if plan is not None else 0,
                misses=plan.misses if plan is not None else 0,
            ))
        return statuses

    # ------------------------------------------------------------------
    # building
    # ------------------------------------------------------------------
    def build(
        self,
        names: Sequence[str] | None = None,
        force: bool = False,
        shard: Shard | None = None,
        csv: bool = False,
        png: bool = False,
    ) -> BuildReport:
        """Simulate only the residual misses, then (re)render stale
        artifacts.  See the module docstring for the four stages."""
        recorder = get_recorder()
        with recorder.span(
            "figures.build",
            shard=str(shard) if shard is not None else None,
        ) as span:
            resolved = self._resolved(names)
            plans = self._suite_plans(resolved)

            # union of residual misses across every suite, deduped by digest
            misses, total_jobs = self._collect_misses(plans)
            residual = [
                (digest, spec)
                for digest, spec in misses.items()
                if shard is None or shard.owns(digest)
            ]
            span.annotate(
                figures=len(resolved),
                total_jobs=len(total_jobs),
                planned_misses=len(misses),
                residual=len(residual),
            )

            executed = 0
            batch = None
            if residual:
                from ..scenarios.runner import run_specs

                run_specs(
                    [spec for _digest, spec in residual],
                    executor=self._executor,
                    power_model=self._model,
                )
                batch = self._executor.last_report
                executed = (
                    batch.executed if batch is not None else len(residual)
                )

            report = BuildReport(
                total_jobs=len(total_jobs),
                planned_misses=len(misses),
                executed=executed,
                batch=batch,
                shard=shard,
            )
            fetched: dict[str, Any] = {}  # suite JSON -> store results, once
            for spec, suite, digest in resolved:
                with recorder.span(
                    "figure", figure=spec.name, digest=digest
                ) as fig_span:
                    artifact = self._render_one(
                        spec, suite, digest, force=force,
                        csv=csv, png=png, fetched=fetched,
                    )
                    fig_span.annotate(status=artifact.status)
                report.artifacts.append(artifact)
            return report

    def _suite_results(
        self, suite: Any
    ) -> tuple[list[ScenarioResult], list[str]] | None:
        """Every expanded scenario's result from the store, or ``None``
        when coverage is incomplete (returns the unique job digests on
        success)."""
        results: list[ScenarioResult] = []
        digests: set[str] = set()
        for spec in suite.expand():
            digest = spec.to_job(power=self._model).digest
            result = self.store.get(digest)
            if result is None:
                return None
            digests.add(digest)
            results.append(ScenarioResult(spec=spec, result=result))
        return results, sorted(digests)

    def _fetch_suite(
        self, suite: Any, fetched: dict[str, Any] | None
    ) -> tuple[list[ScenarioResult], list[str]] | None:
        """:meth:`_suite_results`, memoized per build pass — the shared
        evaluation suite is expanded and deserialized once, not once per
        consuming figure."""
        if fetched is None:
            return self._suite_results(suite)
        key = suite.to_json()
        if key not in fetched:
            fetched[key] = self._suite_results(suite)
        return fetched[key]

    def _render_one(
        self,
        spec: FigureSpec,
        suite: Any,
        digest: str,
        force: bool,
        csv: bool,
        png: bool,
        fetched: dict[str, Any] | None = None,
    ) -> FigureArtifact:
        path = self.artifact_path(spec.name)
        state = self._artifact_state(path, digest)
        if state == "fresh" and not force:
            # exports are derived from the (fresh) on-disk payload, so a
            # later `build --csv/--png` still produces them
            if csv or png:
                payload = json.loads(path.read_text(encoding="utf-8"))
                if csv:
                    render_csv(payload, path.with_suffix(".csv"))
                if png:
                    render_png(payload, path.with_suffix(".png"))
            return FigureArtifact(name=spec.name, status="fresh",
                                  digest=digest, path=path)

        results: tuple[ScenarioResult, ...] = ()
        job_digests: list[str] = []
        if suite is not None:
            covered = self._fetch_suite(suite, fetched)
            if covered is None:
                return FigureArtifact(name=spec.name, status="incomplete",
                                      digest=digest)
            listed, job_digests = covered
            results = tuple(listed)

        ctx = ExtractionContext(
            params=self.params, power=self._model, results=results
        )
        data = get_extractor(spec.extractor)(ctx)
        payload = figure_payload(
            spec=spec,
            suite=suite,
            digest=digest,
            data=data,
            job_digests=job_digests,
            store_backend=self.store.backend.name,
        )
        self.out_dir.mkdir(parents=True, exist_ok=True)
        render_json(payload, path)
        if csv:
            render_csv(payload, path.with_suffix(".csv"))
        if png:
            render_png(payload, path.with_suffix(".png"))
        status = "built" if state == "missing" else "rebuilt"
        return FigureArtifact(name=spec.name, status=status, digest=digest,
                              path=path)

    # ------------------------------------------------------------------
    def data(self, name: str) -> Any:
        """Extract one figure's data from the store without writing files.

        The store must already cover the figure's suite (e.g. after
        :meth:`build`); raises :class:`~repro.errors.FigureError`
        otherwise.
        """
        for spec, suite, _digest in self._resolved([name]):
            results: tuple[ScenarioResult, ...] = ()
            if suite is not None:
                fetched = self._suite_results(suite)
                if fetched is None:
                    raise FigureError(
                        f"figure {name!r}: result store does not cover "
                        f"suite {suite.name!r}; run build() first"
                    )
                results = tuple(fetched[0])
            ctx = ExtractionContext(
                params=self.params, power=self._model, results=results
            )
            return get_extractor(spec.extractor)(ctx)
        raise FigureError(f"unknown figure {name!r}")  # pragma: no cover
