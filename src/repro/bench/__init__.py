"""Micro/meso performance benchmarks with regression tracking.

``repro.bench`` is the measurement infrastructure every "make a hot
path measurably faster" change is judged against:

* :mod:`repro.bench.core` — the timing discipline: explicit warmup,
  fixed repetition counts, best-of/mean/stddev statistics, and
  throughput expressed in work units per second (events/sec for the
  engine, bumps/sec for statistics, sims/sec for whole suites).
* :mod:`repro.bench.benches` — the benchmark definitions, from the
  event-kernel microbenchmark (``bench_engine``) up to the end-to-end
  smoke-suite run (``bench_e2e_suite``).
* :mod:`repro.bench.report` — machine-readable ``BENCH_*.json`` files
  at the repo root, plus before/after comparison reports.

The CLI surface is ``repro bench`` (see ``docs/performance.md``).
"""

from .benches import BENCHMARKS, available_benchmarks, run_benchmarks
from .core import BenchResult, run_timed
from .report import (
    bench_payload,
    compare_payloads,
    find_baseline,
    load_bench_json,
    regression_failures,
    session_check_mode,
    write_bench_json,
)

__all__ = [
    "BENCHMARKS",
    "BenchResult",
    "available_benchmarks",
    "bench_payload",
    "compare_payloads",
    "find_baseline",
    "load_bench_json",
    "regression_failures",
    "run_benchmarks",
    "run_timed",
    "session_check_mode",
    "write_bench_json",
]
