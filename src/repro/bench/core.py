"""Benchmark timing discipline: warmup, repetitions, robust statistics.

A benchmark here is a callable that performs one *repetition* of a
fixed amount of work and returns the number of work units it performed
(events executed, counters bumped, simulations run, ...).  The runner

1. calls it ``warmup`` times untimed — so allocator pools, caches and
   (on other interpreters) JITs reach steady state,
2. calls it ``repeats`` times under ``time.perf_counter``,
3. reports *best-of* throughput alongside mean/stddev.

Best-of is the standard robust estimator for microbenchmarks on a
multi-tasking host: external interference only ever makes a repetition
slower, never faster, so the minimum is the least-noisy sample (the
same reasoning as CPython's ``timeit`` documentation).
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Any, Callable

from ..errors import BenchmarkError


@dataclass(frozen=True)
class BenchResult:
    """Measured outcome of one benchmark.

    ``units_per_second`` is derived from the *best* repetition — the
    headline regression-tracking number.  ``seconds`` (per repetition)
    are kept so wall-clock comparisons (e.g. the e2e suite benchmark)
    can be made directly.
    """

    name: str
    unit: str
    units_per_repeat: int
    repeats: int
    warmup: int
    best_seconds: float
    mean_seconds: float
    stddev_seconds: float
    units_per_second: float
    meta: dict[str, Any] = field(default_factory=dict)

    def summary(self) -> str:
        return (
            f"{self.name}: {self.units_per_second:,.0f} {self.unit}/s "
            f"(best of {self.repeats}; {self.best_seconds * 1e3:.2f} ms/rep, "
            f"mean {self.mean_seconds * 1e3:.2f} ms "
            f"± {self.stddev_seconds * 1e3:.2f} ms)"
        )

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "unit": self.unit,
            "units_per_repeat": self.units_per_repeat,
            "repeats": self.repeats,
            "warmup": self.warmup,
            "best_seconds": self.best_seconds,
            "mean_seconds": self.mean_seconds,
            "stddev_seconds": self.stddev_seconds,
            "units_per_second": self.units_per_second,
            "meta": dict(self.meta),
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "BenchResult":
        return cls(
            name=data["name"],
            unit=data["unit"],
            units_per_repeat=int(data["units_per_repeat"]),
            repeats=int(data["repeats"]),
            warmup=int(data["warmup"]),
            best_seconds=float(data["best_seconds"]),
            mean_seconds=float(data["mean_seconds"]),
            stddev_seconds=float(data["stddev_seconds"]),
            units_per_second=float(data["units_per_second"]),
            meta=dict(data.get("meta", {})),
        )


def run_timed(
    fn: Callable[[], int],
    *,
    name: str,
    unit: str,
    repeats: int = 5,
    warmup: int = 2,
    meta: dict[str, Any] | None = None,
) -> BenchResult:
    """Time ``fn`` under the warmup + repetition discipline.

    ``fn`` performs one repetition and returns the number of work units
    it completed; every repetition must perform the same work (the
    runner asserts the returned unit counts agree).
    """
    if repeats < 1:
        raise BenchmarkError(f"benchmark {name!r}: repeats must be >= 1")
    if warmup < 0:
        raise BenchmarkError(f"benchmark {name!r}: warmup must be >= 0")

    for _ in range(warmup):
        fn()

    units: int | None = None
    samples: list[float] = []
    for _ in range(repeats):
        started = time.perf_counter()
        done = fn()
        samples.append(time.perf_counter() - started)
        if not isinstance(done, int) or done <= 0:
            raise BenchmarkError(
                f"benchmark {name!r} must return a positive unit count, "
                f"got {done!r}"
            )
        if units is None:
            units = done
        elif units != done:
            raise BenchmarkError(
                f"benchmark {name!r} is not doing fixed work: "
                f"{units} units then {done}"
            )

    best = min(samples)
    mean = sum(samples) / len(samples)
    if len(samples) > 1:
        var = sum((s - mean) ** 2 for s in samples) / (len(samples) - 1)
    else:
        var = 0.0
    if best <= 0.0:  # clock granularity floor; avoid inf throughput
        best = 1e-9
    return BenchResult(
        name=name,
        unit=unit,
        units_per_repeat=units,
        repeats=repeats,
        warmup=warmup,
        best_seconds=best,
        mean_seconds=mean,
        stddev_seconds=math.sqrt(var),
        units_per_second=units / best,
        meta=dict(meta or {}),
    )
