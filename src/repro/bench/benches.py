"""The benchmark definitions: event kernel up to whole-suite runs.

Every benchmark is deterministic (fixed seeds, fixed work per
repetition) so before/after comparisons measure the code, not the
workload.  ``check=True`` shrinks the work to CI-smoke size — the
numbers are meaningless for regression tracking but prove the
benchmarks still run.

Benchmarks
----------
``bench_engine``
    The discrete-event kernel alone: a self-rescheduling event
    population (mimicking in-flight memory operations) plus a stream of
    one-shot events, measured in events executed per second.  This is
    the floor every simulated cycle pays.
``bench_stats``
    Counter/histogram update throughput through pre-resolved handles —
    the accounting cost of every cache access and transaction event.
``bench_timeline``
    State-timeline recording plus the energy layer's interval sweep
    over the recorded change-points (the Eq. 1–5 consumption path).
``bench_cache``
    L1 lookup/touch/fill traffic with a working set sized to force a
    realistic mix of hits, misses and evictions.
``bench_directory``
    A sustained directory flush storm: one fill preamble establishes
    full sharer fan-out, then back-to-back TID-ordered commit flushes
    (64 lines x 8 words each, writes precomputed outside the timed
    region) keep the directory on its commit-application path — the
    batched flush-service loop the PR 7 rewrite targets, measured in
    lines committed per second.
``bench_replicates``
    Seed replicates of one spec through the pool executor — the
    replicate-pack dispatch path (one warmed process serving a whole
    seed family instead of one round-trip per job).
``bench_replicates_marginal``
    The pack warm path in isolation: one in-process ``execute_pack``
    over a seed family, reporting the *marginal*-seed cost (members
    served by ``Machine.reset`` and the shared prep cache) as the
    headline rate, with the first-seed (cold build) cost in ``meta``.
    This is the number the pack-shared warm state work moves: the
    first seed pays construction, every further seed pays only the
    simulation.
``bench_e2e_suite``
    The ``smoke`` scenario suite end-to-end on a cold cache (serial
    executor, no result store) — simulations per second as a user
    experiences them.  Runs at ``medium`` scale (``tiny`` in check
    mode) so the measured work is dominated by simulation, not setup.
"""

from __future__ import annotations

from typing import Any, Callable, Sequence

from ..errors import BenchmarkError
from .core import BenchResult, run_timed

__all__ = ["BENCHMARKS", "available_benchmarks", "run_benchmarks"]


# ----------------------------------------------------------------------
# micro: event engine
# ----------------------------------------------------------------------
def bench_engine(check: bool = False, repeats: int = 5, warmup: int = 2) -> BenchResult:
    from ..sim.engine import Engine

    population = 64           # concurrently-scheduled recurring events
    horizon = 400 if check else 20_000  # cycles simulated per repetition

    def one_repetition() -> int:
        engine = Engine()

        def recur(delay: int) -> None:
            # Self-rescheduling callback with one argument: the common
            # shape of memory/bus completion events.
            if engine.now < horizon:
                engine.schedule(delay, recur, delay)

        def one_shot() -> None:
            pass

        for i in range(population):
            engine.schedule(i % 7, recur, 1 + i % 5)
            engine.schedule(i % 11, one_shot)
        # A sprinkling of cancellations so the lazy-deletion path stays
        # on the profile (aborted HTM operations cancel their events).
        for i in range(0, horizon, 50):
            event = engine.schedule(i + 1, one_shot)
            event.cancel()
        engine.run()
        return engine.events_executed

    return run_timed(
        one_repetition,
        name="bench_engine",
        unit="events",
        repeats=repeats,
        warmup=warmup,
        meta={"population": population, "horizon": horizon, "check": check},
    )


# ----------------------------------------------------------------------
# micro: statistics registry
# ----------------------------------------------------------------------
def bench_stats(check: bool = False, repeats: int = 5, warmup: int = 2) -> BenchResult:
    from ..sim.stats import StatsRegistry

    ops = 2_000 if check else 400_000

    def one_repetition() -> int:
        stats = StatsRegistry()
        # The hot path binds handles once and calls .add()/.record();
        # this is exactly what processor/cache construction does.
        hits = stats.counter("proc0.cache.hits")
        misses = stats.counter("proc0.cache.misses")
        busy = stats.counter("bus.busy_cycles")
        lat = stats.histogram("tx.latency")
        add_hit = hits.add
        add_miss = misses.add
        add_busy = busy.add
        record = lat.record
        for i in range(ops):
            add_hit()
            if not i % 16:
                add_miss()
            add_busy(3)
            if not i % 64:
                record(i & 1023)
        return ops

    return run_timed(
        one_repetition,
        name="bench_stats",
        unit="bumps",
        repeats=repeats,
        warmup=warmup,
        meta={"ops": ops, "check": check},
    )


# ----------------------------------------------------------------------
# micro: timeline recording + energy interval sweep
# ----------------------------------------------------------------------
def bench_timeline(check: bool = False, repeats: int = 5, warmup: int = 2) -> BenchResult:
    from ..power.energy import compute_energy
    from ..power.model import PowerModel
    from ..power.states import ProcState
    from ..sim.timeline import StateTimeline

    procs = 8
    changes = 200 if check else 20_000  # state changes per processor
    cycle = (ProcState.RUN, ProcState.MISS, ProcState.RUN, ProcState.COMMIT,
             ProcState.GATED)
    model = PowerModel.derive()

    def one_repetition() -> int:
        timelines = []
        end = 0
        for p in range(procs):
            tl = StateTimeline(ProcState.RUN)
            t = 0
            for i in range(changes):
                t += 1 + (i * 7 + p * 3) % 9
                tl.set_state(t, cycle[(i + p) % len(cycle)])
            end = max(end, t + 1)
            timelines.append(tl)
        for tl in timelines:
            tl.finalize(end)
        compute_energy(timelines, (0, end), model, gated_run=True)
        return procs * changes

    return run_timed(
        one_repetition,
        name="bench_timeline",
        unit="changes",
        repeats=repeats,
        warmup=warmup,
        meta={"procs": procs, "changes": changes, "check": check},
    )


# ----------------------------------------------------------------------
# micro: L1 cache
# ----------------------------------------------------------------------
def bench_cache(check: bool = False, repeats: int = 5, warmup: int = 2) -> BenchResult:
    from ..config import CacheConfig
    from ..mem.cache import L1Cache
    from ..sim.stats import StatsRegistry

    accesses = 2_000 if check else 300_000
    config = CacheConfig()
    lines = config.num_lines * 2  # working set at 2x capacity: mixes in misses

    def one_repetition() -> int:
        cache = L1Cache(config, proc_id=0, stats=StatsRegistry())
        line = 1
        for i in range(accesses):
            # Multiplicative-congruential walk: deterministic, scattered
            # across sets, revisits lines often enough to produce hits.
            line = (line * 1103515245 + 12345 + i) % lines
            entry = cache.touch(line)
            if entry is None:
                cache.fill(line)
            if not i % 9:
                cache.mark_spec_read(line)
            if not i % 101:
                cache.clear_speculative((line,), commit=True)
        return accesses

    return run_timed(
        one_repetition,
        name="bench_cache",
        unit="accesses",
        repeats=repeats,
        warmup=warmup,
        meta={"accesses": accesses, "ways": config.ways, "check": check},
    )


# ----------------------------------------------------------------------
# micro: directory flush storm
# ----------------------------------------------------------------------
class _SinkProc:
    """Stand-in processor absorbing directory-to-processor traffic.

    Only the three entry points the directory calls are provided; the
    read-set makes every invalidation look like a conflict so the
    abort-probe branch stays on the measured path.
    """

    __slots__ = ("read_lines",)

    def __init__(self, read_lines):
        self.read_lines = set(read_lines)

    def would_abort_on(self, lines) -> bool:
        read = self.read_lines
        return any(line in read for line in lines)

    def receive_invalidation(self, msg, gate) -> None:
        pass

    def receive_flush_done(self, msg) -> None:
        pass

    def receive_fill_reply(self, msg) -> None:
        pass


class _SinkMachine:
    __slots__ = ("_procs",)

    def __init__(self, procs):
        self._procs = procs

    def proc(self, pid):
        return self._procs[pid]


def bench_directory(check: bool = False, repeats: int = 5, warmup: int = 2) -> BenchResult:
    from ..config import BusConfig, DirectoryConfig, MemoryConfig
    from ..mem.address import AddressMap
    from ..mem.bus import Bus
    from ..mem.directory import Directory
    from ..mem.memory import MainMemory
    from ..mem.messages import FillRequest, FlushRequest
    from ..sim.engine import Engine
    from ..sim.stats import StatsRegistry

    procs = 8
    lines_per_flush = 64
    words_per_line = 8
    rounds = 4 if check else 125
    line_bytes = 64
    block = tuple(range(lines_per_flush))
    # Flush bodies are precomputed outside the timed region so the
    # measurement is the directory's commit-application path, not
    # bench-side tuple construction.  Distinct values per processor keep
    # the memory image changing across flushes.
    writes_of = [
        tuple(
            (line * line_bytes + w * 8, pid * words_per_line + w)
            for line in block
            for w in range(words_per_line)
        )
        for pid in range(procs)
    ]

    def one_repetition() -> int:
        engine = Engine()
        stats = StatsRegistry()
        addr_map = AddressMap(
            line_bytes=line_bytes, num_dirs=1, memory_bytes=1 << 30
        )
        bus = Bus(engine, BusConfig(), stats)
        memory = MainMemory(engine, MemoryConfig(), stats)
        directory = Directory(
            0, engine, bus, memory, DirectoryConfig(), addr_map, stats
        )
        directory.attach(_SinkMachine([_SinkProc(block) for _ in range(procs)]))

        # One fan-out preamble: every processor shares every line, so
        # the first round of flushes victimizes all peers; from then on
        # each flush re-homes the lines to its committer, keeping a
        # steady single-victim invalidation stream without re-filling.
        fill_seq = 0
        for pid in range(procs):
            for line in block:
                fill_seq += 1
                directory.receive_fill_request(
                    FillRequest(pid, line, engine.now, fill_seq)
                )
        engine.run()

        tid = 0
        for _ in range(rounds):
            for pid in range(procs):
                tid += 1
                directory.receive_flush_request(
                    FlushRequest(
                        pid, tid, block, writes_of[pid], engine.now, "bench"
                    )
                )
                engine.run()
        return rounds * procs * lines_per_flush

    return run_timed(
        one_repetition,
        name="bench_directory",
        unit="lines",
        repeats=repeats,
        warmup=warmup,
        meta={
            "procs": procs,
            "lines_per_flush": lines_per_flush,
            "words_per_line": words_per_line,
            "rounds": rounds,
            "check": check,
        },
    )


# ----------------------------------------------------------------------
# meso: seed replicates through the pool executor
# ----------------------------------------------------------------------
def bench_replicates(
    check: bool = False, repeats: int | None = None, warmup: int | None = None
) -> BenchResult:
    from ..exec.executor import Executor
    from ..scenarios.spec import ScenarioSpec

    replicates = 4 if check else 16
    workers = 2
    if repeats is None:
        repeats = 1 if check else 3
    if warmup is None:
        warmup = 0 if check else 1

    def one_repetition() -> int:
        jobs = [
            ScenarioSpec(
                workload="counter", scale="tiny", threads=2, seed=seed
            ).to_job()
            for seed in range(replicates)
        ]
        results = Executor(jobs=workers).run(jobs)
        if len(results) != replicates:
            raise BenchmarkError(
                f"bench_replicates expected {replicates} results, "
                f"got {len(results)}"
            )
        return replicates

    return run_timed(
        one_repetition,
        name="bench_replicates",
        unit="sims",
        repeats=repeats,
        warmup=warmup,
        meta={"replicates": replicates, "workers": workers, "check": check},
    )


# ----------------------------------------------------------------------
# meso: marginal-seed cost inside one in-process replicate pack
# ----------------------------------------------------------------------
def bench_replicates_marginal(
    check: bool = False, repeats: int | None = None, warmup: int | None = None
) -> BenchResult:
    import math

    from ..exec.jobs import execute_pack
    from ..scenarios.spec import ScenarioSpec

    replicates = 4 if check else 16
    if repeats is None:
        repeats = 2 if check else 5
    if warmup is None:
        warmup = 1
    if repeats < 1:
        raise BenchmarkError("bench_replicates_marginal: repeats must be >= 1")

    def run_pack():
        jobs = [
            ScenarioSpec(
                workload="counter", scale="tiny", threads=2, seed=seed
            ).to_job()
            for seed in range(replicates)
        ]
        result = execute_pack(jobs)
        # Tolerate both return shapes so this benchmark can also be
        # dropped into an older checkout to capture a "before" session
        # (execute_pack used to return the outcome list alone).
        outcomes = result[0] if isinstance(result, tuple) else result
        if len(outcomes) != replicates or any(o.error for o in outcomes):
            raise BenchmarkError(
                "bench_replicates_marginal expected "
                f"{replicates} clean outcomes"
            )
        return outcomes

    for _ in range(warmup):
        run_pack()

    # Custom timing loop (not run_timed): the measured quantity is the
    # per-member marginal cost *excluding* the pack's first member, and
    # execute_pack already times each member individually — so one pack
    # per repetition yields both numbers, best-of across repetitions.
    first_samples: list[float] = []
    marginal_samples: list[float] = []
    for _ in range(repeats):
        outcomes = run_pack()
        first_samples.append(outcomes[0].seconds)
        marginal_samples.append(
            math.fsum(o.seconds for o in outcomes[1:]) / (replicates - 1)
        )
    best = min(marginal_samples)
    mean = sum(marginal_samples) / len(marginal_samples)
    if len(marginal_samples) > 1:
        var = sum((s - mean) ** 2 for s in marginal_samples) / (
            len(marginal_samples) - 1
        )
    else:
        var = 0.0
    if best <= 0.0:
        best = 1e-9
    return BenchResult(
        name="bench_replicates_marginal",
        unit="sims",
        units_per_repeat=1,
        repeats=repeats,
        warmup=warmup,
        best_seconds=best,
        mean_seconds=mean,
        stddev_seconds=math.sqrt(var),
        units_per_second=1.0 / best,
        meta={
            "replicates": replicates,
            "first_seed_best_seconds": min(first_samples),
            "first_seed_mean_seconds": (
                sum(first_samples) / len(first_samples)
            ),
            "check": check,
        },
    )


# ----------------------------------------------------------------------
# meso: the smoke suite, end to end, cold cache
# ----------------------------------------------------------------------
def bench_e2e_suite(
    check: bool = False, repeats: int | None = None, warmup: int | None = None
) -> BenchResult:
    from ..exec.executor import Executor
    from ..scenarios.builtin import get_suite
    from ..scenarios.runner import run_suite

    # medium keeps the measurement simulation-dominated; check mode
    # shrinks the work (like every other bench), not the shape.
    scale = "tiny" if check else "medium"
    suite = get_suite("smoke", scale=scale)
    # Explicit repeats/warmup always win (matching the other benches);
    # only the *defaults* shrink in check mode.
    if repeats is None:
        repeats = 1 if check else 3
    if warmup is None:
        warmup = 0 if check else 1

    def one_repetition() -> int:
        # Serial executor, no result store: every repetition simulates
        # every unique job from scratch (cold cache by construction).
        outcome = run_suite(suite, executor=Executor(jobs=1))
        report = outcome.report
        executed = report.executed if report is not None else 0
        if executed <= 0:
            raise BenchmarkError(
                "bench_e2e_suite expected cold-cache execution but the "
                "executor reports zero jobs run"
            )
        return executed

    return run_timed(
        one_repetition,
        name="bench_e2e_suite",
        unit="sims",
        repeats=repeats,
        warmup=warmup,
        meta={
            "suite": suite.name,
            "scenarios": suite.size,
            "scale": scale,
            "check": check,
        },
    )


# ----------------------------------------------------------------------
# registry
# ----------------------------------------------------------------------
BENCHMARKS: dict[str, Callable[..., BenchResult]] = {
    "bench_engine": bench_engine,
    "bench_stats": bench_stats,
    "bench_timeline": bench_timeline,
    "bench_cache": bench_cache,
    "bench_directory": bench_directory,
    "bench_replicates": bench_replicates,
    "bench_replicates_marginal": bench_replicates_marginal,
    "bench_e2e_suite": bench_e2e_suite,
}


def available_benchmarks() -> list[str]:
    return list(BENCHMARKS)


def run_benchmarks(
    names: Sequence[str] | None = None,
    check: bool = False,
    repeats: int | None = None,
    warmup: int | None = None,
    progress: Callable[[str], Any] | None = None,
) -> list[BenchResult]:
    """Run benchmarks by name (all of them by default), in listed order."""
    selected = list(names) if names else available_benchmarks()
    unknown = [n for n in selected if n not in BENCHMARKS]
    if unknown:
        raise BenchmarkError(
            f"unknown benchmark(s) {', '.join(unknown)}; available: "
            f"{', '.join(available_benchmarks())}"
        )
    results = []
    for name in selected:
        if progress is not None:
            progress(name)
        kwargs: dict[str, Any] = {"check": check}
        if repeats is not None:
            kwargs["repeats"] = repeats
        if warmup is not None:
            kwargs["warmup"] = warmup
        results.append(BENCHMARKS[name](**kwargs))
    return results
