"""Machine-readable benchmark reports: ``BENCH_*.json`` at the repo root.

Two payload shapes share one file format (discriminated by ``kind``):

* ``"bench"`` — one measurement session: host fingerprint plus a
  ``benchmarks`` mapping of name → :class:`~repro.bench.core.BenchResult`.
* ``"comparison"`` — a before/after pair: both sessions embedded plus a
  per-benchmark ``speedup`` table (after ÷ before throughput), which is
  what PR acceptance gates read (``BENCH_pr3.json``).

Timestamps live only at the top level so two runs of the same code
produce comparable ``benchmarks`` sections.
"""

from __future__ import annotations

import json
import platform
import sys
import time
from pathlib import Path
from typing import Any, Sequence

from ..errors import BenchmarkError
from .core import BenchResult

__all__ = [
    "SCHEMA_VERSION",
    "bench_payload",
    "compare_payloads",
    "find_baseline",
    "load_bench_json",
    "regression_failures",
    "session_check_mode",
    "write_bench_json",
    "format_results",
]

SCHEMA_VERSION = 1


def _host_fingerprint() -> dict[str, Any]:
    import os

    return {
        "python": sys.version.split()[0],
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpus": os.cpu_count(),
    }


def bench_payload(
    results: Sequence[BenchResult], label: str = ""
) -> dict[str, Any]:
    """One measurement session as plain JSON-able data."""
    return {
        "schema": SCHEMA_VERSION,
        "kind": "bench",
        "label": label,
        "created": time.time(),
        "host": _host_fingerprint(),
        "benchmarks": {r.name: r.to_dict() for r in results},
    }


def compare_payloads(
    before: dict[str, Any], after: dict[str, Any]
) -> dict[str, Any]:
    """Join two ``bench`` payloads into a before/after comparison.

    ``speedup[name]`` is after-throughput over before-throughput, so a
    value above 1.0 means the change made that benchmark faster.  Only
    benchmarks present in both sessions are compared.
    """
    for payload, role in ((before, "before"), (after, "after")):
        if payload.get("kind") != "bench":
            raise BenchmarkError(
                f"{role} payload is not a bench session "
                f"(kind={payload.get('kind')!r})"
            )
    speedup: dict[str, float] = {}
    for name, entry in after["benchmarks"].items():
        base = before["benchmarks"].get(name)
        if base is None:
            continue
        base_rate = float(base["units_per_second"])
        if base_rate > 0:
            speedup[name] = float(entry["units_per_second"]) / base_rate
    return {
        "schema": SCHEMA_VERSION,
        "kind": "comparison",
        "created": time.time(),
        "host": _host_fingerprint(),
        "before": {k: before[k] for k in ("label", "host", "benchmarks")},
        "after": {k: after[k] for k in ("label", "host", "benchmarks")},
        "speedup": speedup,
    }


def regression_failures(
    baseline: dict[str, Any],
    current: dict[str, Any],
    max_regression_pct: float = 25.0,
) -> list[str]:
    """The CI regression gate: which benchmarks got unacceptably slower?

    Compares per-benchmark throughput (``units_per_second``) of
    *current* against *baseline* and reports every benchmark whose
    throughput dropped by more than ``max_regression_pct`` percent.
    Benchmarks present in only one payload are ignored (adding or
    retiring a benchmark must not fail the gate).  Returns
    human-readable failure lines; an empty list means the gate passes.

    Baselines are only comparable within one runner class — commit one
    ``BENCH_baseline.json`` per class of machine you gate on.
    """
    if not 0.0 <= max_regression_pct < 100.0:
        raise BenchmarkError(
            f"max_regression_pct must be in [0, 100): {max_regression_pct}"
        )
    for payload, role in ((baseline, "baseline"), (current, "current")):
        if payload.get("kind") != "bench":
            # e.g. a comparison-kind BENCH_pr*.json: no 'benchmarks' key,
            # which would make the gate pass vacuously
            raise BenchmarkError(
                f"{role} payload is not a bench session "
                f"(kind={payload.get('kind')!r})"
            )
    floor = 1.0 - max_regression_pct / 100.0
    failures = []
    for name, entry in sorted(current.get("benchmarks", {}).items()):
        base = baseline.get("benchmarks", {}).get(name)
        if base is None:
            continue
        base_rate = float(base["units_per_second"])
        if base_rate <= 0.0:
            continue
        ratio = float(entry["units_per_second"]) / base_rate
        if ratio < floor:
            failures.append(
                f"{name}: {ratio:.2f}x of baseline throughput "
                f"({float(entry['units_per_second']):,.0f} vs "
                f"{base_rate:,.0f} {entry.get('unit', 'units')}/s; "
                f"allowed floor {floor:.2f}x)"
            )
    return failures


def session_check_mode(payload: dict[str, Any]) -> bool:
    """Was a bench session measured in ``--check`` (smoke) mode?

    Sessions are only comparable within one mode: check-mode work sizes
    are orders of magnitude smaller, so gating a full run against a
    check baseline (or vice versa) would always pass or always fail.
    A session counts as check-mode when every benchmark's recorded
    ``meta.check`` flag is true (the CLI runs whole sessions in one
    mode, so mixed payloads do not arise in practice).
    """
    benchmarks = payload.get("benchmarks", {})
    if not benchmarks:
        return False
    return all(
        bool(entry.get("meta", {}).get("check"))
        for entry in benchmarks.values()
    )


def find_baseline(
    root: str | Path = ".", check: bool | None = None
) -> Path | None:
    """The default gate baseline: the newest committed ``BENCH_*.json``.

    Scans *root* for bench-session payloads (``kind == "bench"`` —
    comparison reports like ``BENCH_pr3.json`` are skipped) whose
    check-mode matches *check* (``None`` accepts either), and returns
    the newest by ``created`` timestamp.  ``BENCH_baseline.json`` is
    held back as the fallback: it is returned only when no other
    committed session qualifies, so a PR that lands a fresher
    ``BENCH_pr<N>.json`` session automatically becomes the bar the next
    change is measured against.
    """
    root = Path(root)
    fallback: Path | None = None
    best: tuple[float, Path] | None = None
    for path in sorted(root.glob("BENCH_*.json")):
        try:
            payload = load_bench_json(path)
        except BenchmarkError:
            continue
        if payload.get("kind") != "bench":
            continue
        if check is not None and session_check_mode(payload) != check:
            continue
        if path.name == "BENCH_baseline.json":
            fallback = path
            continue
        created = float(payload.get("created", 0.0))
        if best is None or created > best[0]:
            best = (created, path)
    if best is not None:
        return best[1]
    return fallback


def write_bench_json(path: str | Path, payload: dict[str, Any]) -> Path:
    path = Path(path)
    path.write_text(json.dumps(payload, indent=2, sort_keys=False) + "\n")
    return path


def load_bench_json(path: str | Path) -> dict[str, Any]:
    path = Path(path)
    try:
        data = json.loads(path.read_text())
    except (OSError, ValueError) as exc:
        raise BenchmarkError(f"cannot read bench file {path}: {exc}") from exc
    if not isinstance(data, dict) or "benchmarks" not in data and data.get(
        "kind"
    ) != "comparison":
        raise BenchmarkError(f"{path} is not a bench report")
    return data


def format_results(results: Sequence[BenchResult]) -> str:
    """Human-readable session summary (one line per benchmark)."""
    return "\n".join(r.summary() for r in results)
