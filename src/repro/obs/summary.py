"""Read-side helpers for the ``repro obs`` CLI.

Everything here works on an observability *directory* — the
``run-<id>.jsonl`` / ``run-<id>.manifest.json`` pairs written by
:class:`~repro.obs.recorder.ObsRecorder` — and never needs the
recorder itself, so post-mortem analysis works on a copied-out obs
directory from any machine.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Iterator

from ..errors import ReproError

__all__ = ["list_runs", "resolve_run", "load_manifest", "load_events",
           "tail_events", "summarize_runs"]


def list_runs(directory: str | Path) -> list[str]:
    """Run ids present in an obs directory, oldest first.

    Run ids start with a wall-clock stamp, so lexicographic order is
    chronological order.
    """
    directory = Path(directory)
    if not directory.is_dir():
        return []
    ids = set()
    for path in directory.glob("run-*.jsonl"):
        ids.add(path.name[len("run-"):-len(".jsonl")])
    for path in directory.glob("run-*.manifest.json"):
        ids.add(path.name[len("run-"):-len(".manifest.json")])
    return sorted(ids)


def resolve_run(directory: str | Path, run: str | None) -> str:
    """Resolve a run selector: exact id, unique prefix, or latest."""
    runs = list_runs(directory)
    if not runs:
        raise ReproError(f"no observability runs found in {directory}")
    if run is None or run == "latest":
        return runs[-1]
    if run in runs:
        return run
    matches = [r for r in runs if r.startswith(run)]
    if len(matches) == 1:
        return matches[0]
    if not matches:
        raise ReproError(
            f"no run matching {run!r} in {directory} "
            f"(have: {', '.join(runs[-5:])})"
        )
    raise ReproError(
        f"run prefix {run!r} is ambiguous: {', '.join(matches)}"
    )


def load_manifest(directory: str | Path, run: str) -> dict[str, Any]:
    path = Path(directory) / f"run-{run}.manifest.json"
    if not path.is_file():
        raise ReproError(
            f"run {run} has no manifest at {path} "
            "(killed before its first batch finished?)"
        )
    try:
        return json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise ReproError(f"unreadable manifest {path}: {exc}") from exc


def load_events(directory: str | Path, run: str) -> Iterator[dict[str, Any]]:
    """Yield event-log records for one run, skipping torn/garbage lines."""
    path = Path(directory) / f"run-{run}.jsonl"
    if not path.is_file():
        return
    with path.open("r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue
            if isinstance(record, dict):
                yield record


def tail_events(directory: str | Path, run: str,
                limit: int = 20) -> list[dict[str, Any]]:
    """The last ``limit`` records of one run's event log."""
    from collections import deque

    return list(deque(load_events(directory, run), maxlen=max(1, limit)))


def summarize_runs(directory: str | Path,
                   runs: list[str] | None = None) -> dict[str, Any]:
    """Aggregate manifests across runs into one summary payload.

    Runs that never wrote a manifest are listed as ``skipped`` rather
    than failing the whole summary.
    """
    directory = Path(directory)
    selected = runs if runs is not None else list_runs(directory)
    manifests: list[dict[str, Any]] = []
    skipped: list[str] = []
    for run in selected:
        try:
            manifests.append(load_manifest(directory, run))
        except ReproError:
            skipped.append(run)

    executed = sum(m["metrics"]["jobs_executed"] for m in manifests)
    cache_hits = sum(m["metrics"]["cache_hits"] for m in manifests)
    failures = sum(m["metrics"]["failures"] for m in manifests)
    wall = sum(m["metrics"]["wall_seconds"] for m in manifests)
    probes = executed + cache_hits

    per_run = [
        {
            "run": m["run"],
            "finished": m.get("finished", False),
            "argv": m.get("argv", []),
            "batches": m["metrics"]["batches"],
            "jobs_executed": m["metrics"]["jobs_executed"],
            "cache_hits": m["metrics"]["cache_hits"],
            "failures": m["metrics"]["failures"],
            "hit_rate": m["metrics"]["hit_rate"],
            "sims_per_second": m["metrics"]["sims_per_second"],
            "wall_seconds": m["metrics"]["wall_seconds"],
            "job_latency_s": m["metrics"]["job_latency_s"],
        }
        for m in manifests
    ]

    failures_by_workload: dict[str, int] = {}
    for m in manifests:
        for workload, count in m["failures"]["by_workload"].items():
            failures_by_workload[workload] = (
                failures_by_workload.get(workload, 0) + count
            )

    return {
        "schema": manifests[0]["schema"] if manifests else 1,
        "kind": "obs-summary",
        "directory": str(directory),
        "runs": per_run,
        "skipped": skipped,
        "totals": {
            "runs": len(manifests),
            "jobs_executed": executed,
            "cache_hits": cache_hits,
            "failures": failures,
            "hit_rate": (cache_hits / probes) if probes else None,
            "sims_per_second": (executed / wall) if wall > 0 else None,
            "wall_seconds": wall,
            "failures_by_workload": failures_by_workload,
        },
    }
