"""``repro.obs`` — structured tracing, run manifests and metrics.

The observability layer is *opt-in* and *global per process*: call
sites throughout the execution spine (executor, store, backends,
scenario runner, figure builder) ask :func:`get_recorder` for the
process-wide recorder and emit spans/events/counters through it.  While
observability is off that recorder is a :class:`NullRecorder` whose
hooks are empty methods, so instrumentation costs nothing measurable
and — critically — changes no bytes in the result store or the figure
artifacts.

Enable it one of three ways:

* CLI flag: ``repro --obs-dir obs <command>``;
* environment: ``REPRO_OBS=1`` (directory from ``REPRO_OBS_DIR``,
  default ``obs``) — this is how child shard/worker *processes* inherit
  observability, since the recorder itself cannot cross a fork/spawn;
* programmatically: :func:`configure`.

Worker processes that should append to the *parent's* run pass the run
id through ``REPRO_OBS_RUN`` (set automatically by :func:`configure`
when ``export_env=True``); same-run appends are whole-line atomic via
an advisory file lock.
"""

from __future__ import annotations

import os
from pathlib import Path

from .recorder import (OBS_SCHEMA_VERSION, NullRecorder, ObsRecorder, Span,
                       new_run_id)

__all__ = [
    "OBS_SCHEMA_VERSION",
    "Span",
    "ObsRecorder",
    "NullRecorder",
    "new_run_id",
    "get_recorder",
    "configure",
    "disable",
    "reset",
    "obs_enabled_from_env",
    "obs_dir_from_env",
]

_ENV_ENABLE = "REPRO_OBS"
_ENV_DIR = "REPRO_OBS_DIR"
_ENV_RUN = "REPRO_OBS_RUN"
_DEFAULT_DIR = "obs"
_TRUTHY = frozenset({"1", "true", "yes", "on"})

_NULL = NullRecorder()
_recorder: NullRecorder | None = None  # None = env not consulted yet


def obs_enabled_from_env() -> bool:
    return os.environ.get(_ENV_ENABLE, "").strip().lower() in _TRUTHY


def obs_dir_from_env() -> str:
    return os.environ.get(_ENV_DIR, "").strip() or _DEFAULT_DIR


def get_recorder() -> NullRecorder:
    """The process-wide recorder (NullRecorder while obs is off).

    First call reads the environment, so worker processes spawned with
    ``REPRO_OBS=1`` / ``REPRO_OBS_RUN=<id>`` lazily attach themselves
    to the parent's run the first time any instrumented code runs.
    """
    global _recorder
    if _recorder is None:
        if obs_enabled_from_env():
            _recorder = ObsRecorder(
                obs_dir_from_env(),
                run_id=os.environ.get(_ENV_RUN, "").strip() or None,
            )
        else:
            _recorder = _NULL
    return _recorder


def configure(directory: str | Path, run_id: str | None = None,
              argv: list[str] | None = None,
              export_env: bool = True) -> ObsRecorder:
    """Enable observability for this process (and, by env, its children).

    ``export_env=True`` sets ``REPRO_OBS``/``REPRO_OBS_DIR``/
    ``REPRO_OBS_RUN`` so pool workers and shard subprocesses join the
    same run.
    """
    global _recorder
    if isinstance(_recorder, ObsRecorder):
        _recorder.close()
    recorder = ObsRecorder(directory, run_id=run_id, argv=argv)
    _recorder = recorder
    if export_env:
        os.environ[_ENV_ENABLE] = "1"
        os.environ[_ENV_DIR] = str(recorder.directory)
        os.environ[_ENV_RUN] = recorder.run_id
    return recorder


def disable() -> None:
    """Close any active recorder and pin this process to NullRecorder."""
    global _recorder
    if isinstance(_recorder, ObsRecorder):
        _recorder.close()
    _recorder = _NULL
    for key in (_ENV_ENABLE, _ENV_DIR, _ENV_RUN):
        os.environ.pop(key, None)


def reset() -> None:
    """Forget recorder state entirely (tests): next access re-reads env."""
    global _recorder
    if isinstance(_recorder, ObsRecorder):
        _recorder.close()
    _recorder = None
