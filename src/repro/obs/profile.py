"""Opt-in cProfile support for worker jobs.

``--profile`` wraps each executed job in :func:`profile_call`; the
worker returns a compact list of pstats rows (not the pstats object —
it must cross the process-pool pickle boundary), the parent merges rows
from every job with :func:`merge_rows`, and the manifest reports the
merged hot spots via :func:`top_rows`.  Rows are
``(func, ncalls, tottime_s, cumtime_s)`` with ``func`` rendered as
``file:line(name)``.
"""

from __future__ import annotations

import cProfile
import pstats
from typing import Any, Callable, TypeVar

__all__ = ["profile_call", "merge_rows", "top_rows", "PROFILE_ROW_LIMIT"]

T = TypeVar("T")

#: rows a single profiled job contributes (keeps pickles and manifests
#: bounded no matter how deep the call tree is)
PROFILE_ROW_LIMIT = 50


def profile_call(fn: Callable[..., T], *args: Any,
                 **kwargs: Any) -> tuple[T, list[tuple[str, int, float, float]]]:
    """Run ``fn`` under cProfile; return (result, top pstats rows)."""
    profiler = cProfile.Profile()
    result = profiler.runcall(fn, *args, **kwargs)
    stats = pstats.Stats(profiler)
    rows: list[tuple[str, int, float, float]] = []
    # stats entries: {(file, line, name): (cc, nc, tottime, cumtime, callers)}
    entries = sorted(stats.stats.items(),  # type: ignore[attr-defined]
                     key=lambda item: item[1][3], reverse=True)
    for (filename, line, name), (cc, nc, tottime, cumtime, _callers) in (
            entries[:PROFILE_ROW_LIMIT]):
        rows.append((f"{filename}:{line}({name})", nc, tottime, cumtime))
    return result, rows


def merge_rows(acc: dict[str, list[float]],
               rows: list[tuple[str, int, float, float]]) -> None:
    """Accumulate one job's rows into ``acc`` (func -> [ncalls, tot, cum])."""
    for func, ncalls, tottime, cumtime in rows:
        slot = acc.get(func)
        if slot is None:
            acc[func] = [float(ncalls), tottime, cumtime]
        else:
            slot[0] += ncalls
            slot[1] += tottime
            slot[2] += cumtime


def top_rows(acc: dict[str, list[float]],
             limit: int = 40) -> list[tuple[str, int, float, float]]:
    """The merged hot spots, heaviest cumulative time first."""
    ranked = sorted(acc.items(), key=lambda item: item[1][2], reverse=True)
    return [(func, int(ncalls), tottime, cumtime)
            for func, (ncalls, tottime, cumtime) in ranked[:limit]]
