"""The structured event recorder: spans, events and counters on JSONL.

One :class:`ObsRecorder` owns one *run*: a ``run-<id>.jsonl`` event log
plus a ``run-<id>.manifest.json`` summary inside an observability
directory.  Everything is designed to stay off the execution hot path:

* records are buffered in memory and written in one locked append per
  :meth:`flush` (one ``fsync`` per executor batch, not per record);
* the append takes the same advisory ``fcntl`` lock idiom as the JSONL
  store backend, so worker processes attached to the *same* run id
  (via ``ObsRecorder(dir, run_id=...)``) interleave whole lines, never
  torn ones;
* counters are plain in-memory accumulators snapshotted into the
  manifest — nothing in the simulator's inner loop ever emits a record.

Record schema (one JSON object per line)::

    {"schema": 1, "run": "<run id>", "kind": "span" | "event" | "counters",
     "name": "...", "id": "<pid>-<seq>", "parent": "<id>" | null,
     "ts": <wall clock>, "pid": <emitting pid>,
     "dur_s": <span duration>, "status": "ok" | "error",   # spans only
     "attrs": {...}}

Span ids are ``<pid>-<sequence>`` so ids stay unique even when several
processes share one run file; ``parent`` nests spans (and attaches
events to the enclosing span), giving the event stream a tree per
batch.  The :class:`NullRecorder` twin no-ops every method, which is
what every instrumented call site sees while observability is off.
"""

from __future__ import annotations

import json
import os
import sys
import threading
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Iterator

try:  # POSIX only; without it same-run multi-process appends may tear
    import fcntl
except ImportError:  # pragma: no cover - exercised only on Windows
    fcntl = None  # type: ignore[assignment]

__all__ = ["OBS_SCHEMA_VERSION", "Span", "ObsRecorder", "NullRecorder",
           "new_run_id"]

#: bump when the event-record or manifest layout changes incompatibly
OBS_SCHEMA_VERSION = 1

#: how many buffered records force an intermediate (fsync-free) flush
FLUSH_EVERY = 512

#: how many failures keep their full detail in memory for the manifest
MAX_FAILURE_DETAIL = 20


def new_run_id() -> str:
    """A sortable, collision-safe run id: wall clock + milliseconds + pid."""
    now = time.time()
    stamp = time.strftime("%Y%m%d-%H%M%S", time.localtime(now))
    return f"{stamp}-{int((now % 1.0) * 1000):03d}-p{os.getpid()}"


class Span:
    """One open span: annotate attributes while the work runs."""

    __slots__ = ("name", "id", "parent", "attrs", "ts")

    def __init__(self, name: str, id: str, parent: str | None,
                 attrs: dict[str, Any], ts: float) -> None:
        self.name = name
        self.id = id
        self.parent = parent
        self.attrs = attrs
        self.ts = ts

    def annotate(self, **attrs: Any) -> None:
        self.attrs.update(attrs)


class NullRecorder:
    """The disabled recorder: every hook is a no-op.

    Instrumented call sites hold a recorder reference and call it
    unconditionally; when observability is off they get this class, so
    the only cost on any path is an attribute lookup and an early
    return (guard expensive attribute *construction* with
    :attr:`enabled`).
    """

    enabled = False
    run_id: str | None = None
    directory: Path | None = None

    def event(self, name: str, **attrs: Any) -> None:
        pass

    @contextmanager
    def span(self, name: str, **attrs: Any) -> Iterator[Span]:
        yield _NULL_SPAN

    def complete_span(self, name: str, seconds: float,
                      parent: str | None = None, status: str = "ok",
                      **attrs: Any) -> None:
        pass

    def count(self, name: str, amount: float = 1) -> None:
        pass

    def counters(self) -> dict[str, float]:
        return {}

    def note_suite(self, name: str, digest: str) -> None:
        pass

    def note_jobs(self, digests: Any) -> None:
        pass

    def note_job_seconds(self, seconds: float) -> None:
        pass

    def note_batch(self, report: dict[str, Any]) -> None:
        pass

    def note_failure(self, workload: str, digest: str, label: str,
                     error: str) -> None:
        pass

    def add_profile(self, rows: Any) -> None:
        pass

    def flush(self, fsync: bool = True) -> None:
        pass

    def write_manifest(self, finished: bool = False) -> None:
        pass

    def close(self) -> None:
        pass


_NULL_SPAN = Span(name="", id="", parent=None, attrs={}, ts=0.0)


class ObsRecorder(NullRecorder):
    """Buffered, multi-process-safe JSONL recorder for one run.

    Parameters
    ----------
    directory:
        The observability directory (created if missing); every run in
        it is one ``run-<id>.jsonl`` + ``run-<id>.manifest.json`` pair.
    run_id:
        Attach to an existing run instead of starting a new one —
        worker or shard processes pass the parent's id and append to
        the *same* event log (whole-line atomic via the advisory lock).
    argv:
        The command line recorded in the manifest (default
        ``sys.argv``).
    """

    enabled = True

    def __init__(self, directory: str | Path, run_id: str | None = None,
                 argv: list[str] | None = None,
                 flush_every: int = FLUSH_EVERY) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        #: the process that *started* the run owns its manifest; attached
        #: processes (run_id given) only append events — their in-memory
        #: aggregates cover just their own slice and must not clobber it
        self.owner = run_id is None
        self.run_id = run_id if run_id else new_run_id()
        self.path = self.directory / f"run-{self.run_id}.jsonl"
        self.manifest_path = self.directory / f"run-{self.run_id}.manifest.json"
        self._lock_path = self.directory / f"run-{self.run_id}.jsonl.lock"
        self.argv = list(argv if argv is not None else sys.argv)
        self.started = time.time()
        self._flush_every = max(1, flush_every)
        self._mutex = threading.Lock()
        self._buffer: list[str] = []
        self._seq = 0
        self._stack: list[str] = []
        self._span_count = 0
        self._event_count = 0
        self._by_name: dict[str, int] = {}
        self._counters: dict[str, float] = {}
        self._suites: dict[str, str] = {}
        self._job_digests: set[str] = set()
        self._job_seconds: list[float] = []
        self._batches: list[dict[str, Any]] = []
        self._failures: list[dict[str, str]] = []
        self._failures_by_workload: dict[str, int] = {}
        self._profile: dict[str, list[float]] = {}
        self._profiled_jobs = 0
        self._closed = False

    # ------------------------------------------------------------------
    # record emission
    # ------------------------------------------------------------------
    def _next_id(self) -> str:
        # caller holds self._mutex
        self._seq += 1
        return f"{os.getpid()}-{self._seq}"

    def _emit(self, record: dict[str, Any]) -> None:
        line = json.dumps(record, separators=(",", ":"), sort_keys=True,
                          default=str)
        with self._mutex:
            self._buffer.append(line)
            if len(self._buffer) >= self._flush_every:
                # intermediate flush: bounded memory, but no fsync —
                # durability is paid once per batch, in flush()
                self._flush_locked(fsync=False)

    def _bump(self, name: str) -> None:
        self._by_name[name] = self._by_name.get(name, 0) + 1

    def event(self, name: str, **attrs: Any) -> None:
        """Emit one instantaneous event under the current span."""
        with self._mutex:
            parent = self._stack[-1] if self._stack else None
            self._event_count += 1
            self._bump(name)
        self._emit({
            "schema": OBS_SCHEMA_VERSION, "run": self.run_id,
            "kind": "event", "name": name, "parent": parent,
            "ts": time.time(), "pid": os.getpid(), "attrs": attrs,
        })

    @contextmanager
    def span(self, name: str, **attrs: Any) -> Iterator[Span]:
        """Open a span around a block; closes (and records) on exit.

        The span's wall-clock start, duration, outcome status and final
        attributes (annotate more via :meth:`Span.annotate`) land in one
        record when the block exits — half the volume of begin/end pairs
        and immune to interleaving.
        """
        with self._mutex:
            span = Span(name=name, id=self._next_id(),
                        parent=self._stack[-1] if self._stack else None,
                        attrs=dict(attrs), ts=time.time())
            self._stack.append(span.id)
        t0 = time.perf_counter()
        status = "ok"
        try:
            yield span
        except BaseException:
            status = "error"
            raise
        finally:
            with self._mutex:
                if self._stack and self._stack[-1] == span.id:
                    self._stack.pop()
                self._span_count += 1
                self._bump(name)
            self._write_span(span, time.perf_counter() - t0, status)

    def complete_span(self, name: str, seconds: float,
                      parent: str | None = None, status: str = "ok",
                      **attrs: Any) -> None:
        """Record an already-measured span (e.g. a job timed in a worker)."""
        with self._mutex:
            span = Span(
                name=name, id=self._next_id(),
                parent=parent if parent is not None
                else (self._stack[-1] if self._stack else None),
                attrs=attrs, ts=time.time() - seconds,
            )
            self._span_count += 1
            self._bump(name)
        self._write_span(span, seconds, status)

    def _write_span(self, span: Span, seconds: float, status: str) -> None:
        self._emit({
            "schema": OBS_SCHEMA_VERSION, "run": self.run_id,
            "kind": "span", "name": span.name, "id": span.id,
            "parent": span.parent, "ts": span.ts, "dur_s": seconds,
            "status": status, "pid": os.getpid(), "attrs": span.attrs,
        })

    # ------------------------------------------------------------------
    # in-memory aggregation (manifest inputs; no records emitted)
    # ------------------------------------------------------------------
    def count(self, name: str, amount: float = 1) -> None:
        """Bump an in-memory counter (snapshotted into the manifest)."""
        with self._mutex:
            self._counters[name] = self._counters.get(name, 0) + amount

    def counters(self) -> dict[str, float]:
        with self._mutex:
            return dict(self._counters)

    def note_suite(self, name: str, digest: str) -> None:
        with self._mutex:
            self._suites[name] = digest

    def note_jobs(self, digests: Any) -> None:
        with self._mutex:
            self._job_digests.update(digests)

    def note_job_seconds(self, seconds: float) -> None:
        with self._mutex:
            self._job_seconds.append(seconds)

    def note_batch(self, report: dict[str, Any]) -> None:
        with self._mutex:
            self._batches.append(dict(report))

    def note_failure(self, workload: str, digest: str, label: str,
                     error: str) -> None:
        with self._mutex:
            self._failures_by_workload[workload] = (
                self._failures_by_workload.get(workload, 0) + 1
            )
            if len(self._failures) < MAX_FAILURE_DETAIL:
                self._failures.append(
                    {"workload": workload, "digest": digest,
                     "label": label, "error": error}
                )

    def add_profile(self, rows: Any) -> None:
        """Merge one profiled job's pstats rows (see :mod:`.profile`)."""
        from .profile import merge_rows

        with self._mutex:
            self._profiled_jobs += 1
            merge_rows(self._profile, rows)

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------
    @contextmanager
    def _file_locked(self) -> Iterator[None]:
        """Advisory inter-process lock for same-run appends."""
        if fcntl is None:  # pragma: no cover - Windows fallback
            yield
            return
        with open(self._lock_path, "ab") as fh:
            fcntl.flock(fh, fcntl.LOCK_EX)
            try:
                yield
            finally:
                fcntl.flock(fh, fcntl.LOCK_UN)

    def flush(self, fsync: bool = True) -> None:
        """Append every buffered record in one locked write."""
        with self._mutex:
            self._flush_locked(fsync=fsync)

    def _flush_locked(self, fsync: bool) -> None:
        # caller holds self._mutex
        if not self._buffer:
            return
        if not self.directory.exists():
            # the observability directory was deleted mid-run (tests,
            # tmp cleanup): drop the records instead of resurrecting it
            self._buffer.clear()
            return
        data = "\n".join(self._buffer) + "\n"
        self._buffer.clear()
        with self._file_locked():
            with self.path.open("a", encoding="utf-8") as fh:
                fh.write(data)
                fh.flush()
                if fsync:
                    os.fsync(fh.fileno())

    def write_manifest(self, finished: bool = False) -> None:
        """Flush the event log and (re)write the run manifest atomically.

        Called once per executor batch — durable progress after every
        unit of real work — and once more, with ``finished=True``, when
        the run closes.
        """
        from .manifest import build_manifest

        self.flush(fsync=True)
        if not self.owner or not self.directory.exists():
            return
        payload = build_manifest(self, finished=finished)
        tmp = self.manifest_path.with_suffix(".json.tmp")
        tmp.write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        os.replace(tmp, self.manifest_path)

    def close(self) -> None:
        """Finalize the run: flush and stamp the manifest as finished."""
        if self._closed:
            return
        self._closed = True
        self.write_manifest(finished=True)
