"""Run manifests: one JSON summary per observed run.

The manifest is the *aggregate* view of a run — the event log answers
"what happened, in order", the manifest answers "how did it go" without
replaying thousands of records: command line, git SHA, suite and job
digests, batch reports, sims/sec, cache hit rate, job-latency
percentiles, per-workload failure counts, counter totals, and (when
``--profile`` was on) the merged cProfile hot spots.

It is rewritten atomically after every executor batch, so a crashed or
killed run still leaves a readable summary of everything that finished.
"""

from __future__ import annotations

import os
import platform
import time
from typing import TYPE_CHECKING, Any

from ..vcs import git_sha
from .recorder import OBS_SCHEMA_VERSION

if TYPE_CHECKING:  # pragma: no cover
    from .recorder import ObsRecorder

__all__ = ["build_manifest", "percentile", "host_info"]


def percentile(values: list[float], q: float) -> float | None:
    """Linear-interpolated percentile (q in [0, 100]); None when empty."""
    if not values:
        return None
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = (len(ordered) - 1) * q / 100.0
    lo = int(rank)
    hi = min(lo + 1, len(ordered) - 1)
    frac = rank - lo
    return ordered[lo] * (1.0 - frac) + ordered[hi] * frac


def host_info() -> dict[str, Any]:
    """The same host block the bench payloads record, for comparability."""
    return {
        "platform": platform.platform(),
        "python": platform.python_version(),
        "machine": platform.machine(),
        "cpus": os.cpu_count(),
    }


def build_manifest(recorder: "ObsRecorder",
                   finished: bool = False) -> dict[str, Any]:
    """Assemble the manifest payload from a recorder's aggregates."""
    from .profile import top_rows

    with recorder._mutex:
        batches = [dict(b) for b in recorder._batches]
        job_seconds = list(recorder._job_seconds)
        failures = [dict(f) for f in recorder._failures]
        failures_by_workload = dict(recorder._failures_by_workload)
        counters = dict(recorder._counters)
        suites = dict(recorder._suites)
        job_digests = sorted(recorder._job_digests)
        spans = recorder._span_count
        events = recorder._event_count
        by_name = dict(recorder._by_name)
        profile = dict(recorder._profile)
        profiled_jobs = recorder._profiled_jobs

    total = sum(b.get("total", 0) for b in batches)
    executed = sum(b.get("executed", 0) for b in batches)
    cache_hits = sum(b.get("cache_hits", 0) for b in batches)
    run_seconds = sum(b.get("run_seconds", 0.0) for b in batches)
    wall_seconds = sum(b.get("wall_seconds", 0.0) for b in batches)
    probes = executed + cache_hits

    metrics: dict[str, Any] = {
        "batches": len(batches),
        "jobs_submitted": total,
        "jobs_executed": executed,
        "cache_hits": cache_hits,
        "failures": sum(failures_by_workload.values()),
        "hit_rate": (cache_hits / probes) if probes else None,
        "sims_per_second": (executed / wall_seconds) if wall_seconds > 0
        else None,
        "run_seconds": run_seconds,
        "wall_seconds": wall_seconds,
        "job_latency_s": {
            "count": len(job_seconds),
            "p50": percentile(job_seconds, 50),
            "p95": percentile(job_seconds, 95),
            "max": max(job_seconds) if job_seconds else None,
        },
    }

    payload: dict[str, Any] = {
        "schema": OBS_SCHEMA_VERSION,
        "kind": "run-manifest",
        "run": recorder.run_id,
        "finished": finished,
        "started": recorder.started,
        "updated": time.time(),
        "argv": list(recorder.argv),
        "git_sha": git_sha(),
        "host": host_info(),
        "suites": suites,
        "jobs": {"count": len(job_digests), "digests": job_digests},
        "batches": batches,
        "metrics": metrics,
        "record_counts": {"spans": spans, "events": events,
                          "by_name": by_name},
        "counters": counters,
        "failures": {"by_workload": failures_by_workload,
                     "detail": failures},
    }
    if profiled_jobs:
        payload["profile"] = {
            "jobs": profiled_jobs,
            "top": [
                {"func": func, "ncalls": int(ncalls),
                 "tottime_s": tottime, "cumtime_s": cumtime}
                for func, ncalls, tottime, cumtime in top_rows(profile)
            ],
        }
    return payload
