"""Typed parameter schemas for workload builders.

Every registered workload carries a :class:`WorkloadSchema`: the set of
override parameters its builder accepts, each with a scalar type, a
default (fixed or per-scale), and a one-line description.  Schemas are
what make workload specs *data*: the scenario layer
(:mod:`repro.scenarios`) validates a spec's parameter overrides against
the schema before any simulation runs, so a suite of hundreds of runs
fails at expansion time — not three hours in — when a parameter is
misspelled, mistyped, or unknown.

Builders registered without an explicit schema get one derived from
their call signature (:meth:`WorkloadSchema.from_builder`), so
third-party workloads keep working and still reject unknown override
keys.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass
from typing import Any, Callable, Mapping

from ..errors import WorkloadError

__all__ = ["Param", "WorkloadSchema"]

#: parameter kinds and the Python types each accepts (bool is excluded
#: from the numeric kinds: ``True`` silently becoming ``1`` is exactly
#: the class of spec mistake schemas exist to catch)
_KINDS: dict[str, tuple[type, ...]] = {
    "int": (int,),
    "float": (int, float),
    "any": (object,),
}


def _is_valid(kind: str, value: Any) -> bool:
    if isinstance(value, bool) and kind in ("int", "float"):
        return False
    return isinstance(value, _KINDS[kind])


@dataclass(frozen=True)
class Param:
    """One override parameter of a workload builder.

    ``default`` is the builder's fixed default; ``scale_values`` maps
    scale names to the value the builder derives when the parameter is
    not overridden (for parameters whose default comes from the scale
    table).  Exactly one of the two is normally set.
    """

    name: str
    kind: str = "int"
    default: Any = None
    scale_values: Mapping[str, Any] | None = None
    doc: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise WorkloadError("parameter name must be non-empty")
        if self.kind not in _KINDS:
            raise WorkloadError(
                f"parameter {self.name!r}: unknown kind {self.kind!r} "
                f"(choose from {sorted(_KINDS)})"
            )

    def check(self, value: Any, workload: str) -> Any:
        """Validate one override value; returns it unchanged."""
        if not _is_valid(self.kind, value):
            raise WorkloadError(
                f"{workload}: parameter {self.name!r} expects {self.kind}, "
                f"got {type(value).__name__} ({value!r})"
            )
        return value

    def default_for(self, scale: str) -> Any:
        """The effective default at ``scale`` (None when unknown)."""
        if self.scale_values is not None and scale in self.scale_values:
            return self.scale_values[scale]
        return self.default


@dataclass(frozen=True)
class WorkloadSchema:
    """The typed override surface of one workload builder.

    ``permissive`` schemas (derived from builders taking ``**kwargs``)
    still type-check the parameters they know about but let unknown
    keys through — the builder owns their validation.
    """

    workload: str
    params: tuple[Param, ...] = ()
    doc: str = ""
    permissive: bool = False

    def __post_init__(self) -> None:
        names = [p.name for p in self.params]
        if len(names) != len(set(names)):
            raise WorkloadError(
                f"{self.workload}: duplicate parameter names in schema"
            )

    # ------------------------------------------------------------------
    def names(self) -> tuple[str, ...]:
        return tuple(p.name for p in self.params)

    def param(self, name: str) -> Param:
        for p in self.params:
            if p.name == name:
                return p
        raise WorkloadError(
            f"{self.workload}: unknown parameter {name!r}; "
            f"valid parameters: {', '.join(self.names()) or '(none)'}"
        )

    def validate(self, overrides: Mapping[str, Any]) -> dict[str, Any]:
        """Check every override key and value; returns a plain dict.

        Raises :class:`WorkloadError` naming the offending key and
        listing the valid parameters — the error a typo'd suite axis or
        spec file surfaces before anything is simulated.
        """
        unknown = sorted(set(overrides) - set(self.names()))
        if unknown and not self.permissive:
            raise WorkloadError(
                f"{self.workload}: unknown parameter(s) "
                f"{', '.join(repr(k) for k in unknown)}; valid parameters: "
                f"{', '.join(self.names()) or '(none)'}"
            )
        return {
            key: (
                self.param(key).check(value, self.workload)
                if key in self.names()
                else value
            )
            for key, value in overrides.items()
        }

    def defaults(self, scale: str) -> dict[str, Any]:
        """Effective parameter values at ``scale`` with no overrides."""
        return {p.name: p.default_for(scale) for p in self.params}

    def describe(self) -> str:
        lines = [f"{self.workload}: {self.doc}".rstrip().rstrip(":")]
        for p in self.params:
            default = (
                f"per-scale {dict(p.scale_values)}"
                if p.scale_values is not None
                else f"default {p.default!r}"
            )
            lines.append(f"  {p.name} ({p.kind}, {default})"
                         + (f" — {p.doc}" if p.doc else ""))
        return "\n".join(lines)

    # ------------------------------------------------------------------
    @classmethod
    def from_builder(
        cls, workload: str, builder: Callable[..., Any]
    ) -> "WorkloadSchema":
        """Derive a schema from a builder's keyword parameters.

        Positional-or-keyword parameters after ``num_threads`` /
        ``scale`` / ``seed`` become schema parameters; kinds are
        inferred from the default value (``None`` defaults infer
        ``any``).  Builders taking ``**kwargs`` get a permissive
        schema-less pass-through and are responsible for their own
        validation.
        """
        try:
            signature = inspect.signature(builder)
        except (TypeError, ValueError):
            return cls(workload=workload, params=(), permissive=True)
        params: list[Param] = []
        permissive = False
        skip = {"num_threads", "scale", "seed"}
        for index, (name, parameter) in enumerate(signature.parameters.items()):
            if name in skip or index == 0:
                continue
            if parameter.kind == inspect.Parameter.VAR_KEYWORD:
                permissive = True  # the builder accepts arbitrary keys
                continue
            if parameter.kind == inspect.Parameter.VAR_POSITIONAL:
                continue
            default = (
                None
                if parameter.default is inspect.Parameter.empty
                else parameter.default
            )
            if isinstance(default, bool) or default is None:
                kind = "any"
            elif isinstance(default, int):
                kind = "int"
            elif isinstance(default, float):
                kind = "float"
            else:
                kind = "any"
            params.append(Param(name=name, kind=kind, default=default))
        return cls(workload=workload, params=tuple(params),
                   permissive=permissive)
