"""Name-based workload construction with typed parameter schemas.

The harness and benchmarks refer to workloads by name; the registry
maps names to builder functions.  Builders accept
``(num_threads, scale, seed, **overrides)`` and return a
:class:`~repro.workloads.base.WorkloadInstance`.

Every registration carries a :class:`~repro.workloads.schema.WorkloadSchema`
describing the builder's override parameters (names, scalar types,
fixed or per-scale defaults).  :func:`build_workload` validates
overrides against the schema *before* calling the builder, so an
unknown or mistyped parameter raises :class:`~repro.errors.WorkloadError`
listing the valid parameters — which is what lets the scenario layer
(:mod:`repro.scenarios`) validate and serialize whole evaluation
matrices without running a single simulation.
"""

from __future__ import annotations

from typing import Callable

from ..errors import WorkloadError
from .base import WorkloadInstance
from .genome import GENOME_SCHEMA, build_genome
from .intruder import INTRUDER_SCHEMA, build_intruder
from .kmeans import KMEANS_SCHEMA, build_kmeans
from .labyrinth import LABYRINTH_SCHEMA, build_labyrinth
from .micro import (
    ARRAY_WALK_SCHEMA,
    BANK_SCHEMA,
    COUNTER_SCHEMA,
    LLIST_SCHEMA,
    build_array_walk,
    build_bank,
    build_counter,
    build_llist,
)
from .schema import WorkloadSchema
from .vacation import VACATION_SCHEMA, build_vacation
from .yada import YADA_SCHEMA, build_yada

__all__ = [
    "available_workloads",
    "build_workload",
    "register_workload",
    "workload_schema",
    "workload_seed_invariant",
]

Builder = Callable[..., WorkloadInstance]

#: name -> (builder, schema, seed_invariant); one dict so they can
#: never drift apart
_REGISTRY: dict[str, tuple[Builder, WorkloadSchema, bool]] = {}

#: the paper's evaluation applications, in its presentation order
PAPER_APPS: tuple[str, ...] = ("genome", "yada", "intruder")

#: every STAMP-style application kernel (the paper's three plus the
#: extended contention profiles added on top of the scenario layer)
STAMP_APPS: tuple[str, ...] = (
    "genome", "yada", "intruder", "kmeans", "vacation", "labyrinth",
)

__all__ += ["PAPER_APPS", "STAMP_APPS"]


def available_workloads() -> list[str]:
    return sorted(_REGISTRY)


def _lookup(name: str) -> tuple[Builder, WorkloadSchema, bool]:
    try:
        return _REGISTRY[name]
    except KeyError:
        raise WorkloadError(
            f"unknown workload {name!r}; available: "
            f"{', '.join(available_workloads())}"
        ) from None


def register_workload(
    name: str,
    builder: Builder,
    schema: WorkloadSchema | None = None,
    seed_invariant: bool = False,
) -> None:
    """Add a custom workload (overwrites allowed).

    Without an explicit ``schema``, one is derived from the builder's
    keyword parameters (:meth:`WorkloadSchema.from_builder`) so unknown
    override keys are still rejected by name.

    ``seed_invariant`` declares that the builder's output does not
    depend on ``seed`` beyond stamping ``WorkloadInstance.seed`` — no
    build-time RNG draw and no program closure capturing the seed.  The
    replicate-pack prep cache shares one build across a whole seed
    family for such workloads (re-stamped per member), so a wrong
    ``True`` here silently collapses seeds; leave it ``False`` unless
    the builder provably never reads ``seed``.
    """
    if not name:
        raise WorkloadError("workload name must be non-empty")
    if schema is None:
        schema = WorkloadSchema.from_builder(name, builder)
    elif schema.workload != name:
        raise WorkloadError(
            f"schema is for {schema.workload!r}, registered as {name!r}"
        )
    _REGISTRY[name] = (builder, schema, seed_invariant)


def workload_schema(name: str) -> WorkloadSchema:
    """The parameter schema of the named workload."""
    return _lookup(name)[1]


def workload_seed_invariant(name: str) -> bool:
    """Whether the named workload's build ignores the seed (see
    :func:`register_workload`)."""
    return _lookup(name)[2]


def build_workload(
    name: str,
    num_threads: int,
    scale: str = "small",
    seed: int = 0,
    **overrides,
) -> WorkloadInstance:
    """Build the named workload, validating overrides against its schema."""
    builder, schema, _ = _lookup(name)
    overrides = schema.validate(overrides)
    return builder(num_threads, scale=scale, seed=seed, **overrides)


# seed_invariant=True only for builders that provably never read `seed`:
# counter and array_walk touch it solely to stamp the instance (their
# programs are deterministic in (threads, scale) alone).  Every other
# builder draws build-time RNG or closes over the seed at run time.
for _name, _builder, _schema, _seedless in (
    ("genome", build_genome, GENOME_SCHEMA, False),
    ("yada", build_yada, YADA_SCHEMA, False),
    ("intruder", build_intruder, INTRUDER_SCHEMA, False),
    ("kmeans", build_kmeans, KMEANS_SCHEMA, False),
    ("vacation", build_vacation, VACATION_SCHEMA, False),
    ("labyrinth", build_labyrinth, LABYRINTH_SCHEMA, False),
    ("counter", build_counter, COUNTER_SCHEMA, True),
    ("bank", build_bank, BANK_SCHEMA, False),
    ("array_walk", build_array_walk, ARRAY_WALK_SCHEMA, True),
    ("llist", build_llist, LLIST_SCHEMA, False),
):
    register_workload(_name, _builder, _schema, seed_invariant=_seedless)
del _name, _builder, _schema, _seedless
