"""Name-based workload construction.

The harness and benchmarks refer to workloads by name; the registry
maps names to builder functions.  Builders accept
``(num_threads, scale, seed, **overrides)`` and return a
:class:`~repro.workloads.base.WorkloadInstance`.
"""

from __future__ import annotations

from typing import Callable

from ..errors import WorkloadError
from .base import WorkloadInstance
from .genome import build_genome
from .intruder import build_intruder
from .micro import build_array_walk, build_bank, build_counter, build_llist
from .yada import build_yada

__all__ = ["available_workloads", "build_workload", "register_workload"]

Builder = Callable[..., WorkloadInstance]

_BUILDERS: dict[str, Builder] = {
    "genome": build_genome,
    "yada": build_yada,
    "intruder": build_intruder,
    "counter": build_counter,
    "bank": build_bank,
    "array_walk": build_array_walk,
    "llist": build_llist,
}

#: the paper's evaluation applications, in its presentation order
PAPER_APPS: tuple[str, ...] = ("genome", "yada", "intruder")
__all__.append("PAPER_APPS")


def available_workloads() -> list[str]:
    return sorted(_BUILDERS)


def register_workload(name: str, builder: Builder) -> None:
    """Add a custom workload (overwrites allowed)."""
    if not name:
        raise WorkloadError("workload name must be non-empty")
    _BUILDERS[name] = builder


def build_workload(
    name: str,
    num_threads: int,
    scale: str = "small",
    seed: int = 0,
    **overrides,
) -> WorkloadInstance:
    """Build the named workload."""
    try:
        builder = _BUILDERS[name]
    except KeyError:
        raise WorkloadError(
            f"unknown workload {name!r}; available: "
            f"{', '.join(available_workloads())}"
        ) from None
    return builder(num_threads, scale=scale, seed=seed, **overrides)
