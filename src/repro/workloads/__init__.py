"""Workloads (system S9 in DESIGN.md): STAMP-equivalent kernels.

The paper evaluates three STAMP applications — genome, yada and
intruder — compiled for Alpha and run under M5.  Neither the binaries
nor an Alpha toolchain is available here, so this package implements
*synthetic equivalents*: transactional kernels, built on real shared
data structures over the simulated memory, that reproduce each
application's contention character (see each module's docstring for the
mapping and DESIGN.md §2 for the substitution argument):

* :mod:`~repro.workloads.genome`   — hash-set dedup + segment matching;
  moderate conflicts, medium transactions.
* :mod:`~repro.workloads.yada`     — cavity-expansion mesh refinement;
  long transactions, conflicts repeated inside loops (the renew-counter
  driver the paper calls out for yada/genome).
* :mod:`~repro.workloads.intruder` — shared packet queue + flow
  reassembly; short transactions, high abort rate.
* :mod:`~repro.workloads.kmeans`   — clustering; read-mostly with
  short accumulator write bursts (low contention).
* :mod:`~repro.workloads.vacation` — travel reservations; mixed-size
  transactions over shared tables.
* :mod:`~repro.workloads.labyrinth`— grid routing; the longest
  transactions and largest write sets (worst case for abort energy).
* :mod:`~repro.workloads.micro`    — counter / bank / array / list
  microbenchmarks for tests and ablations.

Each builder registers a typed parameter schema
(:mod:`~repro.workloads.schema`); unknown or mistyped overrides are
rejected by name before anything is simulated.
"""

from .base import MemoryLayout, WorkloadInstance, Scale, SCALES
from .registry import (
    available_workloads,
    build_workload,
    register_workload,
    workload_schema,
)
from .schema import Param, WorkloadSchema
from .genome import build_genome
from .intruder import build_intruder
from .yada import build_yada
from .kmeans import build_kmeans
from .vacation import build_vacation
from .labyrinth import build_labyrinth
from .micro import build_counter, build_bank, build_array_walk, build_llist

__all__ = [
    "MemoryLayout",
    "WorkloadInstance",
    "Scale",
    "SCALES",
    "Param",
    "WorkloadSchema",
    "available_workloads",
    "build_workload",
    "register_workload",
    "workload_schema",
    "build_genome",
    "build_intruder",
    "build_yada",
    "build_kmeans",
    "build_vacation",
    "build_labyrinth",
    "build_counter",
    "build_bank",
    "build_array_walk",
    "build_llist",
]
