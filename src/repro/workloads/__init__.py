"""Workloads (system S9 in DESIGN.md): STAMP-equivalent kernels.

The paper evaluates three STAMP applications — genome, yada and
intruder — compiled for Alpha and run under M5.  Neither the binaries
nor an Alpha toolchain is available here, so this package implements
*synthetic equivalents*: transactional kernels, built on real shared
data structures over the simulated memory, that reproduce each
application's contention character (see each module's docstring for the
mapping and DESIGN.md §2 for the substitution argument):

* :mod:`~repro.workloads.genome`   — hash-set dedup + segment matching;
  moderate conflicts, medium transactions.
* :mod:`~repro.workloads.yada`     — cavity-expansion mesh refinement;
  long transactions, conflicts repeated inside loops (the renew-counter
  driver the paper calls out for yada/genome).
* :mod:`~repro.workloads.intruder` — shared packet queue + flow
  reassembly; short transactions, high abort rate.
* :mod:`~repro.workloads.micro`    — counter / bank / array / list
  microbenchmarks for tests and ablations.
"""

from .base import MemoryLayout, WorkloadInstance, Scale, SCALES
from .registry import available_workloads, build_workload, register_workload
from .genome import build_genome
from .intruder import build_intruder
from .yada import build_yada
from .micro import build_counter, build_bank, build_array_walk, build_llist

__all__ = [
    "MemoryLayout",
    "WorkloadInstance",
    "Scale",
    "SCALES",
    "available_workloads",
    "build_workload",
    "register_workload",
    "build_genome",
    "build_intruder",
    "build_yada",
    "build_counter",
    "build_bank",
    "build_array_walk",
    "build_llist",
]
