"""kmeans — clustering (STAMP-equivalent).

STAMP's kmeans iterates Lloyd's algorithm: threads assign their
partition of the points to the nearest centroid (reading the shared
centroid table) and accumulate each point into per-cluster sums inside
small transactions; at the end of an iteration the centroids are
recomputed from the accumulated sums.  Its HTM profile is *read-mostly
with short write bursts*: the assignment phase is pure shared reads
(conflict-free), while the accumulation transactions are tiny
read-modify-writes that collide only when two threads update the same
cluster — low-to-moderate contention, the opposite corner of the
spectrum from intruder.

Synthetic equivalent (per iteration, barrier-separated phases):

* ``kmeans.assign`` — a read-only transaction loading all *k* centroids
  and computing the nearest (ties to the lowest index); the result
  feeds the next transaction.
* ``kmeans.update`` — add the point into its cluster's accumulator
  (count and sum, one cache line per cluster).
* ``kmeans.reduce`` — clusters are partitioned across threads; each
  reduce transaction recomputes one centroid (floor mean, unchanged
  when the cluster is empty) and resets its accumulator.

The whole fixpoint is replayed in Python at build time, so validators
check the *exact* final centroid table and that every accumulator was
reset — any divergence between the simulated data flow and the
reference computation fails the run.
"""

from __future__ import annotations

import numpy as np

from ..errors import WorkloadError
from ..htm.ops import BarrierOp, Compute, TxOp
from ..htm.program import ThreadContext, ThreadProgram
from ..sim.rng import derive_seed
from .base import MemoryLayout, WorkloadInstance, warm_sweep
from .schema import Param, WorkloadSchema
from .structures.array import TArray

__all__ = ["build_kmeans", "KMEANS_SCALES", "KMEANS_SCHEMA"]

#: scale -> (points, clusters, iterations)
KMEANS_SCALES: dict[str, tuple[int, int, int]] = {
    "tiny": (48, 4, 1),
    "small": (320, 8, 2),
    "medium": (1280, 12, 3),
}

KMEANS_SCHEMA = WorkloadSchema(
    workload="kmeans",
    doc="clustering; read-mostly centroid updates (low contention)",
    params=(
        Param("points", "int",
              scale_values={s: v[0] for s, v in KMEANS_SCALES.items()},
              doc="data points to cluster"),
        Param("clusters", "int",
              scale_values={s: v[1] for s, v in KMEANS_SCALES.items()},
              doc="centroid count k; fewer clusters = more contention"),
        Param("iterations", "int",
              scale_values={s: v[2] for s, v in KMEANS_SCALES.items()},
              doc="Lloyd iterations (assign + update + reduce each)"),
    ),
)

_VALUE_RANGE = 1 << 16


def _nearest(value: int, centroids: list[int]) -> int:
    """Index of the closest centroid (ties to the lowest index)."""
    best, best_distance = 0, None
    for j, centroid in enumerate(centroids):
        distance = abs(value - centroid)
        if best_distance is None or distance < best_distance:
            best, best_distance = j, distance
    return best


def build_kmeans(
    num_threads: int,
    scale: str = "small",
    seed: int = 0,
    points: int | None = None,
    clusters: int | None = None,
    iterations: int | None = None,
) -> WorkloadInstance:
    """Build a kmeans instance (explicit kwargs override the scale)."""
    if scale not in KMEANS_SCALES:
        raise WorkloadError(
            f"unknown scale {scale!r}; choose from {sorted(KMEANS_SCALES)}"
        )
    n_points, k, iters = KMEANS_SCALES[scale]
    if points is not None:
        n_points = points
    if clusters is not None:
        k = clusters
    if iterations is not None:
        iters = iterations
    if k < 1:
        raise WorkloadError("kmeans needs at least one cluster")
    if n_points < k:
        raise WorkloadError(f"need at least {k} points for {k} clusters")
    if iters < 1:
        raise WorkloadError("kmeans needs at least one iteration")

    rng = np.random.default_rng(derive_seed(seed, "kmeans", scale))
    values = [int(v) for v in rng.integers(0, _VALUE_RANGE, size=n_points)]
    initial_centroids = [
        int(c) for c in rng.integers(0, _VALUE_RANGE, size=k)
    ]

    # Reference replay of the whole fixpoint: the simulated data flow
    # must reproduce these centroids exactly.
    centroids_ref = list(initial_centroids)
    for _ in range(iters):
        counts = [0] * k
        sums = [0] * k
        for value in values:
            cluster = _nearest(value, centroids_ref)
            counts[cluster] += 1
            sums[cluster] += value
        centroids_ref = [
            sums[j] // counts[j] if counts[j] else centroids_ref[j]
            for j in range(k)
        ]
    expected_centroids = list(centroids_ref)

    # --- shared memory layout --------------------------------------------
    layout = MemoryLayout()
    # Centroids are packed (8 per line): reads share lines for free and
    # the reduce phase's writes exhibit the false sharing a packed
    # centroid table sees on real line-granularity HTM.
    centroids = TArray(layout, k, stride_words=1, line_aligned=True,
                       name="kmeans.centroids")
    centroids.initialize(layout, initial_centroids)
    # One accumulator line per cluster: [count, sum] — update conflicts
    # are per-cluster, not per-line-pair.
    accum = TArray(layout, k, stride_words=8, line_aligned=True,
                   name="kmeans.accum")
    for j in range(k):
        layout.poke(accum.addr(j, 0), 0)
        layout.poke(accum.addr(j, 1), 0)

    # --- transaction bodies ----------------------------------------------
    def make_assign(value: int):
        def body(tx):
            loaded = []
            for j in range(k):
                centroid = yield from centroids.get(j)
                loaded.append(centroid)
            yield Compute(k)  # k distance comparisons
            tx.set_result(_nearest(value, loaded))

        return body

    def make_update(cluster: int, value: int):
        def body(tx):
            yield from accum.add(cluster, 1, word=0)
            yield from accum.add(cluster, value, word=1)

        return body

    def make_reduce(cluster: int):
        def body(tx):
            count = yield from accum.get(cluster, 0)
            total = yield from accum.get(cluster, 1)
            if count:
                new_centroid = total // count
            else:
                new_centroid = yield from centroids.get(cluster)
            yield Compute(8)  # the division
            yield from centroids.put(cluster, new_centroid)
            yield from accum.put(cluster, 0, 0)
            yield from accum.put(cluster, 0, 1)

        return body

    def program(ctx: ThreadContext):
        yield from warm_sweep(layout)
        yield BarrierOp("kmeans.warm")
        my_points = list(range(ctx.proc_id, n_points, ctx.num_threads))
        my_clusters = list(range(ctx.proc_id, k, ctx.num_threads))
        for iteration in range(iters):
            for index in my_points:
                cluster = yield TxOp(
                    make_assign(values[index]), site="kmeans.assign"
                )
                yield Compute(4)  # point bookkeeping
                yield TxOp(
                    make_update(cluster, values[index]), site="kmeans.update"
                )
            yield BarrierOp(f"kmeans.accumulated.{iteration}")
            for cluster in my_clusters:
                yield TxOp(make_reduce(cluster), site="kmeans.reduce")
            yield BarrierOp(f"kmeans.reduced.{iteration}")

    programs = [
        ThreadProgram(program, f"kmeans.t{t}") for t in range(num_threads)
    ]

    # --- validators ----------------------------------------------------------
    def check_centroids(memory: dict[int, int]) -> None:
        final = [centroids.read_final(memory, j) for j in range(k)]
        if final != expected_centroids:
            wrong = [
                (j, final[j], expected_centroids[j])
                for j in range(k)
                if final[j] != expected_centroids[j]
            ]
            raise WorkloadError(
                f"kmeans: {len(wrong)} centroid(s) diverged from the "
                f"reference fixpoint, e.g. {wrong[:3]}"
            )

    def check_accumulators_reset(memory: dict[int, int]) -> None:
        for j in range(k):
            count = accum.read_final(memory, j, 0)
            total = accum.read_final(memory, j, 1)
            if count or total:
                raise WorkloadError(
                    f"kmeans: accumulator {j} not reset "
                    f"(count={count}, sum={total})"
                )

    return WorkloadInstance(
        name="kmeans",
        scale=scale,
        num_threads=num_threads,
        seed=seed,
        programs=programs,
        initial_memory=dict(layout.image),
        params={
            "points": n_points,
            "clusters": k,
            "iterations": iters,
            "expected_transactions": iters * (2 * n_points + k),
        },
        validators=[check_centroids, check_accumulators_reset],
    )
