"""yada — Delaunay mesh refinement (STAMP-equivalent).

STAMP's yada (Yet Another Delaunay Application) refines a triangular
mesh: threads pull "bad" triangles from worklists, expand a *cavity*
around each (reading a neighbourhood of mesh elements), retriangulate
the cavity (writing all of it), and push newly created bad triangles
back.  Its HTM profile is *long transactions* with overlapping-cavity
conflicts; an aborted cavity expansion is retried and frequently killed
again by the same committing neighbour — the loop-repeated conflicts
the paper credits for yada's high renew counts and large gating
windows.

Synthetic equivalent:

* The mesh is an array of elements, one cache line each
  (``[bad flag, data, n0..n3, pad, pad]``), with a 4-neighbour grid
  topology rewired randomly to make cavity shapes irregular.
* Each thread owns a private worklist seeded with its share of the
  initially-bad elements (STAMP's yada also uses per-thread queues).
* ``yada.refine`` transactions: re-check the bad flag, BFS-expand the
  cavity with data-dependent inclusion, rewrite every cavity element,
  and possibly mark one *higher-numbered* neighbour bad (monotonicity
  bounds the total work); new bad elements return to the spawning
  thread's worklist via the transaction result.

Validator: no element remains flagged bad.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from ..errors import WorkloadError
from ..htm.ops import BarrierOp, Compute, TxOp
from ..htm.program import ThreadContext, ThreadProgram
from ..sim.rng import derive_seed
from .base import MemoryLayout, WorkloadInstance, mix64, warm_sweep
from .schema import Param, WorkloadSchema
from .structures.array import TArray

__all__ = ["build_yada", "YADA_SCALES", "YADA_SCHEMA"]

#: scale -> (mesh elements, initially-bad fraction, max cavity size)
YADA_SCALES: dict[str, tuple[int, float, int]] = {
    "tiny": (64, 0.4, 4),
    "small": (400, 0.5, 8),
    "medium": (1600, 0.5, 12),
}

YADA_SCHEMA = WorkloadSchema(
    workload="yada",
    doc="cavity-expansion mesh refinement (long, loop-repeated conflicts)",
    params=(
        Param("elements", "int",
              scale_values={s: v[0] for s, v in YADA_SCALES.items()},
              doc="mesh elements (rounded to a full square grid)"),
        Param("bad_fraction", "float",
              scale_values={s: v[1] for s, v in YADA_SCALES.items()},
              doc="fraction of elements initially flagged bad"),
        Param("max_cavity", "int",
              scale_values={s: v[2] for s, v in YADA_SCALES.items()},
              doc="cavity size cap (bounds read/write-set growth)"),
    ),
)

_DATA_MASK = (1 << 32) - 1
#: an expansion candidate joins the cavity unless its data hashes to 0 mod 3
_INCLUDE_MOD = 3
#: a refinement spawns a new bad element when the seed data hashes to 0 mod 4
_SPAWN_MOD = 4


def build_yada(
    num_threads: int,
    scale: str = "small",
    seed: int = 0,
    elements: int | None = None,
    bad_fraction: float | None = None,
    max_cavity: int | None = None,
) -> WorkloadInstance:
    """Build a yada instance (explicit kwargs override the scale)."""
    if scale not in YADA_SCALES:
        raise WorkloadError(
            f"unknown scale {scale!r}; choose from {sorted(YADA_SCALES)}"
        )
    n_elems, frac, cavity_cap = YADA_SCALES[scale]
    if elements is not None:
        n_elems = elements
    if bad_fraction is not None:
        frac = bad_fraction
    if max_cavity is not None:
        cavity_cap = max_cavity
    if n_elems < 8:
        raise WorkloadError("mesh needs at least 8 elements")
    if not 0.0 < frac <= 1.0:
        raise WorkloadError("bad fraction must be in (0, 1]")
    if cavity_cap < 1:
        raise WorkloadError("cavity cap must be positive")

    rng = np.random.default_rng(derive_seed(seed, "yada", scale))

    # 4-neighbour grid topology with 20% random rewiring.
    side = max(2, int(round(n_elems ** 0.5)))
    n_elems = side * side  # make the grid exact
    neighbors: list[list[int]] = []
    for e in range(n_elems):
        r, c = divmod(e, side)
        nbrs = [
            ((r - 1) % side) * side + c,
            ((r + 1) % side) * side + c,
            r * side + (c - 1) % side,
            r * side + (c + 1) % side,
        ]
        neighbors.append(nbrs)
    n_rewire = int(0.2 * n_elems)
    for _ in range(n_rewire):
        e = int(rng.integers(0, n_elems))
        slot = int(rng.integers(0, 4))
        target = int(rng.integers(0, n_elems))
        if target != e:
            neighbors[e][slot] = target

    initially_bad = sorted(
        int(i) for i in rng.choice(n_elems, size=max(1, int(frac * n_elems)),
                                   replace=False)
    )
    data_init = rng.integers(1, _DATA_MASK, size=n_elems)

    # --- shared memory layout -------------------------------------------
    # One element per cache line: [bad, data, n0, n1, n2, n3, pad, pad].
    layout = MemoryLayout()
    mesh = TArray(layout, n_elems, stride_words=8, line_aligned=True,
                  name="yada.mesh")
    bad_set = set(initially_bad)
    for e in range(n_elems):
        layout.poke(mesh.addr(e, 0), 1 if e in bad_set else 0)
        layout.poke(mesh.addr(e, 1), int(data_init[e]))
        for slot in range(4):
            layout.poke(mesh.addr(e, 2 + slot), neighbors[e][slot] + 1)

    # --- the refinement transaction ----------------------------------------
    def make_refine(elem: int):
        def body(tx):
            still_bad = yield from mesh.get(elem, 0)
            if not still_bad:
                tx.set_result(())
                return

            # Cavity expansion: BFS with data-dependent inclusion.
            seed_data = yield from mesh.get(elem, 1)
            cavity = [elem]
            seen = {elem}
            frontier = deque([elem])
            border: list[int] = []
            while frontier and len(cavity) < cavity_cap:
                e = frontier.popleft()
                for slot in range(4):
                    nb = yield from mesh.get(e, 2 + slot)
                    if nb == 0:
                        continue
                    nb -= 1
                    if nb in seen:
                        continue
                    seen.add(nb)
                    nb_data = yield from mesh.get(nb, 1)
                    if mix64(nb_data + seed_data) % _INCLUDE_MOD != 0:
                        cavity.append(nb)
                        frontier.append(nb)
                        if len(cavity) >= cavity_cap:
                            break
                    else:
                        border.append(nb)

            # Retriangulation: rewrite every cavity element.
            for e in cavity:
                d = yield from mesh.get(e, 1)
                yield from mesh.put(e, mix64(d + e + 1) & _DATA_MASK, 1)
                yield from mesh.put(e, 0, 0)

            # Possibly spawn one new bad element.  Only higher-numbered,
            # not-yet-bad targets are eligible: refinement work strictly
            # moves "up" the mesh, which bounds the total transaction
            # count (no cycles).
            new_bad: list[int] = []
            if mix64(seed_data) % _SPAWN_MOD == 0:
                for candidate in sorted(border) + sorted(seen - set(cavity)):
                    if candidate > elem:
                        cand_bad = yield from mesh.get(candidate, 0)
                        if not cand_bad:
                            yield from mesh.put(candidate, 1, 0)
                            new_bad.append(candidate)
                        break
            tx.set_result(tuple(new_bad))

        return body

    def program(ctx: ThreadContext):
        yield from warm_sweep(layout)
        yield BarrierOp("yada.warm")
        work = deque(initially_bad[ctx.proc_id :: ctx.num_threads])
        while work:
            elem = work.popleft()
            spawned = yield TxOp(make_refine(elem), site="yada.refine")
            work.extend(spawned)
            yield Compute(15)  # geometric predicates outside the tx

    programs = [ThreadProgram(program, f"yada.t{t}") for t in range(num_threads)]

    # --- validator -----------------------------------------------------------
    def check_no_bad_left(memory: dict[int, int]) -> None:
        left = [
            e for e in range(n_elems) if memory.get(mesh.addr(e, 0), 0) != 0
        ]
        if left:
            raise WorkloadError(
                f"yada: {len(left)} elements still flagged bad, e.g. {left[:5]}"
            )

    return WorkloadInstance(
        name="yada",
        scale=scale,
        num_threads=num_threads,
        seed=seed,
        programs=programs,
        initial_memory=dict(layout.image),
        params={
            "elements": n_elems,
            "initially_bad": len(initially_bad),
            "max_cavity": cavity_cap,
        },
        validators=[check_no_bad_left],
    )
