"""intruder — network intrusion detection (STAMP-equivalent).

STAMP's intruder scans packet streams: threads repeatedly (1) grab a
packet from a shared queue, (2) reassemble its flow in a shared
session map, and (3) run the detector over completed flows.  Its HTM
profile is *many short transactions with a high abort rate* — every
consumer conflicts on the queue head, and flow counters collide in the
map (the paper: "for highly-conflicting application like intruder,
abort rate is high and as a result savings in the energy is also
reasonable").

The synthetic equivalent keeps exactly that structure:

* a shared :class:`~repro.workloads.structures.queue.TQueue` pre-filled
  with packet ids (transaction site ``intruder.getPacket``),
* per-packet metadata (flow id, fragment count) in shared memory,
* a shared flow table whose per-flow fragment counters are incremented
  transactionally, plus a global completed-flows counter
  (site ``intruder.reassemble``),
* a non-transactional detection burst per completed flow.

Validators: the queue drains completely, every flow's counter equals
its fragment count, and the completed counter equals the flow count.
"""

from __future__ import annotations

import numpy as np

from ..errors import WorkloadError
from ..htm.ops import BarrierOp, Compute, TxOp
from ..htm.program import ThreadContext, ThreadProgram
from ..sim.rng import derive_seed
from .base import MemoryLayout, WorkloadInstance, warm_sweep
from .schema import Param, WorkloadSchema
from .structures.array import TArray
from .structures.queue import TQueue
from .structures.hashtable import THashTable

__all__ = ["build_intruder", "INTRUDER_SCALES", "INTRUDER_SCHEMA"]

#: scale -> (target packet count, flow count, detect cycles per fragment)
INTRUDER_SCALES: dict[str, tuple[int, int, int]] = {
    "tiny": (48, 12, 20),
    "small": (360, 72, 30),
    "medium": (1400, 260, 40),
}

INTRUDER_SCHEMA = WorkloadSchema(
    workload="intruder",
    doc="shared packet queue + flow reassembly (short txs, high aborts)",
    params=(
        Param("packets", "int",
              scale_values={s: v[0] for s, v in INTRUDER_SCALES.items()},
              doc="target packet count (fragments across all flows)"),
        Param("flows", "int",
              scale_values={s: v[1] for s, v in INTRUDER_SCALES.items()},
              doc="number of flows to reassemble"),
        Param("detect_cycles", "int",
              scale_values={s: v[2] for s, v in INTRUDER_SCALES.items()},
              doc="detector compute cycles per reassembled fragment"),
    ),
)


def build_intruder(
    num_threads: int,
    scale: str = "small",
    seed: int = 0,
    packets: int | None = None,
    flows: int | None = None,
    detect_cycles: int | None = None,
) -> WorkloadInstance:
    """Build an intruder instance (explicit kwargs override the scale)."""
    if scale not in INTRUDER_SCALES:
        raise WorkloadError(
            f"unknown scale {scale!r}; choose from {sorted(INTRUDER_SCALES)}"
        )
    target_packets, n_flows, detect = INTRUDER_SCALES[scale]
    if packets is not None:
        target_packets = packets
    if flows is not None:
        n_flows = flows
    if detect_cycles is not None:
        detect = detect_cycles
    if n_flows < 1 or target_packets < n_flows * 2:
        raise WorkloadError("need at least two fragments per flow")

    rng = np.random.default_rng(derive_seed(seed, "intruder", scale))

    # Fragment counts per flow: 2..5, adjusted to hit the packet target.
    frag_counts = rng.integers(2, 6, size=n_flows).tolist()
    while sum(frag_counts) < target_packets:
        frag_counts[int(rng.integers(0, n_flows))] += 1
    while sum(frag_counts) > target_packets:
        idx = int(rng.integers(0, n_flows))
        if frag_counts[idx] > 2:
            frag_counts[idx] -= 1
    n_packets = sum(frag_counts)

    # Packet stream: all fragments of all flows, shuffled.
    stream: list[int] = []
    for flow, count in enumerate(frag_counts):
        stream.extend([flow] * count)
    order = rng.permutation(n_packets)
    packet_flows = [stream[i] for i in order]

    # --- shared memory layout ------------------------------------------
    layout = MemoryLayout()
    queue = TQueue(layout, capacity=n_packets, name="intruder.queue")
    # per-packet metadata: word0 = flow key (1-based), word1 = fragment total
    meta = TArray(layout, n_packets, stride_words=2, line_aligned=True,
                  name="intruder.meta")
    flow_table = THashTable(layout, num_slots=max(16, 4 * n_flows),
                            name="intruder.flows")
    completed = TArray(layout, 1, stride_words=8, line_aligned=True,
                       name="intruder.completed")

    queue.initialize(layout, range(1, n_packets + 1))  # packet ids, 1-based
    for pkt in range(n_packets):
        flow = packet_flows[pkt]
        layout.poke(meta.addr(pkt, 0), flow + 1)
        layout.poke(meta.addr(pkt, 1), frag_counts[flow])
    completed.initialize(layout, [0])

    # --- thread program --------------------------------------------------
    def pop_body(tx):
        value = yield from queue.pop()
        tx.set_result(value)

    def make_reassemble(pkt_index: int):
        def body(tx):
            flow_key = yield from meta.get(pkt_index, 0)
            total = yield from meta.get(pkt_index, 1)
            count = yield from flow_table.increment(flow_key)
            if count == total:
                yield from completed.add(0, 1)
                tx.set_result(total)
            else:
                tx.set_result(0)

        return body

    def program(ctx: ThreadContext):
        yield from warm_sweep(layout)
        yield BarrierOp("intruder.warm")
        while True:
            packet = yield TxOp(pop_body, site="intruder.getPacket")
            if packet is None:
                break
            pkt_index = packet - 1
            yield Compute(5)  # header decode
            completed_total = yield TxOp(
                make_reassemble(pkt_index), site="intruder.reassemble"
            )
            if completed_total:
                # run the detector over the reassembled flow
                yield Compute(detect * completed_total)

    programs = [ThreadProgram(program, f"intruder.t{t}") for t in range(num_threads)]

    # --- validators -------------------------------------------------------
    expected_flows = {flow + 1: count for flow, count in enumerate(frag_counts)}

    def check_queue_drained(memory: dict[int, int]) -> None:
        left = queue.final_size(memory)
        if left != 0:
            raise WorkloadError(f"intruder: {left} packets left in the queue")

    def check_flows(memory: dict[int, int]) -> None:
        final = flow_table.final_items(memory)
        if final != expected_flows:
            missing = set(expected_flows) - set(final)
            wrong = {
                k: (final.get(k), expected_flows[k])
                for k in expected_flows
                if final.get(k) != expected_flows[k]
            }
            raise WorkloadError(
                f"intruder: flow table corrupt (missing={missing}, "
                f"wrong={dict(list(wrong.items())[:5])})"
            )

    def check_completed(memory: dict[int, int]) -> None:
        done = completed.read_final(memory, 0)
        if done != n_flows:
            raise WorkloadError(
                f"intruder: {done} flows completed, expected {n_flows}"
            )

    return WorkloadInstance(
        name="intruder",
        scale=scale,
        num_threads=num_threads,
        seed=seed,
        programs=programs,
        initial_memory=dict(layout.image),
        params={
            "packets": n_packets,
            "flows": n_flows,
            "detect_cycles": detect,
            "expected_transactions": 2 * n_packets + num_threads,
        },
        validators=[check_queue_drained, check_flows, check_completed],
    )
