"""labyrinth — path routing (STAMP-equivalent).

STAMP's labyrinth routes wires through a shared 3-D grid: each
transaction reads a private snapshot of the grid, computes a shortest
path, then writes *every cell of the path* back — the longest
transactions and largest write sets in the STAMP suite, and the worst
case for abort energy: an abort near commit throws away hundreds of
cycles of speculative work, which is exactly the window the paper's
clock gate targets.

Synthetic equivalent:

* The grid is a shared 2-D array (row-major, 8 cells per 64-byte
  line).  Each path is one vertical segment — a column interval, like a
  wire in a routing channel — so a path of length *L* touches *L*
  distinct cache lines.
* Paths are assigned *distinct columns* drawn from a deliberately
  narrow band of the grid: semantically disjoint (the final state is
  exactly deterministic), but neighbouring columns share every row
  line, so concurrent routes conflict at HTM line granularity all along
  their overlap — long transactions repeatedly killed near commit.
* ``labyrinth.route`` — verify every cell of the path is free, spend
  the path-cost computation, then claim all of them (write set = path
  length lines).

Validators: every path's cells hold exactly its path id, and no cell
outside any path was ever written.
"""

from __future__ import annotations

import numpy as np

from ..errors import WorkloadError
from ..htm.ops import BarrierOp, Compute, TxOp
from ..htm.program import ThreadContext, ThreadProgram
from ..sim.rng import derive_seed
from .base import MemoryLayout, WorkloadInstance, warm_sweep
from .schema import Param, WorkloadSchema
from .structures.array import TArray

__all__ = ["build_labyrinth", "LABYRINTH_SCALES", "LABYRINTH_SCHEMA"]

#: scale -> (grid side, paths per thread, max path length)
LABYRINTH_SCALES: dict[str, tuple[int, int, int]] = {
    "tiny": (32, 1, 8),
    "small": (64, 2, 20),
    "medium": (128, 3, 40),
}

LABYRINTH_SCHEMA = WorkloadSchema(
    workload="labyrinth",
    doc="grid routing; long transactions with large write sets",
    params=(
        Param("grid_side", "int",
              scale_values={s: v[0] for s, v in LABYRINTH_SCALES.items()},
              doc="grid is side x side cells"),
        Param("paths_per_thread", "int",
              scale_values={s: v[1] for s, v in LABYRINTH_SCALES.items()},
              doc="routes each thread must place"),
        Param("max_path_length", "int",
              scale_values={s: v[2] for s, v in LABYRINTH_SCALES.items()},
              doc="cells (= cache lines) per route, drawn in [max/2, max]"),
    ),
)


def build_labyrinth(
    num_threads: int,
    scale: str = "small",
    seed: int = 0,
    grid_side: int | None = None,
    paths_per_thread: int | None = None,
    max_path_length: int | None = None,
) -> WorkloadInstance:
    """Build a labyrinth instance (explicit kwargs override the scale)."""
    if scale not in LABYRINTH_SCALES:
        raise WorkloadError(
            f"unknown scale {scale!r}; choose from {sorted(LABYRINTH_SCALES)}"
        )
    side, per_thread, max_len = LABYRINTH_SCALES[scale]
    if grid_side is not None:
        side = grid_side
    if paths_per_thread is not None:
        per_thread = paths_per_thread
    if max_path_length is not None:
        max_len = max_path_length
    if side < 2:
        raise WorkloadError("grid side must be at least 2")
    if per_thread < 1:
        raise WorkloadError("each thread needs at least one path")
    if max_len < 2:
        raise WorkloadError("paths need at least 2 cells")

    total_paths = num_threads * per_thread
    if total_paths > side:
        raise WorkloadError(
            f"labyrinth: {total_paths} paths need {total_paths} distinct "
            f"columns but the grid is only {side} wide — raise grid_side "
            f"or lower paths_per_thread"
        )
    max_len = min(max_len, side)

    rng = np.random.default_rng(derive_seed(seed, "labyrinth", scale))

    # Columns come from a band twice as wide as the path count: disjoint
    # by construction, but dense enough that every 8-column line is
    # shared by several routes (the conflict source).
    band = min(side, 2 * total_paths)
    columns = [int(c) for c in rng.permutation(band)[:total_paths]]

    routes: list[tuple[int, int, int]] = []  # (column, first row, length)
    for path in range(total_paths):
        length = int(rng.integers(max(2, max_len // 2), max_len + 1))
        first_row = int(rng.integers(0, side - length + 1))
        routes.append((columns[path], first_row, length))

    # --- shared memory layout --------------------------------------------
    layout = MemoryLayout()
    grid = TArray(layout, side * side, stride_words=1, line_aligned=True,
                  name="labyrinth.grid")
    route_cells: list[list[int]] = []
    for column, first_row, length in routes:
        cells = [row * side + column
                 for row in range(first_row, first_row + length)]
        route_cells.append(cells)
        for cell in cells:
            layout.poke(grid.addr(cell), 0)  # explicitly free

    # --- the routing transaction -----------------------------------------
    def make_route(path_id: int, cells: list[int]):
        def body(tx):
            for cell in cells:
                occupied = yield from grid.get(cell)
                if occupied:
                    # Columns are disjoint, so a committed obstruction
                    # is impossible — this is a protocol bug, not a
                    # routing failure.
                    raise WorkloadError(
                        f"labyrinth: cell {cell} already owned by "
                        f"{occupied} while routing path {path_id}"
                    )
            yield Compute(2 * len(cells))  # path-cost evaluation
            for cell in cells:
                yield from grid.put(cell, path_id)
            tx.set_result(len(cells))

        return body

    def program(ctx: ThreadContext):
        yield from warm_sweep(layout)
        yield BarrierOp("labyrinth.warm")
        for path in range(ctx.proc_id, total_paths, ctx.num_threads):
            yield TxOp(make_route(path + 1, route_cells[path]),
                       site="labyrinth.route")
            yield Compute(20)  # plan the next route

    programs = [
        ThreadProgram(program, f"labyrinth.t{t}") for t in range(num_threads)
    ]

    # --- validators ----------------------------------------------------------
    owner = {
        cell: path + 1
        for path, cells in enumerate(route_cells)
        for cell in cells
    }

    def check_routes_placed(memory: dict[int, int]) -> None:
        for cell, path_id in owner.items():
            value = memory.get(grid.addr(cell), 0)
            if value != path_id:
                raise WorkloadError(
                    f"labyrinth: cell {cell} holds {value}, expected "
                    f"path {path_id}"
                )

    def check_no_stray_writes(memory: dict[int, int]) -> None:
        for cell in range(side * side):
            if cell not in owner and memory.get(grid.addr(cell), 0):
                raise WorkloadError(
                    f"labyrinth: free cell {cell} was written "
                    f"({memory.get(grid.addr(cell))})"
                )

    return WorkloadInstance(
        name="labyrinth",
        scale=scale,
        num_threads=num_threads,
        seed=seed,
        programs=programs,
        initial_memory=dict(layout.image),
        params={
            "grid_side": side,
            "paths": total_paths,
            "max_path_length": max_len,
            "routed_cells": sum(len(cells) for cells in route_cells),
            "expected_transactions": total_paths,
        },
        validators=[check_routes_placed, check_no_stray_writes],
    )
