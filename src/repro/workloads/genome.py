"""genome — gene sequencing (STAMP-equivalent).

STAMP's genome assembles a genome from overlapping segments in phases:
deduplicate segments through a shared hash set, then repeatedly match
segment suffixes against prefixes in hash tables to link unique
segments into chains.  Its HTM profile is *moderate contention with
medium-length transactions*: most hash inserts succeed without
conflict, but duplicate keys and cache-line false sharing collide, and
the matching phase's multi-probe transactions have sizeable read-sets
that are repeatedly killed by concurrent link insertions — the paper
notes genome/yada have "conflicting transactions which are either long
or repeated several times inside loops", driving the *renew* counter.

Synthetic equivalent:

* Phase 1 (site ``genome.dedup``): each thread inserts its partition of
  the segment stream (with duplicates) into a shared hash set.
* Barrier.
* Phase 2 (site ``genome.match``): for each first-occurrence segment,
  probe the set for several overlap candidates (read-only lookups of
  hashed variants) and insert the found successor link into a shared
  link table.  Successors follow a build-time chain over the distinct
  segments, standing in for the real suffix-prefix relation.

Validators: the dedup set holds exactly the distinct segments; the link
table holds exactly the chain (``distinct - 1`` edges, each correct).
"""

from __future__ import annotations

import numpy as np

from ..errors import WorkloadError
from ..htm.ops import BarrierOp, Compute, TxOp
from ..htm.program import ThreadContext, ThreadProgram
from ..sim.rng import derive_seed
from .base import MemoryLayout, WorkloadInstance, mix64, warm_sweep
from .schema import Param, WorkloadSchema
from .structures.hashtable import THashTable

__all__ = ["build_genome", "GENOME_SCALES", "GENOME_SCHEMA"]

#: scale -> (segment stream length, distinct fraction, match probes)
GENOME_SCALES: dict[str, tuple[int, float, int]] = {
    "tiny": (96, 0.6, 2),
    "small": (600, 0.6, 3),
    "medium": (2400, 0.65, 4),
}

GENOME_SCHEMA = WorkloadSchema(
    workload="genome",
    doc="hash-set dedup + segment matching (moderate conflicts)",
    params=(
        Param("segments", "int",
              scale_values={s: v[0] for s, v in GENOME_SCALES.items()},
              doc="segment stream length (with duplicates)"),
        Param("distinct_fraction", "float",
              scale_values={s: v[1] for s, v in GENOME_SCALES.items()},
              doc="fraction of the stream that is distinct"),
        Param("probes", "int",
              scale_values={s: v[2] for s, v in GENOME_SCALES.items()},
              doc="overlap-candidate lookups per match transaction"),
        Param("table_slack", "float", default=1.4,
              doc="hash-table slots per distinct segment"),
    ),
)

_KEY_MASK = (1 << 48) - 1


def build_genome(
    num_threads: int,
    scale: str = "small",
    seed: int = 0,
    segments: int | None = None,
    distinct_fraction: float | None = None,
    probes: int | None = None,
    table_slack: float = 1.4,
) -> WorkloadInstance:
    """Build a genome instance (explicit kwargs override the scale)."""
    if scale not in GENOME_SCALES:
        raise WorkloadError(
            f"unknown scale {scale!r}; choose from {sorted(GENOME_SCALES)}"
        )
    n_stream, frac, n_probes = GENOME_SCALES[scale]
    if segments is not None:
        n_stream = segments
    if distinct_fraction is not None:
        frac = distinct_fraction
    if probes is not None:
        n_probes = probes
    if not 0.05 <= frac <= 1.0:
        raise WorkloadError("distinct fraction must be in [0.05, 1]")
    n_distinct = max(2, int(n_stream * frac))

    rng = np.random.default_rng(derive_seed(seed, "genome", scale))

    # Distinct segment keys (non-zero 48-bit), then the duplicated stream.
    distinct: list[int] = []
    seen: set[int] = set()
    while len(distinct) < n_distinct:
        key = int(rng.integers(1, _KEY_MASK))
        if key not in seen:
            seen.add(key)
            distinct.append(key)
    stream = list(distinct)
    while len(stream) < n_stream:
        stream.append(distinct[int(rng.integers(0, n_distinct))])
    order = rng.permutation(len(stream))
    stream = [stream[i] for i in order]

    # First-occurrence marking drives the phase-2 work partition.
    first_owner: dict[int, int] = {}
    for position, key in enumerate(stream):
        first_owner.setdefault(key, position)

    # The overlap chain: distinct segments in mix64 order, each linking
    # to its successor (stands in for suffix->prefix matching).
    chain_order = sorted(distinct, key=mix64)
    successor = {
        chain_order[i]: chain_order[i + 1] for i in range(len(chain_order) - 1)
    }

    # --- shared memory layout --------------------------------------------
    layout = MemoryLayout()
    # High load factors (the paper-era STAMP inputs size their tables
    # tightly) lengthen probe chains, growing read-sets and line overlap
    # between concurrent inserts — the genome conflict source.
    slots = max(16, int(table_slack * n_distinct))
    unique = THashTable(layout, num_slots=slots, name="genome.unique")
    links = THashTable(layout, num_slots=slots, name="genome.links")

    # --- thread program -----------------------------------------------------
    def make_dedup(key: int):
        def body(tx):
            inserted = yield from unique.insert(key, 1)
            tx.set_result(inserted)

        return body

    def make_match(key: int, succ: int):
        def body(tx):
            # Probe overlap candidates of decreasing length (read-only
            # lookups; mostly misses, as in the real matcher).
            for k in range(1, n_probes + 1):
                candidate = (mix64(key + k) & _KEY_MASK) or 1
                yield from unique.lookup(candidate)
            yield from links.insert(key, succ)

        return body

    def program(ctx: ThreadContext):
        yield from warm_sweep(layout)
        yield BarrierOp("genome.warm")
        my_stream = stream[ctx.proc_id :: ctx.num_threads]
        my_positions = range(ctx.proc_id, len(stream), ctx.num_threads)
        for key in my_stream:
            yield TxOp(make_dedup(key), site="genome.dedup")
            yield Compute(8)  # segment parsing
        yield BarrierOp("genome.phase1")
        for position, key in zip(my_positions, my_stream):
            if first_owner[key] != position:
                continue  # a duplicate: someone else owns the match work
            succ = successor.get(key)
            if succ is None:
                continue  # chain tail
            yield TxOp(make_match(key, succ), site="genome.match")
            yield Compute(12)  # overlap scoring

    programs = [ThreadProgram(program, f"genome.t{t}") for t in range(num_threads)]

    # --- validators ----------------------------------------------------------
    def check_unique(memory: dict[int, int]) -> None:
        final = unique.final_items(memory)
        if set(final) != set(distinct):
            raise WorkloadError(
                f"genome: dedup set has {len(final)} keys, expected "
                f"{len(distinct)} distinct segments"
            )

    def check_links(memory: dict[int, int]) -> None:
        final = links.final_items(memory)
        if final != successor:
            raise WorkloadError(
                f"genome: link table has {len(final)} edges, expected "
                f"{len(successor)} chain edges"
            )

    return WorkloadInstance(
        name="genome",
        scale=scale,
        num_threads=num_threads,
        seed=seed,
        programs=programs,
        initial_memory=dict(layout.image),
        params={
            "stream_length": len(stream),
            "distinct_segments": n_distinct,
            "match_probes": n_probes,
            "expected_transactions": len(stream) + len(successor),
        },
        validators=[check_unique, check_links],
    )
