"""Bounded MPMC FIFO queue in simulated shared memory.

Head and tail counters live on separate cache lines; every ``pop``
reads and writes the head counter, so concurrent consumers conflict on
it — the canonical HTM hot-spot, and the reason the intruder kernel
(whose packet queue all threads drain) exhibits STAMP intruder's high
abort rate.
"""

from __future__ import annotations

from ...errors import WorkloadError
from ...htm.ops import Load, Store
from ...mem.address import WORD_BYTES
from ..base import MemoryLayout

__all__ = ["TQueue"]


class TQueue:
    """Circular buffer with monotonically increasing head/tail counters."""

    def __init__(self, layout: MemoryLayout, capacity: int, name: str = "queue"):
        if capacity < 1:
            raise WorkloadError(f"{name}: capacity must be positive")
        self.name = name
        self.capacity = capacity
        # head and tail each get a private cache line
        self.head_addr = layout.alloc_lines(1)
        self.tail_addr = layout.alloc_lines(1)
        self.buf_base = layout.alloc_words(capacity, line_aligned=True)

    def _slot_addr(self, index: int) -> int:
        return self.buf_base + (index % self.capacity) * WORD_BYTES

    # ------------------------------------------------------------------
    # build-time
    # ------------------------------------------------------------------
    def initialize(self, layout: MemoryLayout, values) -> None:
        """Pre-fill the queue in the initial memory image."""
        values = list(values)
        if len(values) > self.capacity:
            raise WorkloadError(
                f"{self.name}: {len(values)} initial items exceed capacity "
                f"{self.capacity}"
            )
        for i, v in enumerate(values):
            layout.poke(self._slot_addr(i), v)
        layout.poke(self.head_addr, 0)
        layout.poke(self.tail_addr, len(values))

    # ------------------------------------------------------------------
    # transactional operations
    # ------------------------------------------------------------------
    def push(self, value: int):
        """Generator: append ``value``; returns False when full."""
        tail = yield Load(self.tail_addr)
        head = yield Load(self.head_addr)
        if tail - head >= self.capacity:
            return False
        yield Store(self._slot_addr(tail), value)
        yield Store(self.tail_addr, tail + 1)
        return True

    def pop(self):
        """Generator: remove the oldest value; returns None when empty."""
        head = yield Load(self.head_addr)
        tail = yield Load(self.tail_addr)
        if head >= tail:
            return None
        value = yield Load(self._slot_addr(head))
        yield Store(self.head_addr, head + 1)
        return value

    # ------------------------------------------------------------------
    def final_size(self, memory: dict[int, int]) -> int:
        head = memory.get(self.head_addr, 0)
        tail = memory.get(self.tail_addr, 0)
        return tail - head
