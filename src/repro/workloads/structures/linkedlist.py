"""Sorted singly-linked list with a shared node pool.

Node allocation is a bump pointer in shared memory — itself a (small)
transactional hot-spot, mirroring STAMP's shared allocator traffic.
Traversal reads every node up to the insertion point, so long lists
produce large read-sets: a single commit near the list head aborts all
concurrent traversers, which is what makes linked lists the classic
pathological HTM workload (used here by the ``llist`` microbenchmark
and ablations).
"""

from __future__ import annotations

from ...errors import WorkloadError
from ...htm.ops import Load, Store
from ...mem.address import WORD_BYTES
from ..base import MemoryLayout

__all__ = ["TNodePool", "TSortedList"]

_NODE_WORDS = 4  # key, value, next, pad


class TNodePool:
    """Bump allocator over a fixed arena of list nodes."""

    def __init__(self, layout: MemoryLayout, capacity: int, name: str = "pool"):
        if capacity < 1:
            raise WorkloadError(f"{name}: capacity must be positive")
        self.name = name
        self.capacity = capacity
        self.counter_addr = layout.alloc_lines(1)
        self.arena = layout.alloc_words(capacity * _NODE_WORDS, line_aligned=True)

    def initialize(self, layout: MemoryLayout, used: int = 0) -> None:
        layout.poke(self.counter_addr, used)

    def node_addr(self, index: int) -> int:
        if not 0 <= index < self.capacity:
            raise WorkloadError(f"{self.name}: node index {index} out of range")
        return self.arena + index * _NODE_WORDS * WORD_BYTES

    def alloc(self):
        """Generator: reserve one node; returns its byte address."""
        index = yield Load(self.counter_addr)
        if index >= self.capacity:
            raise WorkloadError(f"{self.name}: node pool exhausted")
        yield Store(self.counter_addr, index + 1)
        return self.node_addr(index)


class TSortedList:
    """Ascending singly-linked list with a sentinel head."""

    def __init__(self, layout: MemoryLayout, pool: TNodePool, name: str = "list"):
        self.name = name
        self.pool = pool
        #: address of the head pointer (a one-word cell on its own line)
        self.head_addr = layout.alloc_lines(1)

    def initialize(self, layout: MemoryLayout) -> None:
        layout.poke(self.head_addr, 0)  # 0 = null

    # ------------------------------------------------------------------
    def insert(self, key: int, value: int):
        """Generator: insert keeping ascending order; duplicates allowed.

        Returns the new node's address.
        """
        node = yield from self.pool.alloc()
        yield Store(node, key)
        yield Store(node + WORD_BYTES, value)

        prev_addr = self.head_addr  # cell holding the 'next' pointer
        current = yield Load(self.head_addr)
        while current != 0:
            current_key = yield Load(current)
            if current_key >= key:
                break
            prev_addr = current + 2 * WORD_BYTES
            current = yield Load(prev_addr)
        yield Store(node + 2 * WORD_BYTES, current)
        yield Store(prev_addr, node)
        return node

    def contains(self, key: int):
        """Generator: True if ``key`` is in the list."""
        current = yield Load(self.head_addr)
        while current != 0:
            current_key = yield Load(current)
            if current_key == key:
                return True
            if current_key > key:
                return False
            current = yield Load(current + 2 * WORD_BYTES)
        return False

    # ------------------------------------------------------------------
    def final_keys(self, memory: dict[int, int]) -> list[int]:
        """Decode the committed list contents from a memory snapshot."""
        keys: list[int] = []
        current = memory.get(self.head_addr, 0)
        seen = 0
        while current != 0:
            keys.append(memory.get(current, 0))
            current = memory.get(current + 2 * WORD_BYTES, 0)
            seen += 1
            if seen > self.pool.capacity:
                raise WorkloadError(f"{self.name}: cycle in final list")
        return keys
