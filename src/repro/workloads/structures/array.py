"""Flat word arrays in simulated shared memory."""

from __future__ import annotations

from ...errors import WorkloadError
from ...htm.ops import Load, Store
from ...mem.address import WORD_BYTES
from ..base import MemoryLayout

__all__ = ["TArray"]


class TArray:
    """A fixed-size array of 64-bit words.

    ``stride_words`` > 1 spaces elements out (e.g. 8 to give every
    element its own cache line, eliminating false sharing — used by the
    yada mesh where one element == one line is the intended conflict
    granularity).
    """

    def __init__(
        self,
        layout: MemoryLayout,
        length: int,
        stride_words: int = 1,
        line_aligned: bool = False,
        name: str = "array",
    ):
        if length <= 0:
            raise WorkloadError(f"{name}: length must be positive")
        if stride_words <= 0:
            raise WorkloadError(f"{name}: stride must be positive")
        self.name = name
        self.length = length
        self.stride_bytes = stride_words * WORD_BYTES
        self.base = layout.alloc_words(length * stride_words, line_aligned)

    def addr(self, index: int, word: int = 0) -> int:
        """Byte address of ``index`` (+ an intra-element word offset)."""
        if not 0 <= index < self.length:
            raise WorkloadError(
                f"{self.name}[{index}] out of bounds (length {self.length})"
            )
        return self.base + index * self.stride_bytes + word * WORD_BYTES

    # -- build-time -----------------------------------------------------
    def initialize(self, layout: MemoryLayout, values) -> None:
        for i, v in enumerate(values):
            layout.poke(self.addr(i), v)

    def read_final(self, memory: dict[int, int], index: int, word: int = 0) -> int:
        return memory.get(self.addr(index, word), 0)

    # -- transactional --------------------------------------------------
    def get(self, index: int, word: int = 0):
        """Generator: load element ``index``."""
        value = yield Load(self.addr(index, word))
        return value

    def put(self, index: int, value: int, word: int = 0):
        """Generator: store element ``index``."""
        yield Store(self.addr(index, word), value)

    def add(self, index: int, delta: int, word: int = 0):
        """Generator: read-modify-write element ``index``."""
        addr = self.addr(index, word)
        value = yield Load(addr)
        yield Store(addr, value + delta)
        return value + delta
