"""Open-addressing hash table in simulated shared memory.

Linear probing over ``(key, value)`` slot pairs; key 0 marks an empty
slot (callers must therefore use non-zero keys — enforced).  Four slots
share one 64-byte line, so nearby probes exhibit the false sharing a
real cache-line-granularity HTM sees: two inserts into neighbouring
slots conflict even though they touch different words.  This is the
dominant conflict source in the genome kernel, exactly as STAMP's
genome contends on its segment hashtable.
"""

from __future__ import annotations

from ...errors import WorkloadError
from ...htm.ops import Load, Store
from ...mem.address import WORD_BYTES
from ..base import MemoryLayout, mix64

__all__ = ["THashTable"]

_SLOT_WORDS = 2  # key, value


class THashTable:
    """Fixed-capacity open-addressing table with linear probing."""

    def __init__(self, layout: MemoryLayout, num_slots: int, name: str = "table"):
        if num_slots < 4:
            raise WorkloadError(f"{name}: need at least 4 slots")
        self.name = name
        self.num_slots = num_slots
        self.base = layout.alloc_words(num_slots * _SLOT_WORDS, line_aligned=True)

    # ------------------------------------------------------------------
    def _slot_addr(self, slot: int) -> int:
        return self.base + slot * _SLOT_WORDS * WORD_BYTES

    def _home_slot(self, key: int) -> int:
        return mix64(key) % self.num_slots

    @staticmethod
    def _check_key(key: int) -> int:
        if key == 0:
            raise WorkloadError("key 0 is reserved for empty slots")
        return key

    # ------------------------------------------------------------------
    # build-time initialization (writes the initial image directly)
    # ------------------------------------------------------------------
    def initialize(self, layout: MemoryLayout, items: dict[int, int]) -> None:
        """Pre-populate the table in the initial memory image."""
        if len(items) >= self.num_slots:
            raise WorkloadError(
                f"{self.name}: {len(items)} items exceed {self.num_slots} slots"
            )
        for key, value in items.items():
            self._check_key(key)
            slot = self._home_slot(key)
            for _ in range(self.num_slots):
                addr = self._slot_addr(slot)
                existing = layout.peek(addr)
                if existing == 0 or existing == key:
                    layout.poke(addr, key)
                    layout.poke(addr + WORD_BYTES, value)
                    break
                slot = (slot + 1) % self.num_slots
            else:  # pragma: no cover - guarded by the size check
                raise WorkloadError(f"{self.name}: initialization overflow")

    # ------------------------------------------------------------------
    # transactional operations (generators for `yield from`)
    # ------------------------------------------------------------------
    def lookup(self, key: int):
        """Generator: value stored under ``key``, or None."""
        self._check_key(key)
        slot = self._home_slot(key)
        for _ in range(self.num_slots):
            addr = self._slot_addr(slot)
            stored = yield Load(addr)
            if stored == key:
                value = yield Load(addr + WORD_BYTES)
                return value
            if stored == 0:
                return None
            slot = (slot + 1) % self.num_slots
        return None

    def insert(self, key: int, value: int, update: bool = False):
        """Generator: insert ``key`` -> ``value``.

        Returns True if the key was newly inserted, False if it already
        existed (its value is updated only with ``update=True``).
        Raises :class:`WorkloadError` when the table is full — builders
        size tables with headroom, so overflow indicates a sizing bug.
        """
        self._check_key(key)
        slot = self._home_slot(key)
        for _ in range(self.num_slots):
            addr = self._slot_addr(slot)
            stored = yield Load(addr)
            if stored == key:
                if update:
                    yield Store(addr + WORD_BYTES, value)
                return False
            if stored == 0:
                yield Store(addr, key)
                yield Store(addr + WORD_BYTES, value)
                return True
            slot = (slot + 1) % self.num_slots
        raise WorkloadError(f"{self.name}: table full inserting key {key}")

    def increment(self, key: int, delta: int = 1):
        """Generator: add ``delta`` to ``key``'s value (insert if absent).

        Returns the new value.
        """
        self._check_key(key)
        slot = self._home_slot(key)
        for _ in range(self.num_slots):
            addr = self._slot_addr(slot)
            stored = yield Load(addr)
            if stored == key:
                value = yield Load(addr + WORD_BYTES)
                yield Store(addr + WORD_BYTES, value + delta)
                return value + delta
            if stored == 0:
                yield Store(addr, key)
                yield Store(addr + WORD_BYTES, delta)
                return delta
            slot = (slot + 1) % self.num_slots
        raise WorkloadError(f"{self.name}: table full incrementing key {key}")

    # ------------------------------------------------------------------
    # post-run inspection (plain functions over a memory snapshot)
    # ------------------------------------------------------------------
    def final_items(self, memory: dict[int, int]) -> dict[int, int]:
        """Decode the committed table contents from a memory snapshot."""
        items: dict[int, int] = {}
        for slot in range(self.num_slots):
            addr = self._slot_addr(slot)
            key = memory.get(addr, 0)
            if key:
                items[key] = memory.get(addr + WORD_BYTES, 0)
        return items
