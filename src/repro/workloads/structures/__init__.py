"""Transactional data structures over simulated shared memory.

Each structure's operations are *generator methods* designed for use
inside transaction bodies with ``yield from``::

    def body(tx):
        existing = yield from table.lookup(key)
        if existing is None:
            yield from table.insert(key, value)

Every shared access goes through :class:`~repro.htm.ops.Load` /
:class:`~repro.htm.ops.Store`, so conflicts between threads arise from
the data structures themselves — the same way STAMP's contention arises
from its hashtables, meshes and queues — rather than from synthetic
abort injection.
"""

from .hashtable import THashTable
from .queue import TQueue
from .linkedlist import TSortedList, TNodePool
from .array import TArray

__all__ = ["THashTable", "TQueue", "TSortedList", "TNodePool", "TArray"]
