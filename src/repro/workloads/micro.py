"""Microbenchmarks: controlled contention points for tests and ablations.

* ``counter``    — every thread increments one shared counter: maximum
  contention, the minimal futile-abort generator.
* ``bank``       — random transfers between N accounts: tunable
  contention via the account count; conserves total balance.
* ``array_walk`` — disjoint per-thread array updates: zero conflicts,
  the gating protocol must stay entirely idle.
* ``llist``      — sorted linked-list inserts: large read-sets, head
  hot-spot, the classic HTM pathology.
"""

from __future__ import annotations

import numpy as np

from ..errors import WorkloadError
from ..htm.ops import BarrierOp, Compute, TxOp
from ..htm.program import ThreadContext, ThreadProgram
from ..sim.rng import derive_seed
from .base import MemoryLayout, WorkloadInstance, warm_sweep
from .schema import Param, WorkloadSchema
from .structures.array import TArray
from .structures.linkedlist import TNodePool, TSortedList

__all__ = [
    "build_counter",
    "build_bank",
    "build_array_walk",
    "build_llist",
    "COUNTER_SCHEMA",
    "BANK_SCHEMA",
    "ARRAY_WALK_SCHEMA",
    "LLIST_SCHEMA",
]

MICRO_SCALES: dict[str, int] = {"tiny": 10, "small": 40, "medium": 150}

COUNTER_SCHEMA = WorkloadSchema(
    workload="counter",
    doc="shared-counter increments (maximum contention)",
    params=(
        Param("increments", "int", scale_values=dict(MICRO_SCALES),
              doc="increments per thread"),
        Param("work_cycles", "int", default=5,
              doc="compute cycles inside each increment transaction"),
    ),
)

BANK_SCHEMA = WorkloadSchema(
    workload="bank",
    doc="random account transfers (tunable contention)",
    params=(
        Param("accounts", "int", default=32,
              doc="ledger size; fewer accounts = more conflicts"),
        Param("transfers", "int", scale_values=dict(MICRO_SCALES),
              doc="transfers per thread"),
        Param("initial_balance", "int", default=1000,
              doc="starting balance per account"),
    ),
)

ARRAY_WALK_SCHEMA = WorkloadSchema(
    workload="array_walk",
    doc="disjoint per-thread updates (zero-conflict control)",
    params=(
        Param("updates", "int", scale_values=dict(MICRO_SCALES),
              doc="updates per thread"),
        Param("slots_per_thread", "int", default=16,
              doc="private slots each thread cycles through"),
    ),
)

LLIST_SCHEMA = WorkloadSchema(
    workload="llist",
    doc="sorted linked-list inserts (large read-sets, head hot-spot)",
    params=(
        Param("inserts", "int", scale_values=dict(MICRO_SCALES),
              doc="inserts per thread"),
        Param("key_space", "int", default=10_000,
              doc="key range; smaller = denser collisions"),
    ),
)


def _ops_for(scale: str, override: int | None) -> int:
    if override is not None:
        if override < 1:
            raise WorkloadError("per-thread op count must be positive")
        return override
    try:
        return MICRO_SCALES[scale]
    except KeyError:
        raise WorkloadError(
            f"unknown scale {scale!r}; choose from {sorted(MICRO_SCALES)}"
        ) from None


def build_counter(
    num_threads: int,
    scale: str = "small",
    seed: int = 0,
    increments: int | None = None,
    work_cycles: int = 5,
) -> WorkloadInstance:
    """Shared-counter increments (maximum contention)."""
    n = _ops_for(scale, increments)
    layout = MemoryLayout()
    counter = TArray(layout, 1, stride_words=8, line_aligned=True,
                     name="counter.cell")
    counter.initialize(layout, [0])

    def body(tx):
        yield Compute(work_cycles)
        yield from counter.add(0, 1)

    def program(ctx: ThreadContext):
        yield from warm_sweep(layout)
        yield BarrierOp("counter.warm")
        for _ in range(n):
            yield TxOp(body, site="counter.inc")
            yield Compute(3)

    expected = n * num_threads

    def check_total(memory: dict[int, int]) -> None:
        total = counter.read_final(memory, 0)
        if total != expected:
            raise WorkloadError(f"counter: {total} != expected {expected}")

    return WorkloadInstance(
        name="counter",
        scale=scale,
        num_threads=num_threads,
        seed=seed,
        programs=[ThreadProgram(program, f"counter.t{t}")
                  for t in range(num_threads)],
        initial_memory=dict(layout.image),
        params={"increments_per_thread": n, "expected_total": expected},
        validators=[check_total],
    )


def build_bank(
    num_threads: int,
    scale: str = "small",
    seed: int = 0,
    accounts: int = 32,
    transfers: int | None = None,
    initial_balance: int = 1000,
) -> WorkloadInstance:
    """Random account transfers; validator checks balance conservation."""
    n = _ops_for(scale, transfers)
    if accounts < 2:
        raise WorkloadError("bank needs at least two accounts")
    layout = MemoryLayout()
    # One account per line so conflicts are per-account, not per-line-pair.
    ledger = TArray(layout, accounts, stride_words=8, line_aligned=True,
                    name="bank.ledger")
    ledger.initialize(layout, [initial_balance] * accounts)

    def make_transfer(src: int, dst: int, amount: int):
        def body(tx):
            from_balance = yield from ledger.get(src)
            to_balance = yield from ledger.get(dst)
            yield Compute(4)
            yield from ledger.put(src, from_balance - amount)
            yield from ledger.put(dst, to_balance + amount)

        return body

    def program(ctx: ThreadContext):
        yield from warm_sweep(layout)
        yield BarrierOp("bank.warm")
        rng = np.random.default_rng(
            derive_seed(seed, "bank", ctx.proc_id)
        )
        for _ in range(n):
            src = int(rng.integers(0, accounts))
            dst = int(rng.integers(0, accounts - 1))
            if dst >= src:
                dst += 1
            amount = int(rng.integers(1, 20))
            yield TxOp(make_transfer(src, dst, amount), site="bank.transfer")
            yield Compute(5)

    expected_total = accounts * initial_balance

    def check_conservation(memory: dict[int, int]) -> None:
        total = sum(ledger.read_final(memory, a) for a in range(accounts))
        if total != expected_total:
            raise WorkloadError(
                f"bank: total balance {total} != {expected_total} "
                "(money created or destroyed)"
            )

    return WorkloadInstance(
        name="bank",
        scale=scale,
        num_threads=num_threads,
        seed=seed,
        programs=[ThreadProgram(program, f"bank.t{t}")
                  for t in range(num_threads)],
        initial_memory=dict(layout.image),
        params={"accounts": accounts, "transfers_per_thread": n},
        validators=[check_conservation],
    )


def build_array_walk(
    num_threads: int,
    scale: str = "small",
    seed: int = 0,
    updates: int | None = None,
    slots_per_thread: int = 16,
) -> WorkloadInstance:
    """Disjoint per-thread updates: the zero-conflict control workload."""
    n = _ops_for(scale, updates)
    layout = MemoryLayout()
    arr = TArray(layout, num_threads * slots_per_thread, stride_words=8,
                 line_aligned=True, name="walk.array")
    arr.initialize(layout, [0] * (num_threads * slots_per_thread))

    def make_update(index: int):
        def body(tx):
            yield from arr.add(index, 1)

        return body

    def program(ctx: ThreadContext):
        yield from warm_sweep(layout)
        yield BarrierOp("walk.warm")
        base = ctx.proc_id * slots_per_thread
        for i in range(n):
            yield TxOp(make_update(base + i % slots_per_thread),
                       site="walk.update")
            yield Compute(4)

    def check_sums(memory: dict[int, int]) -> None:
        for t in range(num_threads):
            base = t * slots_per_thread
            total = sum(
                arr.read_final(memory, base + s) for s in range(slots_per_thread)
            )
            if total != n:
                raise WorkloadError(
                    f"array_walk: thread {t} wrote {total} updates, expected {n}"
                )

    return WorkloadInstance(
        name="array_walk",
        scale=scale,
        num_threads=num_threads,
        seed=seed,
        programs=[ThreadProgram(program, f"walk.t{t}")
                  for t in range(num_threads)],
        initial_memory=dict(layout.image),
        params={"updates_per_thread": n, "slots_per_thread": slots_per_thread},
        validators=[check_sums],
    )


def build_llist(
    num_threads: int,
    scale: str = "small",
    seed: int = 0,
    inserts: int | None = None,
    key_space: int = 10_000,
) -> WorkloadInstance:
    """Sorted linked-list inserts (large read-sets, head hot-spot)."""
    n = _ops_for(scale, inserts)
    total_nodes = n * num_threads
    layout = MemoryLayout()
    pool = TNodePool(layout, capacity=total_nodes, name="llist.pool")
    lst = TSortedList(layout, pool, name="llist.list")
    pool.initialize(layout)
    lst.initialize(layout)

    keys_by_thread: list[list[int]] = []
    for t in range(num_threads):
        rng = np.random.default_rng(derive_seed(seed, "llist", t))
        keys_by_thread.append(
            [int(k) for k in rng.integers(1, key_space, size=n)]
        )

    def make_insert(key: int):
        def body(tx):
            yield from lst.insert(key, key * 2 + 1)

        return body

    def program(ctx: ThreadContext):
        yield from warm_sweep(layout)
        yield BarrierOp("llist.warm")
        for key in keys_by_thread[ctx.proc_id]:
            yield TxOp(make_insert(key), site="llist.insert")
            yield Compute(3)

    expected = sorted(k for keys in keys_by_thread for k in keys)

    def check_sorted_and_complete(memory: dict[int, int]) -> None:
        final = lst.final_keys(memory)
        if final != sorted(final):
            raise WorkloadError("llist: final list is not sorted")
        if sorted(final) != expected:
            raise WorkloadError(
                f"llist: {len(final)} keys present, expected {len(expected)}"
            )

    return WorkloadInstance(
        name="llist",
        scale=scale,
        num_threads=num_threads,
        seed=seed,
        programs=[ThreadProgram(program, f"llist.t{t}")
                  for t in range(num_threads)],
        initial_memory=dict(layout.image),
        params={"inserts_per_thread": n, "key_space": key_space},
        validators=[check_sorted_and_complete],
    )
