"""vacation — travel reservation system (STAMP-equivalent).

STAMP's vacation emulates an OLTP travel agency: client threads run
transactions against four shared tables (cars, flights, rooms,
customers).  Most operations are *queries* — read-only probes of a
handful of random entries — while the rest are *reservations* that
check availability across several tables, decrement stock, and record
the booking against a customer.  Its HTM profile is *mixed-size
transactions over shared tables*: large read-only transactions that
keep getting killed by small read-write reservations landing on the
same table lines.

Synthetic equivalent:

* Three relation tables (``cars``, ``flights``, ``rooms``), each a
  shared hash table mapping item key -> remaining stock, pre-populated
  at build time.
* ``vacation.query`` — one read-only transaction looking up
  ``query_size`` random items across the tables.
* ``vacation.reserve`` — one transaction reserving a *basket* of 1-3
  random items: for each, look up availability and, when positive,
  decrement it; finally credit the customer's booking counter with the
  number of items actually secured.

Whether an individual reservation succeeds depends on the commit
schedule (late arrivals find sold-out items), but the *aggregate* final
state does not: each item ends at ``max(stock - demand, 0)`` and the
total number of successful bookings is ``sum(min(stock, demand))`` —
both computed at build time and checked exactly by the validators, no
matter how the schedule interleaved.
"""

from __future__ import annotations

import numpy as np

from ..errors import WorkloadError
from ..htm.ops import BarrierOp, Compute, TxOp
from ..htm.program import ThreadContext, ThreadProgram
from ..sim.rng import derive_seed
from .base import MemoryLayout, WorkloadInstance, warm_sweep
from .schema import Param, WorkloadSchema
from .structures.hashtable import THashTable

__all__ = ["build_vacation", "VACATION_SCALES", "VACATION_SCHEMA"]

#: scale -> (operations per thread, items per relation table)
VACATION_SCALES: dict[str, tuple[int, int]] = {
    "tiny": (12, 16),
    "small": (64, 48),
    "medium": (240, 128),
}

VACATION_SCHEMA = WorkloadSchema(
    workload="vacation",
    doc="travel reservations; mixed-size transactions over shared tables",
    params=(
        Param("ops", "int",
              scale_values={s: v[0] for s, v in VACATION_SCALES.items()},
              doc="client operations per thread"),
        Param("relations", "int",
              scale_values={s: v[1] for s, v in VACATION_SCALES.items()},
              doc="items per relation table; fewer = hotter items"),
        Param("query_fraction", "float", default=0.5,
              doc="fraction of operations that are read-only queries"),
        Param("query_size", "int", default=4,
              doc="items probed by one query transaction"),
        Param("max_stock", "int", default=3,
              doc="maximum initial stock per item (uniform 1..max)"),
    ),
)

_TABLE_NAMES = ("cars", "flights", "rooms")


def build_vacation(
    num_threads: int,
    scale: str = "small",
    seed: int = 0,
    ops: int | None = None,
    relations: int | None = None,
    query_fraction: float = 0.5,
    query_size: int = 4,
    max_stock: int = 3,
) -> WorkloadInstance:
    """Build a vacation instance (explicit kwargs override the scale)."""
    if scale not in VACATION_SCALES:
        raise WorkloadError(
            f"unknown scale {scale!r}; choose from {sorted(VACATION_SCALES)}"
        )
    n_ops, n_relations = VACATION_SCALES[scale]
    if ops is not None:
        n_ops = ops
    if relations is not None:
        n_relations = relations
    if n_ops < 1:
        raise WorkloadError("need at least one operation per thread")
    if n_relations < 2:
        raise WorkloadError("need at least two items per relation")
    if not 0.0 <= query_fraction <= 1.0:
        raise WorkloadError("query fraction must be in [0, 1]")
    if query_size < 1:
        raise WorkloadError("query size must be positive")
    if max_stock < 1:
        raise WorkloadError("max stock must be positive")

    n_customers = 2 * num_threads

    # Initial stock per (table, item), then every thread's operation
    # stream — all fixed at build time so the aggregate outcome is
    # computable before the first simulated cycle.
    stock_rng = np.random.default_rng(derive_seed(seed, "vacation", scale))
    stock: list[list[int]] = [
        [int(s) for s in stock_rng.integers(1, max_stock + 1,
                                            size=n_relations)]
        for _ in _TABLE_NAMES
    ]

    # op := ("query", [(table, key), ...])
    #     | ("reserve", customer, [(table, key), ...])
    ops_by_thread: list[list[tuple]] = []
    for t in range(num_threads):
        rng = np.random.default_rng(derive_seed(seed, "vacation.ops", t))
        thread_ops: list[tuple] = []
        for _ in range(n_ops):
            if rng.random() < query_fraction:
                probes = [
                    (int(rng.integers(0, len(_TABLE_NAMES))),
                     int(rng.integers(1, n_relations + 1)))
                    for _ in range(query_size)
                ]
                thread_ops.append(("query", probes))
            else:
                customer = int(rng.integers(1, n_customers + 1))
                basket = [
                    (int(rng.integers(0, len(_TABLE_NAMES))),
                     int(rng.integers(1, n_relations + 1)))
                    for _ in range(int(rng.integers(1, 4)))
                ]
                thread_ops.append(("reserve", customer, basket))
        ops_by_thread.append(thread_ops)

    # Aggregate expectations: order-independent by construction.
    demand: dict[tuple[int, int], int] = {}
    for thread_ops in ops_by_thread:
        for op in thread_ops:
            if op[0] == "reserve":
                for table, key in op[2]:
                    demand[(table, key)] = demand.get((table, key), 0) + 1
    expected_stock = [
        {
            key: max(stock[table][key - 1] - demand.get((table, key), 0), 0)
            for key in range(1, n_relations + 1)
        }
        for table in range(len(_TABLE_NAMES))
    ]
    expected_bookings = sum(
        min(stock[table][key - 1], count)
        for (table, key), count in demand.items()
    )

    # --- shared memory layout --------------------------------------------
    layout = MemoryLayout()
    tables = [
        THashTable(layout, num_slots=max(16, 3 * n_relations),
                   name=f"vacation.{name}")
        for name in _TABLE_NAMES
    ]
    for table, t_stock in zip(tables, stock):
        table.initialize(
            layout, {key: t_stock[key - 1] for key in range(1, n_relations + 1)}
        )
    customers = THashTable(layout, num_slots=max(16, 4 * n_customers),
                           name="vacation.customers")

    # --- transaction bodies ----------------------------------------------
    def make_query(probes):
        def body(tx):
            found = 0
            for table, key in probes:
                value = yield from tables[table].lookup(key)
                if value:
                    found += 1
                yield Compute(2)  # price comparison
            tx.set_result(found)

        return body

    def make_reserve(customer, basket):
        def body(tx):
            secured = 0
            for table, key in basket:
                available = yield from tables[table].lookup(key)
                if available and available > 0:
                    yield from tables[table].insert(
                        key, available - 1, update=True
                    )
                    secured += 1
            if secured:
                yield from customers.increment(customer, secured)
            tx.set_result(secured)

        return body

    def program(ctx: ThreadContext):
        yield from warm_sweep(layout)
        yield BarrierOp("vacation.warm")
        for op in ops_by_thread[ctx.proc_id]:
            if op[0] == "query":
                yield TxOp(make_query(op[1]), site="vacation.query")
                yield Compute(6)  # render the results
            else:
                yield TxOp(make_reserve(op[1], op[2]),
                           site="vacation.reserve")
                yield Compute(10)  # issue the itinerary

    programs = [
        ThreadProgram(program, f"vacation.t{t}") for t in range(num_threads)
    ]

    # --- validators ----------------------------------------------------------
    def check_stock(memory: dict[int, int]) -> None:
        for table_index, (table, expected) in enumerate(
            zip(tables, expected_stock)
        ):
            final = table.final_items(memory)
            if final != expected:
                wrong = {
                    k: (final.get(k), expected[k])
                    for k in expected
                    if final.get(k) != expected[k]
                }
                raise WorkloadError(
                    f"vacation: {_TABLE_NAMES[table_index]} stock corrupt "
                    f"(e.g. {dict(list(wrong.items())[:4])})"
                )

    def check_bookings(memory: dict[int, int]) -> None:
        booked = sum(customers.final_items(memory).values())
        if booked != expected_bookings:
            raise WorkloadError(
                f"vacation: {booked} bookings recorded, expected "
                f"{expected_bookings} (reservations lost or duplicated)"
            )

    total_ops = n_ops * num_threads
    return WorkloadInstance(
        name="vacation",
        scale=scale,
        num_threads=num_threads,
        seed=seed,
        programs=programs,
        initial_memory=dict(layout.image),
        params={
            "ops_per_thread": n_ops,
            "relations": n_relations,
            "customers": n_customers,
            "expected_bookings": expected_bookings,
            "expected_transactions": total_ops,
        },
        validators=[check_stock, check_bookings],
    )
