"""Workload plumbing: memory layout, scales, instances and validation.

A workload *builder* produces a :class:`WorkloadInstance`: an initial
memory image, one thread program per processor, and a list of
validators that check end-of-run functional correctness (beyond the
generic serializability invariant, each workload knows what its final
memory state must look like).

:class:`MemoryLayout` is the build-time allocator.  It hands out
word-aligned (optionally line-aligned) regions of the simulated physical
address space and accumulates the initial image.  Since directories
interleave memory at line granularity, a contiguous allocation spreads
naturally across all directories, matching how a NUMA first-touch/
round-robin placement would behave for shared structures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from ..errors import WorkloadError
from ..htm.program import ThreadProgram
from ..mem.address import WORD_BYTES

__all__ = ["MemoryLayout", "WorkloadInstance", "Scale", "SCALES", "mix64"]


#: Scale names accepted by every workload builder.
Scale = str

#: Canonical scales: "tiny" for unit tests, "small" for the benchmark
#: suite (a full Fig. 4–7 regeneration in minutes), "medium" for closer
#: approximations of STAMP's input sizes (longer runs).
SCALES: tuple[Scale, ...] = ("tiny", "small", "medium")


def mix64(x: int) -> int:
    """SplitMix64 finalizer: the deterministic hash used by workloads.

    Stable across processes (unlike ``hash``), well-mixed, cheap.
    """
    x = (x + 0x9E3779B97F4A7C15) & 0xFFFFFFFFFFFFFFFF
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & 0xFFFFFFFFFFFFFFFF
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & 0xFFFFFFFFFFFFFFFF
    return x ^ (x >> 31)


class MemoryLayout:
    """Build-time allocator over the simulated physical address space."""

    def __init__(self, base: int = 0x1_0000, line_bytes: int = 64):
        if base % line_bytes:
            raise WorkloadError("layout base must be line-aligned")
        self._cursor = base
        self._line_bytes = line_bytes
        self.image: dict[int, int] = {}

    @property
    def cursor(self) -> int:
        return self._cursor

    def alloc_words(self, count: int, line_aligned: bool = False) -> int:
        """Reserve ``count`` words; returns the base byte address."""
        if count <= 0:
            raise WorkloadError(f"allocation must be positive, got {count}")
        if line_aligned and self._cursor % self._line_bytes:
            self._cursor += self._line_bytes - self._cursor % self._line_bytes
        base = self._cursor
        self._cursor += count * WORD_BYTES
        return base

    def alloc_lines(self, count: int) -> int:
        """Reserve ``count`` full cache lines (line-aligned)."""
        words_per_line = self._line_bytes // WORD_BYTES
        return self.alloc_words(count * words_per_line, line_aligned=True)

    def poke(self, addr: int, value: int) -> None:
        """Write an initial-image word."""
        if addr % WORD_BYTES:
            raise WorkloadError(f"unaligned initial write at {addr:#x}")
        self.image[addr] = value

    def peek(self, addr: int) -> int:
        return self.image.get(addr, 0)


@dataclass
class WorkloadInstance:
    """A fully-built workload, ready to run on a machine.

    Instances are *reusable*: programs are pure generator factories and
    the image is copied into the machine, so the same instance can run
    both the gated and the ungated configuration — the paired-run
    methodology of Figs. 4–6.
    """

    name: str
    scale: Scale
    num_threads: int
    seed: int
    programs: list[ThreadProgram]
    initial_memory: dict[int, int]
    #: free-form build metadata (sizes, expected counts, ...)
    params: dict[str, Any] = field(default_factory=dict)
    #: callables(final_memory: dict[int, int]) raising on violation
    validators: list[Callable[[dict[int, int]], None]] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.num_threads != len(self.programs):
            raise WorkloadError(
                f"{self.name}: {self.num_threads} threads but "
                f"{len(self.programs)} programs"
            )

    def validate_final_memory(self, memory: dict[int, int]) -> None:
        """Run every workload validator against the final memory image."""
        for validator in self.validators:
            validator(memory)

    def describe(self) -> str:
        parts = [f"{self.name} (scale={self.scale}, threads={self.num_threads})"]
        for key, value in sorted(self.params.items()):
            parts.append(f"  {key} = {value}")
        return "\n".join(parts)


def partition(items: Sequence, num_threads: int, thread: int) -> list:
    """Round-robin partition of build-time work across threads."""
    return [item for idx, item in enumerate(items) if idx % num_threads == thread]


def warm_sweep(layout: MemoryLayout, base: int = 0x1_0000, line_bytes: int = 64):
    """Non-transactional loads touching every allocated shared line.

    The paper measures the *parallel section* (first transaction start
    to last transaction end) of STAMP runs whose shared structures were
    built during a long setup phase, so steady-state cache behaviour
    dominates its measurements.  Our synthetic runs are much shorter;
    without warming, compulsory misses on every shared line would
    dominate the energy profile (observed: 60–90 % of time in the MISS
    state).  Each thread therefore sweeps the shared arena with plain
    loads *before its first transaction* — outside the measured window
    by the paper's own definition — leaving only coherence misses in
    the parallel section, as on the paper's warmed system.
    """
    from ..htm.ops import Load  # local import to avoid a cycle at module load

    addr = base
    end = layout.cursor
    while addr < end:
        yield Load(addr)
        addr += line_bytes


__all__ += ["partition", "warm_sweep"]
