"""Version-control provenance shared by artifact and manifest writers.

Both the figure pipeline (``figures/*.json`` provenance blocks) and the
observability layer (``obs/run-*.manifest.json``) stamp their output
with the commit the simulator ran at.  The lookup lives here, in a
module with no package dependencies, so either consumer can import it
without dragging in the other's subsystem.
"""

from __future__ import annotations

import subprocess
from pathlib import Path

__all__ = ["git_sha"]

#: memoized (the SHA cannot change mid-process; one subprocess, not
#: one per written artifact)
_GIT_SHA_MEMO: tuple[str | None] | None = None


def git_sha() -> str | None:
    """The commit hash of the checkout this code runs from, or ``None``.

    Resolved relative to the package source (not the caller's working
    directory — provenance must name the simulator commit, not whatever
    repo the user happened to be in), so installed copies outside a
    checkout record ``None``.
    """
    global _GIT_SHA_MEMO
    if _GIT_SHA_MEMO is not None:
        return _GIT_SHA_MEMO[0]
    _GIT_SHA_MEMO = (_read_git_sha(),)
    return _GIT_SHA_MEMO[0]


def _read_git_sha() -> str | None:
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True, text=True, timeout=10,
            cwd=Path(__file__).resolve().parent,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    if proc.returncode != 0:
        return None
    return proc.stdout.strip() or None
