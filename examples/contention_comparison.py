#!/usr/bin/env python3
"""Contention-management comparison on a pathological workload.

Pits the paper's gating-aware staircase (Eq. 8) against classic
software-TM back-off policies on the sorted-linked-list microbenchmark
(large read-sets, head hot-spot — the canonical HTM pathology), with
gating on and off.

Usage::

    python examples/contention_comparison.py [--procs 8]
"""

import argparse
import dataclasses

from repro import SystemConfig, workload
from repro.config import GatingConfig
from repro.harness.reporting import format_table
from repro.harness.runner import run_workload


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--procs", type=int, default=8)
    parser.add_argument("--seed", type=int, default=3)
    args = parser.parse_args()

    spec = workload("llist", scale="small", seed=args.seed)
    variants = [
        ("immediate retry (paper baseline)", False, "gating-aware"),
        ("linear back-off", False, "linear"),
        ("exponential back-off", False, "exponential"),
        ("polite back-off", False, "polite"),
        ("clock gating, Eq. 8 windows", True, "gating-aware"),
        ("clock gating, exponential windows", True, "exponential"),
    ]

    print(f"Sorted-list inserts on {args.procs} cores, "
          f"{len(variants)} contention-management variants...")
    rows = []
    baseline_energy = None
    baseline_time = None
    for label, gating_on, cm_name in variants:
        config = dataclasses.replace(
            SystemConfig(num_procs=args.procs, seed=args.seed),
            gating=GatingConfig(enabled=gating_on, w0=8,
                                contention_manager=cm_name),
        )
        result = run_workload(spec, config)
        if baseline_energy is None:
            baseline_energy = result.energy.total
            baseline_time = result.parallel_time
        rows.append((
            label,
            result.parallel_time,
            round(baseline_time / result.parallel_time, 3),
            round(baseline_energy / result.energy.total, 3),
            result.aborts,
            f"{result.abort_rate:.1%}",
        ))

    print()
    print(format_table(
        ["policy", "N (cycles)", "speed-up", "energy red.", "aborts", "rate"],
        rows,
        title="Contention management on llist "
              f"({args.procs} procs, vs immediate-retry baseline)",
    ))


if __name__ == "__main__":
    main()
