#!/usr/bin/env python3
"""Declarative scenario suites end-to-end.

Builds a custom suite over the three new STAMP-style kernels (kmeans /
vacation / labyrinth), shows that the whole grid is data (JSON +
digests) before anything runs, then executes it twice through the
parallel executor and the content-addressed result cache — the second
pass performs zero simulations.

Usage::

    python examples/scenario_suites.py
"""

import tempfile

from repro import scenario
from repro.exec import Executor, ResultStore
from repro.harness.reporting import format_table
from repro.scenarios import ScenarioSuite, run_suite, suite


def main() -> None:
    grid = suite(
        "new-kernels",
        scenario("kmeans", scale="tiny", threads=4),
        axes={
            "workload": ("kmeans", "vacation", "labyrinth"),
            "gating": (False, True),
        },
        description="the three extended contention profiles, both modes",
    )

    print(grid.describe())
    print()

    # The grid is data before it is work: serialize it, ship it, diff it.
    restored = ScenarioSuite.from_json(grid.to_json())
    specs = restored.expand()
    assert [s.digest for s in specs] == [s.digest for s in grid.expand()]
    print("expanded scenarios (spec digest -> job digest):")
    for spec in specs:
        print(f"  {spec.digest[:12]} -> {spec.to_job().digest[:12]}  "
              f"{spec.label()}")
    print()

    with tempfile.TemporaryDirectory() as cache_dir:
        print("cold run (parallel, populating the cache)...")
        first = run_suite(grid, executor=Executor(
            jobs=2, store=ResultStore(cache_dir)))
        print(" ", first.report.summary())

        print("warm run (must be pure cache hits)...")
        second = run_suite(grid, executor=Executor(
            jobs=2, store=ResultStore(cache_dir)))
        print(" ", second.report.summary())
        assert second.report.executed == 0
        assert [r.result for r in first.results] == [
            r.result for r in second.results
        ], "cached results must be bit-identical"

    print()
    print(format_table(
        list(first.PAIRED_HEADERS),
        first.paired_rows(),
        title="gated vs ungated, per kernel",
    ))


if __name__ == "__main__":
    main()
