#!/usr/bin/env python3
"""Writing your own transactional workload.

Demonstrates the full workload API end-to-end: laying out shared
memory, writing transaction bodies as generators over the transactional
data structures, registering the workload, running it under both gating
modes, and validating its final state.

The example workload is a *work-stealing pipeline*: producers push jobs
into a shared queue, consumers pop and fold the results into a shared
histogram table.

Usage::

    python examples/custom_workload.py
"""

from repro import Compute, SystemConfig, TxOp, compare_gating
from repro.errors import WorkloadError
from repro.htm.program import ThreadContext, ThreadProgram
from repro.workloads.base import MemoryLayout, WorkloadInstance, warm_sweep
from repro.workloads.registry import register_workload
from repro.workloads.structures.hashtable import THashTable
from repro.workloads.structures.queue import TQueue
from repro.htm.ops import BarrierOp


def build_pipeline(num_threads: int, scale: str = "small", seed: int = 0,
                   jobs: int | None = None) -> WorkloadInstance:
    """Half the threads produce jobs, half consume and histogram them."""
    if num_threads < 2:
        raise WorkloadError("pipeline needs at least two threads")
    n_jobs = jobs if jobs is not None else {"tiny": 24, "small": 160,
                                            "medium": 640}[scale]
    n_producers = num_threads // 2
    n_buckets = 16

    layout = MemoryLayout()
    queue = TQueue(layout, capacity=n_jobs + 1, name="pipe.queue")
    histogram = THashTable(layout, num_slots=4 * n_buckets, name="pipe.hist")
    queue.initialize(layout, [])

    def make_push(job: int):
        def body(tx):
            ok = yield from queue.push(job)
            tx.set_result(ok)

        return body

    def pop_body(tx):
        job = yield from queue.pop()
        tx.set_result(job)

    def make_fold(job: int):
        def body(tx):
            bucket = 1 + job % n_buckets  # keys must be non-zero
            yield from histogram.increment(bucket)

        return body

    def program(ctx: ThreadContext):
        yield from warm_sweep(layout)
        yield BarrierOp("pipe.warm")
        if ctx.proc_id < n_producers:
            # producer: push my share of jobs (sentinel job 0 excluded)
            for job in range(1 + ctx.proc_id, n_jobs + 1, n_producers):
                yield TxOp(make_push(job), site="pipe.push")
                yield Compute(4)
        yield BarrierOp("pipe.produced")
        if ctx.proc_id >= n_producers:
            while True:
                job = yield TxOp(pop_body, site="pipe.pop")
                if job is None:
                    break
                yield Compute(10)  # process the job
                yield TxOp(make_fold(job), site="pipe.fold")

    def check_histogram(memory):
        total = sum(histogram.final_items(memory).values())
        if total != n_jobs:
            raise WorkloadError(f"pipeline lost jobs: {total} != {n_jobs}")

    def check_queue_empty(memory):
        if queue.final_size(memory) != 0:
            raise WorkloadError("pipeline queue not drained")

    return WorkloadInstance(
        name="pipeline",
        scale=scale,
        num_threads=num_threads,
        seed=seed,
        programs=[ThreadProgram(program, f"pipe.t{t}")
                  for t in range(num_threads)],
        initial_memory=dict(layout.image),
        params={"jobs": n_jobs, "producers": n_producers},
        validators=[check_queue_empty, check_histogram],
    )


def main() -> None:
    register_workload("pipeline", build_pipeline)

    config = SystemConfig(num_procs=4, seed=7)
    print("Running the custom producer/consumer pipeline (4 cores)...")
    comparison = compare_gating("pipeline", config)

    print()
    print(comparison.summary())
    print(f"  ungated: N={comparison.n1} cycles, "
          f"E={comparison.ungated.energy.total:.0f}")
    print(f"  gated  : N={comparison.n2} cycles, "
          f"E={comparison.gated.energy.total:.0f}")
    print()
    print("Validators passed in both modes — no job lost or duplicated, "
          "under aborts and clock gating alike.")


if __name__ == "__main__":
    main()
