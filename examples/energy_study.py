#!/usr/bin/env python3
"""Energy study: regenerate the paper's evaluation grid at small scale.

Runs genome, yada and intruder on 4/8/16 cores with and without clock
gating and prints the Fig. 4/5/6 rows plus the Section VIII headline
averages.  This is the same code path the benchmark suite uses, exposed
as a runnable script.

Usage::

    python examples/energy_study.py [--scale tiny|small] [--seed N]
"""

import argparse

from repro.harness.experiments import EvaluationSuite
from repro.harness.reporting import format_table


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", default="small", choices=("tiny", "small", "medium"))
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--procs", type=int, nargs="+", default=[4, 8, 16])
    args = parser.parse_args()

    suite = EvaluationSuite(scale=args.scale, seed=args.seed,
                            procs=tuple(args.procs))
    print(f"Running 3 apps x {args.procs} processors x 2 gating modes "
          f"(scale={args.scale})...")
    suite.run_all()

    print()
    print(format_table(
        ["app", "procs", "N1", "N2", "speed-up"],
        suite.fig4_rows(),
        title="Fig. 4 — Total parallel execution time",
    ))
    print()
    print(format_table(
        ["app", "procs", "Eug", "Eg", "energy reduction"],
        [(a, p, round(eu, 1), round(eg, 1), r)
         for a, p, eu, eg, r in suite.fig5_rows()],
        title="Fig. 5 — Energy consumption",
    ))
    print()
    print(format_table(
        ["app", "procs", "avgP ungated", "avgP gated", "power reduction"],
        suite.fig6_rows(),
        title="Fig. 6 — Average power dissipation",
    ))

    headline = suite.headline()
    print()
    print("Section VIII averages over the grid "
          f"({int(headline['points'])} points):")
    print(f"  speed-up          : {headline['average_speedup_pct']:+.1f}%  "
          "(paper: +4%)")
    print(f"  energy reduction  : {headline['average_energy_reduction_pct']:.1f}%  "
          "(paper: 19%)")
    print(f"  power reduction   : {headline['average_power_reduction_pct']:.1f}%  "
          "(paper: 13%)")


if __name__ == "__main__":
    main()
