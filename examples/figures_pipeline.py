"""A user-defined figure through the declarative pipeline.

Shows the full ``repro.figures`` loop on a *custom* artifact — not one
of the paper's: a suite file you could ship to a colleague, a
registered extractor turning its store records into rows, and a
:class:`~repro.figures.spec.FigureSpec` binding them.  The builder is
run twice to demonstrate store-driven incrementality: the second build
simulates nothing and leaves the artifact bytes untouched.

Equivalent CLI for the built-in paper artifacts::

    python -m repro figures build --jobs 4 --cache-dir .repro-cache
"""

from __future__ import annotations

import argparse
import json
import tempfile
from pathlib import Path

from repro.analysis.figreport import format_figure, load_figure
from repro.figures import (
    ExtractionContext,
    FigureBuilder,
    FigureParams,
    FigureSpec,
    register_extractor,
)
from repro.scenarios.suite import load_suite_file

#: a hand-written suite file: the contention ladder, gated vs ungated
SUITE_JSON = {
    "name": "abort-ladder",
    "description": "abort behaviour across the microbenchmark ladder",
    "base": {"workload": "counter", "scale": "tiny", "threads": 4,
             "w0": 8},
    "axes": [
        ["workload", ["array_walk", "bank", "counter"]],
        ["gating", [False, True]],
    ],
}


@register_extractor("abort-ladder-rows", version=1)
def extract_abort_ladder(ctx: ExtractionContext):
    """(workload, mode, commits, aborts, abort rate) per scenario."""
    rows = []
    for entry in ctx.results:
        result = entry.result
        total = result.commits + result.aborts
        rows.append([
            entry.spec.workload,
            "gated" if entry.spec.gating else "ungated",
            result.commits,
            result.aborts,
            round(result.aborts / total, 4) if total else 0.0,
        ])
    return {
        "headers": ["workload", "mode", "commits", "aborts", "abort_rate"],
        "rows": rows,
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--cache-dir", default=None,
                        help="result store (default: a temp directory)")
    parser.add_argument("--jobs", type=int, default=2)
    args = parser.parse_args()

    workdir = Path(tempfile.mkdtemp(prefix="figures-example-"))
    suite_path = workdir / "abort-ladder.json"
    suite_path.write_text(json.dumps(SUITE_JSON, indent=2))
    print(f"suite file: {suite_path}")

    figure = FigureSpec(
        name="abort-ladder",
        title="Abort behaviour across the contention ladder",
        extractor="abort-ladder-rows",
        kind="table",
        suite=load_suite_file(suite_path),  # a concrete suite value
        description="user-defined artifact over a user suite file",
    )

    builder = FigureBuilder(
        store=args.cache_dir,  # None -> throw-away temporary store
        out_dir=workdir / "figures",
        params=FigureParams(scale="tiny", apps=("counter",), procs=(4,),
                            w0=8, w0_values=(8,)),
        specs=[figure],
        jobs=args.jobs,
    )

    for label in ("cold", "warm"):
        report = builder.build()
        print(f"{label}: {report.summary()}")
    artifact = builder.artifact_path("abort-ladder")
    print(f"artifact: {artifact}")
    print()
    print(format_figure(load_figure(artifact)))


if __name__ == "__main__":
    main()
