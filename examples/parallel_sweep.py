"""Parallel, cached figure regeneration with ``repro.exec``.

Runs the Fig. 7 W0 sweep for one workload through a process-pool
executor backed by an on-disk result store, twice: the first pass
simulates, the second is answered entirely from the cache.  Equivalent
CLI::

    python -m repro sweep intruder --procs 4 --jobs 4 \
        --cache-dir .repro-cache --progress
"""

from __future__ import annotations

import argparse

from repro import SystemConfig
from repro.exec import ConsoleProgress, Executor, ResultStore
from repro.harness.runner import workload
from repro.harness.sweep import w0_sensitivity


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workload", default="intruder")
    parser.add_argument("--scale", default="tiny")
    parser.add_argument("--procs", type=int, default=4)
    parser.add_argument("--jobs", type=int, default=0, help="0 = one per CPU")
    parser.add_argument("--cache-dir", default=".repro-cache")
    args = parser.parse_args()

    spec = workload(args.workload, scale=args.scale, seed=1)
    config = SystemConfig(num_procs=args.procs, seed=1)

    for label in ("cold", "warm"):
        executor = Executor(
            jobs=args.jobs,
            store=ResultStore(args.cache_dir),
            progress=ConsoleProgress(),
        )
        curves = w0_sensitivity(spec, config, executor=executor)
        report = executor.last_report
        print(f"{label}: {report.summary()}")

    print()
    for w0, point in curves.items():
        print(
            f"W0={w0:3d}  speed-up {point['speedup']:.3f}  "
            f"energy reduction {point['energy_reduction']:.3f}"
        )


if __name__ == "__main__":
    main()
