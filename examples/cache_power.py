#!/usr/bin/env python3
"""Fig. 3 analysis: what do TCC's RW bits cost the data cache?

Prints the normalized power of a TCC-capable data cache as the
speculative read/write tracking resolution sweeps from line-level
(64 B) to byte-level, for several cache sizes, plus the full TCC
data-cache factor including the store-address FIFO and commit
controller.

Usage::

    python examples/cache_power.py
"""

from repro.harness.reporting import format_matrix
from repro.power.cacti import (
    FIG3_CACHE_SIZES_KB,
    FIG3_GRANULARITIES,
    CactiCacheModel,
    tcc_cache_power_curve,
    tcc_total_power_factor,
)


def main() -> None:
    values = {
        f"{size}KB": dict(tcc_cache_power_curve(size))
        for size in FIG3_CACHE_SIZES_KB
    }
    print(format_matrix(
        [f"{s}KB" for s in FIG3_CACHE_SIZES_KB],
        list(FIG3_GRANULARITIES),
        values,
        corner="cache \\ granularity(B)",
        title="Fig. 3 — Normalized power of a TCC data cache "
              "(normal cache = 100)",
    ))

    model = CactiCacheModel()
    print()
    print("Calibration anchors (Section VII):")
    print(f"  64KB @ 2B (word) tracking : "
          f"{model.relative_power(64, 2):.1f}  (paper: ~105)")
    print(f"  full TCC data cache factor: "
          f"{tcc_total_power_factor():.2f}x (paper: ~1.5x)")
    print()
    print("Reading: finer speculative-state tracking costs more array")
    print("power; word-level (2B) is the paper's sweet spot at +5%.")


if __name__ == "__main__":
    main()
