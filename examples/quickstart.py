#!/usr/bin/env python3
"""Quickstart: simulate one workload with and without clock gating.

Runs the paper's highly-conflicting intruder workload on a 4-core
Scalable-TCC machine (Table II defaults), then prints the three
metrics the paper reports: speed-up (Fig. 4), energy reduction (Eq. 6 /
Fig. 5) and average-power reduction (Eq. 7 / Fig. 6).

Usage::

    python examples/quickstart.py
"""

from repro import SystemConfig, compare_gating, workload
from repro.power.report import format_energy_report


def main() -> None:
    config = SystemConfig(num_procs=4, seed=42)   # Table II machine, W0=8
    spec = workload("intruder", scale="small", seed=42)

    print("Simulating intruder on 4 cores, with and without clock gating...")
    comparison = compare_gating(spec, config)

    print()
    print(format_energy_report(comparison.energy_report()))
    print()
    print("Transaction statistics:")
    for label, run in (("ungated", comparison.ungated),
                       ("gated  ", comparison.gated)):
        print(
            f"  {label}: {run.commits} commits, {run.aborts} aborts "
            f"(abort rate {run.abort_rate:.1%}), "
            f"{run.wasted_cycles} wasted cycles"
        )
    gated = comparison.gated.counters
    print(
        f"  gating: {gated.get('gating.gated', 0)} gate events, "
        f"{gated.get('gating.renewals', 0)} window renewals, "
        f"{gated.get('gating.wakeups', 0)} wake-ups"
    )
    print()
    print(
        f"=> speed-up {comparison.speedup:.3f}x, "
        f"energy reduction {comparison.energy_reduction:.3f}x, "
        f"power reduction {comparison.power_reduction:.3f}x"
    )


if __name__ == "__main__":
    main()
