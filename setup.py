"""Legacy setup shim.

The execution environment is offline and lacks the ``wheel`` package,
so PEP 517 editable installs (which shell out to ``bdist_wheel``) fail.
Keeping a ``setup.py`` and omitting ``[build-system]`` from
pyproject.toml lets ``pip install -e .`` fall back to the legacy
``setup.py develop`` path, which needs only setuptools.
"""

from setuptools import setup

setup()
