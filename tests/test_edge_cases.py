"""Edge-case coverage across layers: races, stale messages, odd shapes."""

from __future__ import annotations

import dataclasses

import pytest

from repro.config import CacheConfig, GatingConfig, SystemConfig
from repro.harness.runner import run_workload, workload
from repro.htm.machine import Machine
from repro.htm.ops import Compute, Load, Store, TxOp
from repro.htm.program import ThreadProgram
from repro.power.states import ProcState

HOT = 0x2000


def contended(n, work=5):
    def program(ctx):
        def body(tx):
            value = yield Load(HOT)
            yield Compute(work)
            yield Store(HOT, value + 1)

        for _ in range(n):
            yield TxOp(body, site="inc")

    return program


class TestFewerDirectoriesThanProcessors:
    """num_dirs != num_procs exercises the interleaving paths."""

    @pytest.mark.parametrize("num_dirs", [1, 2, 3])
    def test_counter_correct(self, num_dirs):
        config = SystemConfig(num_procs=4, num_dirs=num_dirs, seed=2)
        programs = [ThreadProgram(contended(10), f"t{i}") for i in range(4)]
        machine = Machine(config, programs)
        machine.run()
        assert machine.memory.read_word(HOT) == 40

    def test_more_dirs_than_procs(self):
        config = SystemConfig(num_procs=2, num_dirs=8, seed=2)
        programs = [ThreadProgram(contended(10), f"t{i}") for i in range(2)]
        machine = Machine(config, programs)
        machine.run()
        assert machine.memory.read_word(HOT) == 20


class TestTinyCache:
    """A 2-set cache forces heavy (speculative) eviction traffic; the
    sticky-sharer design must keep everything correct regardless."""

    def test_correct_under_thrashing(self):
        config = dataclasses.replace(
            SystemConfig(num_procs=2, seed=3),
            cache=CacheConfig(size_bytes=256, line_bytes=64, ways=2),
        )

        def make():
            def program(ctx):
                def body(tx):
                    # touch 5 distinct lines: guaranteed evictions
                    values = []
                    for i in range(5):
                        v = yield Load(HOT + 64 * i)
                        values.append(v)
                    yield Store(HOT, values[0] + 1)

                for _ in range(6):
                    yield TxOp(body, site="thrash")

            return program

        machine = Machine(
            config,
            [ThreadProgram(make(), "a"), ThreadProgram(make(), "b")],
            validation_mode=True,
        )
        result = machine.run()
        assert machine.memory.read_word(HOT) == 12
        from repro.harness.validation import check_serializability

        check_serializability({}, result, machine.memory.version_log)
        assert result.stats.get("proc0.cache.evictions") > 0


class TestStaleMessages:
    def test_stale_fill_counted(self):
        """Abort a tx mid-miss; the late reply must be discarded."""
        config = SystemConfig(num_procs=2, seed=4)

        def victim(ctx):
            def body(tx):
                value = yield Load(HOT)        # will be aborted mid-flight
                yield Load(HOT + 0x1000)       # long miss to stay in-flight
                yield Store(HOT, value + 1)

            for _ in range(8):
                yield TxOp(body, site="victim")

        def attacker(ctx):
            def body(tx):
                value = yield Load(HOT)
                yield Store(HOT, value + 1)

            for _ in range(8):
                yield TxOp(body, site="attacker")

        machine = Machine(
            config,
            [ThreadProgram(victim, "v"), ThreadProgram(attacker, "a")],
        )
        machine.run()
        assert machine.memory.read_word(HOT) == 16  # correctness first

    def test_saturating_abort_counter_with_tiny_width(self):
        """1-bit abort counters saturate at 1 and the run still ends."""
        config = dataclasses.replace(
            SystemConfig(num_procs=4, seed=5),
            gating=GatingConfig(enabled=True, w0=4, abort_counter_bits=1),
        )
        programs = [ThreadProgram(contended(8), f"t{i}") for i in range(4)]
        machine = Machine(config, programs)
        machine.run()
        for unit in machine.gating_units:
            for entry in unit.table:
                assert entry.abort_count <= 1
        assert machine.memory.read_word(HOT) == 32


class TestParallelWindowEdges:
    def test_run_with_no_transactions(self):
        def program(ctx):
            yield Compute(100)

        config = SystemConfig(num_procs=1, seed=0)
        machine = Machine(config, [ThreadProgram(program, "t")])
        result = machine.run()
        # degenerate window covers the run; energy still computable
        assert result.parallel_start == 0
        assert result.parallel_end == result.end_cycle
        from repro.power.energy import compute_energy
        from repro.power.model import PowerModel

        breakdown = compute_energy(
            result.timelines,
            (result.parallel_start, result.parallel_end),
            PowerModel.derive(),
            gated_run=True,
        )
        assert breakdown.total == pytest.approx(100.0)

    def test_single_instant_transaction(self):
        def body(tx):
            return
            yield  # pragma: no cover

        def program(ctx):
            yield TxOp(body, site="empty")

        config = SystemConfig(num_procs=1, seed=0)
        machine = Machine(config, [ThreadProgram(program, "t")])
        result = machine.run()
        assert result.parallel_end >= result.parallel_start


class TestGatedStateEnergy:
    def test_gated_cycles_billed_at_leakage(self):
        """Energy of gated intervals must use the 0.20 factor."""
        result = run_workload(
            workload("counter", scale="tiny", seed=8),
            SystemConfig(num_procs=4, seed=8),
        )
        cycles, energy = result.energy.by_state.get(ProcState.GATED, (0, 0.0))
        if cycles:
            assert energy == pytest.approx(cycles * 0.20)

    def test_commit_cycles_billed_at_commit_power(self):
        result = run_workload(
            workload("counter", scale="tiny", seed=8),
            SystemConfig(num_procs=4, seed=8),
        )
        cycles, energy = result.energy.by_state[ProcState.COMMIT]
        assert energy == pytest.approx(cycles * 0.44)


class TestWithW0Sweep:
    @pytest.mark.parametrize("w0", [1, 64])
    def test_extreme_w0_still_correct(self, w0):
        config = SystemConfig(num_procs=4, seed=9).with_w0(w0)
        result = run_workload(
            workload("counter", scale="tiny", seed=9), config,
            check_serial=True,
        )
        assert result.commits == 40
