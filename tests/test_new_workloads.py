"""kmeans / vacation / labyrinth: build determinism, validators,
serializability, and scenario-spec round-trips.

Together with the generic coverage in ``test_workloads.py`` (which
parametrizes over every registered workload), this is the ISSUE's
acceptance surface for the three new STAMP-style kernels.
"""

from __future__ import annotations

import pytest

from repro.config import SystemConfig
from repro.errors import WorkloadError
from repro.harness.runner import run_workload
from repro.scenarios import ScenarioSpec, scenario
from repro.workloads.base import SCALES
from repro.workloads.kmeans import build_kmeans
from repro.workloads.labyrinth import build_labyrinth
from repro.workloads.registry import build_workload
from repro.workloads.vacation import build_vacation

NEW_APPS = ("kmeans", "vacation", "labyrinth")


class TestBuildDeterminism:
    @pytest.mark.parametrize("name", NEW_APPS)
    @pytest.mark.parametrize("scale", SCALES)
    def test_builds_at_every_scale(self, name, scale):
        inst = build_workload(name, 4, scale=scale, seed=2)
        assert inst.num_threads == 4
        assert inst.scale == scale
        assert inst.validators
        assert inst.params["expected_transactions"] > 0

    @pytest.mark.parametrize("name", NEW_APPS)
    def test_same_seed_same_build(self, name):
        a = build_workload(name, 4, scale="tiny", seed=5)
        b = build_workload(name, 4, scale="tiny", seed=5)
        assert a.initial_memory == b.initial_memory
        assert a.params == b.params

    @pytest.mark.parametrize("name", NEW_APPS)
    def test_different_seed_different_build(self, name):
        a = build_workload(name, 4, scale="tiny", seed=5)
        b = build_workload(name, 4, scale="tiny", seed=6)
        assert a.initial_memory != b.initial_memory or a.params != b.params

    @pytest.mark.parametrize("name", NEW_APPS)
    def test_sixteen_thread_tiny_builds(self, name):
        """The Fig. 7 grid corner: every app must build at 16 threads."""
        inst = build_workload(name, 16, scale="tiny", seed=0)
        assert inst.num_threads == 16


class TestDeterministicRuns:
    """Same seed -> bit-identical metrics, end to end."""

    @pytest.mark.parametrize("name", NEW_APPS)
    def test_run_twice_identical(self, name):
        config = SystemConfig(num_procs=4, seed=8)
        results = [
            run_workload(build_workload(name, 4, scale="tiny", seed=8), config)
            for _ in range(2)
        ]
        assert results[0].parallel_time == results[1].parallel_time
        assert results[0].counters == results[1].counters
        assert results[0].energy.total == results[1].energy.total


class TestSerializabilityUnderBothModes:
    """Tiny-scale runs with full validation + TID-order replay."""

    @pytest.mark.parametrize("name", NEW_APPS)
    @pytest.mark.parametrize("gating", [False, True],
                             ids=["ungated", "gated"])
    def test_validated_serializable(self, name, gating):
        config = SystemConfig(num_procs=4, seed=13).with_gating(gating)
        result = run_workload(
            build_workload(name, 4, scale="tiny", seed=13),
            config,
            validate=True,
            check_serial=True,
        )
        assert result.commits > 0


class TestScenarioRoundTrip:
    @pytest.mark.parametrize("name", NEW_APPS)
    def test_spec_json_digest_unchanged(self, name):
        spec = scenario(name, scale="tiny", threads=4, seed=7)
        restored = ScenarioSpec.from_json(spec.to_json())
        assert restored.digest == spec.digest
        assert restored.to_job().digest == spec.to_job().digest


class TestKmeans:
    def test_centroid_fixpoint_validated(self):
        inst = build_kmeans(4, scale="tiny", seed=3)
        result = run_workload(inst, SystemConfig(num_procs=4, seed=3))
        # validators ran inside run_workload; spot-check the params
        assert inst.params["clusters"] == 4
        assert result.commits == inst.params["expected_transactions"]

    def test_more_clusters_less_contention(self):
        few = build_kmeans(4, scale="tiny", clusters=2, seed=1)
        many = build_kmeans(4, scale="tiny", clusters=8, seed=1)
        assert few.params["clusters"] == 2
        assert many.params["clusters"] == 8

    def test_rejects_bad_shapes(self):
        with pytest.raises(WorkloadError):
            build_kmeans(2, scale="tiny", clusters=0)
        with pytest.raises(WorkloadError):
            build_kmeans(2, scale="tiny", points=3, clusters=8)
        with pytest.raises(WorkloadError):
            build_kmeans(2, scale="tiny", iterations=0)
        with pytest.raises(WorkloadError, match="unknown scale"):
            build_kmeans(2, scale="galactic")

    def test_validator_catches_corruption(self):
        inst = build_kmeans(2, scale="tiny", seed=0)
        result = run_workload(inst, SystemConfig(num_procs=2, seed=0))
        memory = dict(result.machine_result.memory_snapshot)
        # corrupt the first centroid word
        target = next(iter(inst.initial_memory))
        memory[target] = memory.get(target, 0) + 999
        with pytest.raises(WorkloadError):
            inst.validate_final_memory(memory)


class TestVacation:
    def test_aggregate_conservation(self):
        inst = build_vacation(4, scale="tiny", seed=5)
        result = run_workload(inst, SystemConfig(num_procs=4, seed=5))
        assert result.commits == inst.params["expected_transactions"]
        assert inst.params["expected_bookings"] > 0

    def test_query_fraction_extremes(self):
        read_only = build_vacation(2, scale="tiny", query_fraction=1.0, seed=2)
        writers = build_vacation(2, scale="tiny", query_fraction=0.0, seed=2)
        assert read_only.params["expected_bookings"] == 0
        assert writers.params["expected_bookings"] > 0
        for inst in (read_only, writers):
            run_workload(inst, SystemConfig(num_procs=2, seed=2))

    def test_rejects_bad_shapes(self):
        with pytest.raises(WorkloadError):
            build_vacation(2, scale="tiny", query_fraction=1.5)
        with pytest.raises(WorkloadError):
            build_vacation(2, scale="tiny", relations=1)
        with pytest.raises(WorkloadError):
            build_vacation(2, scale="tiny", query_size=0)
        with pytest.raises(WorkloadError):
            build_vacation(2, scale="tiny", max_stock=0)

    def test_oversold_items_stop_at_zero(self):
        """Demand far above stock: stock floors at 0 deterministically."""
        inst = build_vacation(4, scale="tiny", relations=2, max_stock=1,
                              query_fraction=0.0, seed=7)
        run_workload(inst, SystemConfig(num_procs=4, seed=7))


class TestLabyrinth:
    def test_routes_disjoint_and_placed(self):
        inst = build_labyrinth(4, scale="tiny", seed=4)
        result = run_workload(inst, SystemConfig(num_procs=4, seed=4))
        assert result.commits == inst.params["paths"]
        assert inst.params["routed_cells"] > 0

    def test_long_transactions_abort(self):
        """Dense column band: concurrent routes must conflict."""
        inst = build_labyrinth(4, scale="small", seed=1)
        result = run_workload(inst, SystemConfig(num_procs=4, seed=1))
        assert result.aborts > 0  # the worst-case-for-abort-energy profile

    def test_too_many_paths_rejected(self):
        with pytest.raises(WorkloadError, match="distinct columns"):
            build_labyrinth(8, scale="tiny", grid_side=4)

    def test_rejects_bad_shapes(self):
        with pytest.raises(WorkloadError):
            build_labyrinth(2, scale="tiny", grid_side=1)
        with pytest.raises(WorkloadError):
            build_labyrinth(2, scale="tiny", paths_per_thread=0)
        with pytest.raises(WorkloadError):
            build_labyrinth(2, scale="tiny", max_path_length=1)

    def test_validator_catches_stray_write(self):
        inst = build_labyrinth(2, scale="tiny", seed=0)
        result = run_workload(inst, SystemConfig(num_procs=2, seed=0))
        memory = dict(result.machine_result.memory_snapshot)
        # stamp an unowned cell
        from repro.workloads.labyrinth import LABYRINTH_SCALES

        side = LABYRINTH_SCALES["tiny"][0]
        # find a grid address with value 0 and mark it
        for addr in range(0x1_0000, 0x1_0000 + side * side * 8, 8):
            if memory.get(addr, 0) == 0:
                memory[addr] = 77
                break
        with pytest.raises(WorkloadError):
            inst.validate_final_memory(memory)
