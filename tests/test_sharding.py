"""Suite sharding, store merging, and cache-aware planning."""

from __future__ import annotations

import json

import pytest

from repro.errors import ExecutionError
from repro.exec.executor import Executor
from repro.exec.store import ResultStore
from repro.scenarios.builtin import get_suite
from repro.scenarios.runner import Shard, plan_suite, run_suite
from repro.scenarios.suite import SpecListSuite, load_suite_file
from repro.cli import main


def smoke():
    return get_suite("smoke", scale="tiny")


def job_digests(suite):
    return {spec.to_job().digest for spec in suite.expand()}


class TestShard:
    def test_parse(self):
        shard = Shard.parse("2/4")
        assert (shard.index, shard.count) == (2, 4)
        assert str(shard) == "2/4"

    @pytest.mark.parametrize("text", ["", "3", "0/4", "5/4", "a/b", "1/2/3"])
    def test_parse_rejects_bad_specs(self, text):
        with pytest.raises(ExecutionError):
            Shard.parse(text)

    def test_shards_partition_every_digest_exactly_once(self):
        digests = job_digests(smoke())
        for count in (1, 2, 3, 5):
            shards = [Shard(k, count) for k in range(1, count + 1)]
            owners = {
                digest: [s for s in shards if s.owns(digest)]
                for digest in digests
            }
            assert all(len(own) == 1 for own in owners.values())

    def test_filter_specs_is_digest_stable(self):
        suite = smoke()
        specs = suite.expand()
        parts = [
            Shard(k, 2).filter_specs(specs) for k in (1, 2)
        ]
        assert sum(len(part) for part in parts) == len(specs)
        # scenarios sharing one job digest travel together
        rejoined = {spec.digest for part in parts for spec in part}
        assert rejoined == {spec.digest for spec in specs}


class TestShardedRuns:
    def test_shards_merge_to_the_unsharded_store(self, tmp_path):
        suite = smoke()
        full = ResultStore(tmp_path / "full")
        run_suite(suite, executor=Executor(store=full))

        for k in (1, 2):
            store = ResultStore(tmp_path / f"shard{k}")
            outcome = run_suite(
                suite, executor=Executor(store=store), shard=Shard(k, 2)
            )
            assert outcome.shard == Shard(k, 2)
            # every stored digest belongs to this shard
            assert all(
                Shard(k, 2).owns(digest) for digest, _ in store.labels()
            )

        merged = ResultStore(tmp_path / "merged")
        for k in (1, 2):
            merged.merge_from(ResultStore(tmp_path / f"shard{k}"))
        assert {d for d, _ in merged.labels()} == {d for d, _ in full.labels()}

        # acceptance: a plan over the merged store reports zero misses
        plan = plan_suite(suite, store=merged)
        assert plan.misses == 0
        assert plan.hits == plan.unique_jobs


class TestPlan:
    def test_plan_without_store_is_all_misses(self):
        plan = plan_suite(smoke())
        assert plan.unique_jobs == 3  # 4 scenarios, ungated W0s collapse
        assert plan.total_scenarios == 4
        assert (plan.hits, plan.misses) == (0, 3)
        assert "0 hit(s), 3 miss(es)" in plan.summary()

    def test_plan_counts_store_traffic(self, tmp_path):
        store = ResultStore(tmp_path)
        run_suite(smoke(), executor=Executor(store=store))
        probe = ResultStore(tmp_path)
        plan = plan_suite(smoke(), store=probe)
        assert (plan.hits, plan.misses) == (3, 0)
        # the documented accounting contract: `in` counts like get()
        assert (probe.hits, probe.misses) == (3, 0)

    def test_residual_suite_round_trips_and_completes(self, tmp_path):
        suite = smoke()
        store = ResultStore(tmp_path)
        # execute only shard 1/2, then plan the full grid
        run_suite(suite, executor=Executor(store=store), shard=Shard(1, 2))
        plan = plan_suite(suite, store=ResultStore(tmp_path))
        residual = plan.residual_suite()
        assert isinstance(residual, SpecListSuite)
        assert residual.size == plan.misses
        # JSON round-trip is exact
        assert SpecListSuite.from_json(residual.to_json()) == residual
        # running the residual makes the next plan fully cached
        run_suite(residual, executor=Executor(store=ResultStore(tmp_path)))
        final = plan_suite(suite, store=ResultStore(tmp_path))
        assert final.misses == 0

    def test_sharded_plans_tile_the_full_plan(self):
        full = plan_suite(smoke())
        parts = [plan_suite(smoke(), shard=Shard(k, 2)) for k in (1, 2)]
        assert sum(p.unique_jobs for p in parts) == full.unique_jobs
        assert sum(p.total_scenarios for p in parts) == full.total_scenarios

    def test_evaluation_suite_plan(self, tmp_path):
        from repro.harness.experiments import EvaluationSuite

        suite = EvaluationSuite(scale="tiny", procs=(2,), apps=("counter",))
        plan = suite.plan(ResultStore(tmp_path))
        assert plan.unique_jobs == 2  # gated + ungated at one point
        assert plan.misses == 2
        suite.run_all()
        # run_all shares the suite's executor, not our probe store, so
        # attach one and prove plan-then-run-then-plan converges
        store = ResultStore(tmp_path)
        cached = EvaluationSuite(
            scale="tiny", procs=(2,), apps=("counter",),
            executor=Executor(store=store),
        )
        cached.run_all()
        assert cached.plan(ResultStore(tmp_path)).misses == 0

    def test_plan_to_dict_shape(self):
        data = plan_suite(smoke(), shard=Shard(1, 1)).to_dict()
        assert data["suite"] == "smoke"
        assert data["shard"] == "1/1"
        assert data["unique_jobs"] == len(data["entries"])
        entry = data["entries"][0]
        assert set(entry) == {"digest", "cached", "scenarios", "label"}


class TestSpecListSuite:
    def test_expand_validates(self):
        from repro.scenarios.spec import ScenarioSpec

        good = SpecListSuite("ok", (ScenarioSpec("counter", scale="tiny"),))
        assert [s.workload for s in good.expand()] == ["counter"]
        from repro.errors import WorkloadError

        bad = SpecListSuite("bad", (ScenarioSpec("no-such-workload"),))
        with pytest.raises(WorkloadError):
            bad.expand()

    def test_with_base_updates_touches_every_spec(self):
        from repro.scenarios.spec import ScenarioSpec

        suite = SpecListSuite(
            "s",
            (ScenarioSpec("counter", scale="tiny"),
             ScenarioSpec("bank", scale="tiny")),
        )
        rescaled = suite.with_base_updates(scale="small", seed=7)
        assert all(s.scale == "small" and s.seed == 7 for s in rescaled.specs)

    def test_load_suite_file_accepts_spec_lists(self, tmp_path):
        path = tmp_path / "residual.json"
        residual = plan_suite(smoke()).residual_suite()
        path.write_text(residual.to_json(indent=2))
        loaded = load_suite_file(path)
        assert loaded == residual

    def test_load_suite_file_rejects_mixed_formats(self, tmp_path):
        from repro.errors import WorkloadError

        path = tmp_path / "mixed.json"
        path.write_text(json.dumps(
            {"specs": [], "base": {"workload": "counter"}}
        ))
        with pytest.raises(WorkloadError, match="mixes"):
            load_suite_file(path)


class TestCli:
    def run_cli(self, capsys, *argv):
        code = main(list(argv))
        assert code == 0
        return capsys.readouterr().out

    def test_shard_merge_plan_cycle(self, capsys, tmp_path):
        for k in (1, 2):
            self.run_cli(
                capsys, "suite", "run", "--suite", "smoke", "--shard", f"{k}/2",
                "--cache-dir", str(tmp_path / f"s{k}"), "--store", "sqlite",
            )
        out = self.run_cli(
            capsys, "suite", "merge", str(tmp_path / "s1"), str(tmp_path / "s2"),
            "--into", str(tmp_path / "merged"), "--store", "sqlite",
        )
        assert "3 entries" in out
        out = self.run_cli(
            capsys, "suite", "plan", "--suite", "smoke",
            "--cache-dir", str(tmp_path / "merged"),
        )
        assert "3 hit(s), 0 miss(es)" in out

    def test_plan_json_and_out(self, capsys, tmp_path):
        out_file = tmp_path / "residual.json"
        out = self.run_cli(
            capsys, "suite", "plan", "--suite", "smoke", "--json",
            "--out", str(out_file),
        )
        data = json.loads(out)
        assert data["misses"] == 3
        residual = load_suite_file(out_file)
        assert residual.size == 3

    def test_run_accepts_spec_list_files(self, capsys, tmp_path):
        out_file = tmp_path / "residual.json"
        self.run_cli(capsys, "suite", "plan", "--suite", "smoke",
                     "--out", str(out_file))
        out = self.run_cli(
            capsys, "suite", "run", "--file", str(out_file),
            "--cache-dir", str(tmp_path / "cache"),
        )
        assert "3 scenario(s)" in out
        out = self.run_cli(
            capsys, "suite", "plan", "--suite", "smoke",
            "--cache-dir", str(tmp_path / "cache"),
        )
        assert "0 miss(es)" in out

    def test_exec_status_digests(self, capsys, tmp_path):
        self.run_cli(capsys, "suite", "run", "--suite", "smoke",
                     "--cache-dir", str(tmp_path / "c"))
        out = self.run_cli(capsys, "exec-status",
                           "--cache-dir", str(tmp_path / "c"), "--digests")
        digests = out.split()
        assert len(digests) == 3
        assert digests == sorted(digests)
        assert all(len(d) == 64 for d in digests)

    def test_merge_missing_source_fails(self, capsys, tmp_path):
        code = main(["suite", "merge", str(tmp_path / "nope"),
                     "--into", str(tmp_path / "merged")])
        assert code == 1
        assert "no result store" in capsys.readouterr().err

    def test_bad_shard_spec_exits(self, capsys):
        with pytest.raises(SystemExit):
            main(["suite", "run", "--suite", "smoke", "--shard", "9/2"])