"""Test package marker.

Makes ``tests`` a proper package so modules can use relative imports
(``from .helpers import ...``) and ``python -m pytest`` collects
cleanly regardless of the invocation directory.
"""
