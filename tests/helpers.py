"""Test utilities: a functional interpreter for op generators, and
program-building shorthand.

``run_functional`` executes a structure-method generator (the kind used
inside transaction bodies) directly against a plain ``dict`` memory —
no simulator, no timing — so data-structure logic can be unit-tested in
isolation from the HTM.
"""

from __future__ import annotations

from typing import Any, Generator

from repro.htm.ops import Compute, Load, Store


def run_functional(gen: Generator, memory: dict[int, int]) -> Any:
    """Execute a Load/Store/Compute generator against ``memory``."""
    try:
        op = next(gen)
        while True:
            if isinstance(op, Load):
                op = gen.send(memory.get(op.addr, 0))
            elif isinstance(op, Store):
                memory[op.addr] = op.value
                op = gen.send(None)
            elif isinstance(op, Compute):
                op = gen.send(None)
            else:  # pragma: no cover - defensive
                raise AssertionError(f"unexpected op {op!r}")
    except StopIteration as stop:
        return stop.value


def collect_ops(gen: Generator, memory: dict[int, int]) -> list:
    """Like :func:`run_functional` but records the op sequence."""
    ops = []
    try:
        op = next(gen)
        while True:
            ops.append(op)
            if isinstance(op, Load):
                op = gen.send(memory.get(op.addr, 0))
            elif isinstance(op, Store):
                memory[op.addr] = op.value
                op = gen.send(None)
            else:
                op = gen.send(None)
    except StopIteration:
        return ops
