"""The declarative scenario layer: specs, suites, runner, built-ins."""

from __future__ import annotations

import json

import pytest

from repro.config import SystemConfig
from repro.errors import ConfigError, WorkloadError
from repro.exec.executor import Executor
from repro.exec.store import ResultStore
from repro.harness.runner import WorkloadSpec
from repro.scenarios import (
    ScenarioSpec,
    ScenarioSuite,
    available_suites,
    get_suite,
    run_specs,
    run_suite,
    scenario,
    suite,
)
from repro.workloads.registry import PAPER_APPS, STAMP_APPS


class TestScenarioSpec:
    def test_digest_is_stable(self):
        a = scenario("counter", scale="tiny", threads=2, seed=1)
        b = scenario("counter", scale="tiny", threads=2, seed=1)
        assert a.digest == b.digest
        assert a.digest != a.with_updates(seed=2).digest
        assert a.digest != a.with_updates(w0=16).digest

    def test_json_round_trip_preserves_digest(self):
        spec = scenario(
            "vacation", scale="tiny", threads=4, seed=3,
            params={"relations": 8, "query_fraction": 0.25},
            system={"memory.latency": 50, "cache.ways": 4},
        )
        restored = ScenarioSpec.from_json(spec.to_json())
        assert restored == spec
        assert restored.digest == spec.digest

    @pytest.mark.parametrize("name", STAMP_APPS)
    def test_every_stamp_app_round_trips(self, name):
        spec = scenario(name, scale="tiny", threads=4, seed=9)
        restored = ScenarioSpec.from_json(spec.to_json(indent=2))
        assert restored.digest == spec.digest

    def test_system_overrides_applied(self):
        spec = scenario(
            "counter", scale="tiny",
            system={"memory.latency": 42, "num_dirs": 2,
                    "gating.abort_counter_bits": 4},
        )
        config = spec.system_config()
        assert config.memory.latency == 42
        assert config.num_dirs == 2
        assert config.gating.abort_counter_bits == 4
        assert config.gating.enabled is True and config.gating.w0 == 8

    def test_unknown_workload_rejected(self):
        with pytest.raises(WorkloadError, match="unknown workload"):
            scenario("nope")

    def test_unknown_param_rejected_with_listing(self):
        with pytest.raises(WorkloadError, match="valid parameters"):
            scenario("counter", params={"bogus": 1})

    def test_mistyped_param_rejected(self):
        with pytest.raises(WorkloadError, match="expects int"):
            scenario("counter", params={"increments": "ten"})

    def test_unknown_scale_rejected(self):
        with pytest.raises(WorkloadError, match="unknown scale"):
            scenario("counter", scale="galactic")

    def test_unknown_cm_rejected(self):
        with pytest.raises(ConfigError, match="unknown contention manager"):
            scenario("counter", cm="psychic")

    def test_bad_system_key_rejected(self):
        with pytest.raises(WorkloadError, match="unknown system override"):
            scenario("counter", system={"memory.lattency": 10})
        with pytest.raises(WorkloadError, match="unknown system override"):
            scenario("counter", system={"turbo": True})

    def test_shadowed_system_key_rejected(self):
        with pytest.raises(WorkloadError, match="shadows the spec field"):
            scenario("counter", system={"gating.w0": 4})
        with pytest.raises(WorkloadError, match="shadows the spec field"):
            scenario("counter", system={"num_procs": 8})

    def test_whole_section_override_rejected(self):
        with pytest.raises(WorkloadError, match="whole config section"):
            scenario("counter", system={"memory": {}})

    def test_bad_config_value_fails_validation(self):
        with pytest.raises(ConfigError):
            scenario("counter", system={"memory.latency": -5})

    def test_mistyped_first_class_fields_rejected(self):
        with pytest.raises(WorkloadError, match="expects an integer"):
            ScenarioSpec.from_dict({"workload": "counter", "threads": "4"})
        with pytest.raises(WorkloadError, match="expects a boolean"):
            ScenarioSpec.from_dict({"workload": "counter",
                                    "gating": "false"})
        with pytest.raises(WorkloadError, match="expects an integer"):
            ScenarioSpec.from_dict({"workload": "counter", "w0": 8.5})
        with pytest.raises(WorkloadError, match="expects an integer"):
            ScenarioSpec.from_dict({"workload": "counter", "seed": True})
        with pytest.raises(WorkloadError, match="expects a string"):
            ScenarioSpec.from_dict({"workload": "counter", "cm": 3})

    def test_from_dict_rejects_unknown_fields(self):
        data = scenario("counter").to_dict()
        data["frobnicate"] = 1
        with pytest.raises(WorkloadError, match="unknown scenario field"):
            ScenarioSpec.from_dict(data)

    def test_from_json_rejects_garbage(self):
        with pytest.raises(WorkloadError, match="invalid scenario JSON"):
            ScenarioSpec.from_json("{nope")
        with pytest.raises(WorkloadError, match="must be an object"):
            ScenarioSpec.from_json("[1,2]")

    def test_lowering_matches_manual_job(self):
        from repro.exec.jobs import RunJob
        from repro.power.model import PowerModel

        spec = scenario("bank", scale="tiny", threads=4, seed=5,
                        params={"accounts": 8})
        model = PowerModel.derive()
        manual = RunJob(
            WorkloadSpec("bank", "tiny", 5, (("accounts", 8),)),
            SystemConfig(num_procs=4, seed=5),
            model,
        )
        assert spec.to_job(power=model).digest == manual.digest

    def test_ungated_w0_shares_job_digest(self):
        base = scenario("counter", scale="tiny", gating=False)
        assert base.digest != base.with_updates(w0=32).digest  # scenario ids differ
        assert base.to_job().digest == base.with_updates(w0=32).to_job().digest

    def test_from_workload_config_round_trip(self):
        import dataclasses

        config = dataclasses.replace(
            SystemConfig(num_procs=8, seed=3),
            num_dirs=4,
            memory=dataclasses.replace(SystemConfig().memory, latency=55),
        )
        wspec = WorkloadSpec("intruder", "tiny", 3, (("flows", 6),))
        spec = ScenarioSpec.from_workload_config(wspec, config)
        assert spec.system_config() == config
        assert spec.workload_spec() == wspec

    def test_from_workload_config_differing_seed(self):
        config = SystemConfig(num_procs=2, seed=9)
        wspec = WorkloadSpec("counter", "tiny", 4)
        spec = ScenarioSpec.from_workload_config(wspec, config)
        assert spec.seed == 4
        assert spec.system_config().seed == 9


class TestScenarioSuite:
    def test_expansion_order_and_size(self):
        grid = suite(
            "test", scenario("counter", scale="tiny"),
            axes={"gating": (False, True), "w0": (2, 8)},
        )
        assert grid.size == 4
        specs = grid.expand()
        assert [(s.gating, s.w0) for s in specs] == [
            (False, 2), (False, 8), (True, 2), (True, 8),
        ]

    def test_bare_axis_is_a_workload_param(self):
        grid = suite(
            "test", scenario("bank", scale="tiny"),
            axes={"accounts": (4, 64)},
        )
        specs = grid.expand()
        assert [dict(s.params)["accounts"] for s in specs] == [4, 64]

    def test_params_prefix_axis(self):
        grid = suite(
            "test", scenario("bank", scale="tiny"),
            axes={"params.accounts": (4, 64)},
        )
        assert [dict(s.params)["accounts"] for s in grid.expand()] == [4, 64]

    def test_system_axis(self):
        grid = suite(
            "test", scenario("counter", scale="tiny"),
            axes={"system.memory.latency": (50, 100)},
        )
        assert [
            s.system_config().memory.latency for s in grid.expand()
        ] == [50, 100]

    def test_typo_axis_rejected_at_expansion(self):
        grid = suite(
            "test", scenario("counter", scale="tiny"),
            axes={"threds": (2, 4)},
        )
        with pytest.raises(WorkloadError, match="valid parameters"):
            grid.expand()

    def test_workload_axis_revalidates_params(self):
        # a param valid for the base workload but not for a swept one
        grid = suite(
            "test", scenario("bank", scale="tiny", params={"accounts": 8}),
            axes={"workload": ("bank", "counter")},
        )
        with pytest.raises(WorkloadError, match="unknown parameter"):
            grid.expand()

    def test_duplicate_axis_rejected(self):
        with pytest.raises(WorkloadError, match="duplicate axis"):
            ScenarioSuite(
                name="dup", base=scenario("counter"),
                axes=(("w0", (1, 2)), ("w0", (4,))),
            )

    def test_empty_axis_rejected(self):
        with pytest.raises(WorkloadError, match="no values"):
            suite("empty", scenario("counter"), axes={"w0": ()})

    def test_from_dict_accepts_mapping_axes(self):
        grid = ScenarioSuite.from_dict({
            "base": {"workload": "counter", "scale": "tiny"},
            "axes": {"w0": [2, 8]},
        })
        assert grid.axes == (("w0", (2, 8)),)
        assert [s.w0 for s in grid.expand()] == [2, 8]

    def test_from_dict_rejects_malformed_axes(self):
        base = {"workload": "counter", "scale": "tiny"}
        with pytest.raises(WorkloadError, match=r"\[name, values\] pairs"):
            ScenarioSuite.from_dict({"base": base, "axes": ["w0"]})
        with pytest.raises(WorkloadError, match="values must be a list"):
            ScenarioSuite.from_dict({"base": base, "axes": [["w0", 8]]})
        with pytest.raises(WorkloadError, match="axis name must be a string"):
            ScenarioSuite.from_dict({"base": base, "axes": [[3, [1]]]})
        with pytest.raises(WorkloadError, match="mapping or a list"):
            ScenarioSuite.from_dict({"base": base, "axes": "w0"})

    def test_json_round_trip(self):
        grid = suite(
            "rt", scenario("counter", scale="tiny"),
            axes={"gating": (False, True), "w0": (2, 8)},
            description="round trip",
        )
        restored = ScenarioSuite.from_json(grid.to_json())
        assert restored.name == grid.name
        assert restored.axes == grid.axes
        assert [s.digest for s in restored.expand()] == [
            s.digest for s in grid.expand()
        ]


class TestRunner:
    def test_run_specs_orders_results(self):
        specs = [
            scenario("counter", scale="tiny", threads=2, gating=False),
            scenario("counter", scale="tiny", threads=2, gating=True),
        ]
        results = run_specs(specs, executor=Executor())
        assert [r.spec for r in results] == specs
        assert all(r.result.commits > 0 for r in results)

    def test_suite_through_cache_zero_reruns(self, tmp_path):
        grid = get_suite("smoke")
        first = run_suite(grid, executor=Executor(store=ResultStore(tmp_path)))
        assert first.report.executed == 3  # 4 scenarios, 1 deduplicated
        second = run_suite(grid, executor=Executor(store=ResultStore(tmp_path)))
        assert second.report.executed == 0
        assert second.report.cache_hits == 3
        assert [r.result for r in first.results] == [
            r.result for r in second.results
        ]

    def test_parallel_matches_serial(self, tmp_path):
        grid = get_suite("smoke")
        serial = run_suite(grid, executor=Executor(jobs=1))
        parallel = run_suite(grid, executor=Executor(jobs=2))
        assert [r.result for r in serial.results] == [
            r.result for r in parallel.results
        ]

    def test_paired_rows_cover_gated_specs(self):
        outcome = run_suite(get_suite("smoke"), executor=Executor())
        paired = outcome.paired_rows()
        gated = [r for r in outcome.results if r.spec.gating]
        assert len(paired) == len(gated)
        for row in paired:
            assert row[3] > 0  # speed-up factor present

    def test_rows_shape(self):
        outcome = run_suite(get_suite("smoke"), executor=Executor())
        rows = outcome.rows()
        assert len(rows) == 4
        assert all(len(row) == len(outcome.ROW_HEADERS) for row in rows)


class TestBuiltinSuites:
    def test_registry_contents(self):
        names = available_suites()
        for expected in ("paper-fig7", "paper-eval", "smoke",
                         "stamp-extended", "cm-shootout"):
            assert expected in names

    def test_unknown_suite(self):
        with pytest.raises(WorkloadError, match="unknown suite"):
            get_suite("paper-fig8")

    def test_every_builtin_expands_and_validates(self):
        for name in available_suites():
            grid = get_suite(name, scale="tiny")
            specs = grid.expand()
            assert len(specs) == grid.size

    def test_fig7_grid_shape(self):
        grid = get_suite("paper-fig7", scale="tiny")
        specs = grid.expand()
        assert len(specs) == 108  # 3 apps x 3 procs x 2 modes x 6 W0
        assert {s.workload for s in specs} == set(PAPER_APPS)
        # the exec layer collapses the grid to one baseline + 6 gated
        # runs per (app, procs) point
        assert len({s.to_job().digest for s in specs}) == 63

    def test_stamp_extended_covers_new_apps(self):
        specs = get_suite("stamp-extended", scale="tiny").expand()
        assert {s.workload for s in specs} == set(STAMP_APPS)

    def test_scale_override(self):
        assert all(
            s.scale == "medium"
            for s in get_suite("smoke", scale="medium").expand()
        )

    def test_eval_suite_matches_evaluation_suite_grid(self):
        from repro.harness.experiments import EvaluationSuite

        harness_suite = EvaluationSuite(scale="tiny", procs=(2,), seed=4)
        declarative = harness_suite.scenario_suite()
        specs = declarative.expand()
        assert len(specs) == len(PAPER_APPS) * 1 * 2
        harness_suite.run_all()
        for app in PAPER_APPS:
            assert harness_suite.comparison(app, 2).speedup > 0


class TestSpecJson:
    """The docs/scenarios.md contract: plain JSON in, identical spec out."""

    def test_minimal_document(self):
        spec = ScenarioSpec.from_json('{"workload": "counter"}')
        assert spec.scale == "small" and spec.threads == 4
        assert spec.gating is True and spec.cm == "gating-aware"

    def test_full_document(self):
        text = json.dumps({
            "workload": "labyrinth",
            "scale": "tiny",
            "threads": 8,
            "seed": 11,
            "params": {"paths_per_thread": 2},
            "gating": False,
            "w0": 4,
            "cm": "momentum",
            "system": {"directory.latency": 12},
        })
        spec = ScenarioSpec.from_json(text)
        assert spec.workload == "labyrinth"
        assert dict(spec.params) == {"paths_per_thread": 2}
        assert spec.system_config().directory.latency == 12
        assert spec.system_config().gating.contention_manager == "momentum"
