"""Processor execution semantics: timing, transactions, conflicts.

These tests build tiny deterministic programs directly on the
:class:`~repro.htm.machine.Machine` (no workload layer) and assert on
functional outcomes, statistics, and protocol-visible behaviour.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.config import GatingConfig, SystemConfig
from repro.errors import DeadlockError, SimulationError, WorkloadError
from repro.htm.machine import Machine
from repro.htm.ops import BarrierOp, Compute, Load, Store, TxOp
from repro.htm.program import ThreadProgram
from repro.power.states import ProcState

A = 0x1000  # line 64, homed at dir 0 with 4 dirs... (64 % 4 == 0)
B = 0x1040  # next line
C = 0x2000


def run_machine(config, program_fns, **kwargs):
    programs = [ThreadProgram(fn, f"t{i}") for i, fn in enumerate(program_fns)]
    machine = Machine(config, programs, **kwargs)
    result = machine.run()
    return machine, result


def single(config, fn, **kwargs):
    return run_machine(config, [fn], **kwargs)


def cfg1(**kw):
    return SystemConfig(num_procs=1, seed=0, gating=GatingConfig(enabled=False), **kw)


class TestPlainExecution:
    def test_compute_advances_time(self):
        def program(ctx):
            yield Compute(100)

        _, result = single(cfg1(), program)
        assert result.end_cycle == 100

    def test_plain_store_then_load(self):
        def program(ctx):
            yield Store(A, 77)
            value = yield Load(A)
            assert value == 77

        machine, _ = single(cfg1(), program)
        assert machine.memory.read_word(A) == 77

    def test_load_miss_cost_exceeds_hit_cost(self):
        def program(ctx):
            yield Load(A)          # cold miss
            yield Load(A)          # hit

        machine, result = single(cfg1(), program)
        c = result.counters()
        assert c["proc0.cache.misses"] == 1
        assert c["proc0.cache.hits"] == 1
        # miss must pay bus + directory + memory + bus; hit just 1 cycle
        assert result.end_cycle > 100

    def test_initial_memory_image(self):
        def program(ctx):
            value = yield Load(A)
            assert value == 5

        single(cfg1(), program, initial_memory={A: 5})


class TestTransactionBasics:
    def test_tx_commits_and_result_delivered(self):
        seen = []

        def body(tx):
            value = yield Load(A)
            yield Store(A, value + 1)
            tx.set_result(value + 1)

        def program(ctx):
            result = yield TxOp(body, site="inc")
            seen.append(result)

        machine, result = single(cfg1(), program, initial_memory={A: 10})
        assert machine.memory.read_word(A) == 11
        assert seen == [11]
        assert result.counters()["tx.commits"] == 1

    def test_store_forwarding_within_tx(self):
        def body(tx):
            yield Store(A, 5)
            value = yield Load(A)
            assert value == 5
            tx.set_result(value)

        def program(ctx):
            yield TxOp(body, site="fwd")

        machine, _ = single(cfg1(), program)
        assert machine.memory.read_word(A) == 5

    def test_speculative_store_invisible_until_commit(self):
        """Lazy versioning: memory must not change before commit."""
        observations = []

        def body(tx):
            yield Store(A, 99)
            observations.append(("during", tx))

        def program(ctx):
            yield TxOp(body, site="w")

        machine, _ = single(cfg1(), program)
        # After the run it IS committed:
        assert machine.memory.read_word(A) == 99

    def test_read_only_tx_commits(self):
        def body(tx):
            value = yield Load(A)
            tx.set_result(value)

        def program(ctx):
            yield TxOp(body, site="ro")

        _, result = single(cfg1(), program, initial_memory={A: 3})
        assert result.counters()["tx.commits"] == 1

    def test_empty_tx_commits(self):
        def body(tx):
            return
            yield  # pragma: no cover - makes it a generator

        def program(ctx):
            yield TxOp(body, site="empty")

        _, result = single(cfg1(), program)
        assert result.counters()["tx.commits"] == 1

    def test_nested_tx_rejected(self):
        def inner(tx):
            yield Compute(1)

        def body(tx):
            yield TxOp(inner, site="inner")

        def program(ctx):
            yield TxOp(body, site="outer")

        with pytest.raises(WorkloadError, match="flat"):
            single(cfg1(), program)

    def test_barrier_inside_tx_rejected(self):
        def body(tx):
            yield BarrierOp("nope")

        def program(ctx):
            yield TxOp(body, site="b")

        with pytest.raises(WorkloadError):
            single(cfg1(), program)

    def test_non_generator_body_rejected(self):
        def program(ctx):
            yield TxOp(lambda tx: 42, site="bad")

        with pytest.raises(WorkloadError, match="generator"):
            single(cfg1(), program)

    def test_parallel_window_measured_between_txs(self):
        def body(tx):
            yield Compute(10)

        def program(ctx):
            yield Compute(500)           # excluded: before first tx
            yield TxOp(body, site="x")
            yield Compute(300)           # excluded: after last commit

        _, result = single(cfg1(), program)
        assert result.parallel_start == 500
        assert result.parallel_end < result.end_cycle
        assert result.end_cycle >= 800


class TestConflictSemantics:
    """Two-processor conflict scenarios on deterministic schedules."""

    @staticmethod
    def conflict_config():
        return SystemConfig(num_procs=2, seed=0, gating=GatingConfig(enabled=False))

    def test_read_write_conflict_aborts_reader(self):
        def writer(ctx):
            def body(tx):
                yield Store(A, 1)

            yield TxOp(body, site="w")

        def reader(ctx):
            def body(tx):
                value = yield Load(A)
                yield Compute(2000)  # hold the read-set open past w's commit
                tx.set_result(value)

            yield TxOp(body, site="r")

        machine, result = run_machine(self.conflict_config(), [reader, writer])
        c = result.counters()
        assert c["tx.commits"] == 2
        assert c["tx.aborts.conflict"] >= 1

    def test_blind_writers_do_not_abort_each_other(self):
        def make(val):
            def program(ctx):
                def body(tx):
                    yield Store(A, val)   # blind write, no read
                    yield Compute(500)

                yield TxOp(body, site=f"w{val}")

            return program

        machine, result = run_machine(self.conflict_config(), [make(1), make(2)])
        c = result.counters()
        assert c["tx.commits"] == 2
        assert c.get("tx.aborts.conflict", 0) == 0
        assert machine.memory.read_word(A) in (1, 2)

    def test_disjoint_lines_never_conflict(self):
        def make(addr):
            def program(ctx):
                def body(tx):
                    value = yield Load(addr)
                    yield Compute(300)
                    yield Store(addr, value + 1)

                for _ in range(5):
                    yield TxOp(body, site="inc")

            return program

        machine, result = run_machine(self.conflict_config(), [make(A), make(C)])
        assert result.counters().get("tx.aborts.conflict", 0) == 0
        assert machine.memory.read_word(A) == 5
        assert machine.memory.read_word(C) == 5

    def test_false_sharing_on_one_line_conflicts(self):
        """Different words, same 64-byte line: line-granular detection."""
        word0, word1 = A, A + 8

        def make(addr):
            def program(ctx):
                def body(tx):
                    value = yield Load(addr)
                    yield Compute(400)
                    yield Store(addr, value + 1)

                for _ in range(4):
                    yield TxOp(body, site="fs")

            return program

        _, result = run_machine(self.conflict_config(), [make(word0), make(word1)])
        assert result.counters()["tx.aborts.conflict"] >= 1

    def test_lost_update_prevented(self):
        """The canonical atomicity test: concurrent increments all land."""
        def make():
            def program(ctx):
                def body(tx):
                    value = yield Load(A)
                    yield Compute(7)
                    yield Store(A, value + 1)

                for _ in range(20):
                    yield TxOp(body, site="inc")

            return program

        machine, _ = run_machine(self.conflict_config(), [make(), make()])
        assert machine.memory.read_word(A) == 40

    def test_attempts_equal_commits_plus_aborts(self):
        def make():
            def program(ctx):
                def body(tx):
                    value = yield Load(A)
                    yield Store(A, value + 1)

                for _ in range(10):
                    yield TxOp(body, site="inc")

            return program

        _, result = run_machine(self.conflict_config(), [make(), make()])
        c = result.counters()
        aborts = c.get("tx.aborts.conflict", 0) + c.get("tx.aborts.self", 0)
        assert c["tx.attempts"] == c["tx.commits"] + aborts


class TestBarriers:
    def test_barrier_synchronizes(self):
        arrivals = {}

        def make(pid, delay):
            def program(ctx):
                yield Compute(delay)
                yield BarrierOp("sync")
                arrivals[pid] = True
                yield Compute(1)

            return program

        config = SystemConfig(num_procs=2, seed=0, gating=GatingConfig(enabled=False))
        _, result = run_machine(config, [make(0, 10), make(1, 500)])
        assert arrivals == {0: True, 1: True}
        # both resumed only after the slow thread: end >= 501
        assert result.end_cycle >= 501

    def test_missing_barrier_participant_deadlocks(self):
        def waiter(ctx):
            yield BarrierOp("sync")

        def absent(ctx):
            yield Compute(5)  # never reaches the barrier

        config = SystemConfig(num_procs=2, seed=0, gating=GatingConfig(enabled=False))
        with pytest.raises(DeadlockError, match="barrier"):
            run_machine(config, [waiter, absent])

    def test_barrier_reusable_in_loop(self):
        def make():
            def program(ctx):
                for round_ in range(3):
                    yield Compute(10)
                    yield BarrierOp("loop")

            return program

        config = SystemConfig(num_procs=2, seed=0, gating=GatingConfig(enabled=False))
        run_machine(config, [make(), make()])  # must not deadlock


class TestMachineGuards:
    def test_max_cycles(self):
        def program(ctx):
            yield Compute(10_000)

        config = dataclasses.replace(cfg1(), max_cycles=100)
        with pytest.raises(SimulationError, match="max_cycles"):
            single(config, program)

    def test_program_count_mismatch(self):
        from repro.errors import ConfigError

        def program(ctx):
            yield Compute(1)

        with pytest.raises(ConfigError, match="one-to-one"):
            run_machine(SystemConfig(num_procs=2), [program])

    def test_timeline_states_recorded(self):
        def body(tx):
            yield Load(A)

        def program(ctx):
            yield Load(C)  # plain miss
            yield TxOp(body, site="t")

        machine, result = single(cfg1(), program)
        states = {seg.state for seg in result.timelines[0].segments()}
        assert ProcState.RUN in states
        assert ProcState.MISS in states
        assert ProcState.COMMIT in states
