"""Transaction state: store buffer, forwarding, conflicts."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import CacheOverflowError
from repro.htm.transaction import STORE_FIFO_DEPTH, TxHandle, TxState, TxStatus


def make_tx() -> TxState:
    handle = TxHandle(0, 4, "site", 1, np.random.default_rng(0))
    return TxState(0, "site", 0, 1, 0, handle)


class TestStoreBuffer:
    def test_buffer_and_forward(self):
        tx = make_tx()
        tx.buffer_store(64, 42, line=1)
        assert tx.forwarded_value(64) == 42
        assert tx.forwarded_value(72) is None
        assert tx.write_lines == {1}

    def test_overwrite_same_word(self):
        tx = make_tx()
        tx.buffer_store(64, 1, line=1)
        tx.buffer_store(64, 2, line=1)
        assert tx.forwarded_value(64) == 2
        assert len(tx.writes) == 1

    def test_fifo_depth_enforced(self):
        """The paper's store-address FIFO holds 1024 word addresses."""
        tx = make_tx()
        for i in range(STORE_FIFO_DEPTH):
            tx.buffer_store(i * 8, i, line=i // 8)
        with pytest.raises(CacheOverflowError):
            tx.buffer_store(STORE_FIFO_DEPTH * 8, 0, line=STORE_FIFO_DEPTH // 8)

    def test_rewrites_do_not_consume_fifo_entries(self):
        tx = make_tx()
        for _ in range(STORE_FIFO_DEPTH + 10):
            tx.buffer_store(0, 1, line=0)  # same address each time
        assert len(tx.writes) == 1


class TestConflicts:
    def test_read_set_conflicts(self):
        tx = make_tx()
        tx.read_lines.add(5)
        assert tx.conflicts_with([5])
        assert tx.conflicts_with([4, 5, 6])
        assert not tx.conflicts_with([4, 6])

    def test_blind_writes_do_not_conflict(self):
        """Committed writes to lines we only *wrote* must not abort us
        (word-granularity merge in the store buffer)."""
        tx = make_tx()
        tx.buffer_store(64, 1, line=1)
        assert not tx.conflicts_with([1])

    def test_footprint(self):
        tx = make_tx()
        tx.read_lines.add(1)
        tx.buffer_store(256, 9, line=4)
        assert tx.footprint_lines == {1, 4}


class TestLifecycle:
    def test_initial_status(self):
        tx = make_tx()
        assert tx.status is TxStatus.RUNNING
        assert tx.live

    def test_committed_not_live(self):
        tx = make_tx()
        tx.status = TxStatus.COMMITTED
        assert not tx.live

    def test_handle_result(self):
        handle = TxHandle(2, 8, "s", 3, np.random.default_rng(0))
        assert handle.result is None
        handle.set_result(("a", 1))
        assert handle.result == ("a", 1)
        assert handle.proc_id == 2
        assert handle.num_threads == 8
        assert handle.attempt == 3
