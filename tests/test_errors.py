"""Exception hierarchy contracts."""

from __future__ import annotations

import pytest

from repro import errors


def test_all_derive_from_repro_error():
    for name in errors.__all__:
        exc = getattr(errors, name)
        assert issubclass(exc, errors.ReproError)


def test_config_error_is_value_error():
    assert issubclass(errors.ConfigError, ValueError)


def test_simulation_errors_are_runtime_errors():
    assert issubclass(errors.SimulationError, RuntimeError)
    assert issubclass(errors.DeadlockError, errors.SimulationError)
    assert issubclass(errors.ProtocolError, errors.SimulationError)
    assert issubclass(errors.CacheOverflowError, errors.SimulationError)


def test_catchable_as_base():
    with pytest.raises(errors.ReproError):
        raise errors.DeadlockError("stuck")
