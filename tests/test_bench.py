"""The repro.bench subsystem: timing discipline, benches, reports, CLI."""

from __future__ import annotations

import json

import pytest

from repro.bench import (
    available_benchmarks,
    bench_payload,
    compare_payloads,
    load_bench_json,
    run_benchmarks,
    run_timed,
    write_bench_json,
)
from repro.bench.core import BenchResult
from repro.cli import main
from repro.errors import BenchmarkError


class TestRunTimed:
    def test_warmup_and_repeats_discipline(self):
        calls = []

        def fn():
            calls.append(1)
            return 10

        result = run_timed(fn, name="t", unit="ops", repeats=3, warmup=2)
        assert len(calls) == 5  # 2 warmup + 3 timed
        assert result.repeats == 3
        assert result.warmup == 2
        assert result.units_per_repeat == 10
        assert result.best_seconds <= result.mean_seconds + 1e-12
        assert result.units_per_second > 0

    def test_rejects_variable_work(self):
        counts = iter([5, 6, 7])
        with pytest.raises(BenchmarkError, match="fixed work"):
            run_timed(lambda: next(counts), name="t", unit="ops",
                      repeats=3, warmup=0)

    def test_rejects_bad_unit_count(self):
        with pytest.raises(BenchmarkError, match="positive unit count"):
            run_timed(lambda: 0, name="t", unit="ops", repeats=1, warmup=0)

    def test_rejects_bad_config(self):
        with pytest.raises(BenchmarkError):
            run_timed(lambda: 1, name="t", unit="ops", repeats=0)
        with pytest.raises(BenchmarkError):
            run_timed(lambda: 1, name="t", unit="ops", repeats=1, warmup=-1)

    def test_result_round_trips(self):
        result = run_timed(lambda: 7, name="t", unit="ops", repeats=2,
                           warmup=0, meta={"k": 1})
        assert BenchResult.from_dict(result.to_dict()) == result


class TestBenchmarks:
    def test_registry_names(self):
        names = available_benchmarks()
        assert "bench_engine" in names
        assert "bench_stats" in names
        assert "bench_e2e_suite" in names

    def test_unknown_name_rejected(self):
        with pytest.raises(BenchmarkError, match="unknown benchmark"):
            run_benchmarks(names=["bench_nope"], check=True)

    def test_check_mode_runs_everything(self):
        results = run_benchmarks(check=True, repeats=1, warmup=0)
        assert [r.name for r in results] == available_benchmarks()
        for r in results:
            assert r.units_per_second > 0
            assert r.meta.get("check") is True

    def test_e2e_suite_counts_cold_executions(self):
        (result,) = run_benchmarks(
            names=["bench_e2e_suite"], check=True
        )
        # the smoke suite dedups 4 scenarios to 3 unique jobs, and the
        # cold-cache contract means all 3 actually execute
        assert result.units_per_repeat == 3
        assert result.unit == "sims"


class TestReports:
    def test_payload_and_comparison(self, tmp_path):
        results = run_benchmarks(names=["bench_stats"], check=True,
                                 repeats=1, warmup=0)
        before = bench_payload(results, label="before")
        after = bench_payload(results, label="after")
        comparison = compare_payloads(before, after)
        assert comparison["kind"] == "comparison"
        assert comparison["speedup"]["bench_stats"] == pytest.approx(1.0)

        path = write_bench_json(tmp_path / "BENCH_test.json", comparison)
        loaded = load_bench_json(path)
        assert loaded["speedup"] == comparison["speedup"]

    def test_comparison_rejects_non_bench(self):
        with pytest.raises(BenchmarkError, match="not a bench session"):
            compare_payloads({"kind": "comparison"}, {"kind": "bench"})

    def test_load_rejects_garbage(self, tmp_path):
        path = tmp_path / "x.json"
        path.write_text("not json")
        with pytest.raises(BenchmarkError):
            load_bench_json(path)


class TestBenchCli:
    def test_list(self, capsys):
        assert main(["bench", "--list"]) == 0
        out = capsys.readouterr().out
        assert "bench_engine" in out

    def test_check_run_writes_report(self, capsys, tmp_path):
        out_path = tmp_path / "BENCH_ci.json"
        code = main([
            "bench", "--check", "--bench", "bench_stats",
            "--repeats", "1", "--warmup", "0", "--out", str(out_path),
            "--label", "ci",
        ])
        assert code == 0
        payload = json.loads(out_path.read_text())
        assert payload["kind"] == "bench"
        assert payload["label"] == "ci"
        assert "bench_stats" in payload["benchmarks"]
        assert "bench_stats" in capsys.readouterr().out

    def test_baseline_comparison(self, capsys, tmp_path):
        base = tmp_path / "base.json"
        out_path = tmp_path / "BENCH_cmp.json"
        assert main([
            "bench", "--check", "--bench", "bench_stats",
            "--repeats", "1", "--warmup", "0", "--out", str(base),
        ]) == 0
        assert main([
            "bench", "--check", "--bench", "bench_stats",
            "--repeats", "1", "--warmup", "0",
            "--baseline", str(base), "--out", str(out_path),
        ]) == 0
        payload = json.loads(out_path.read_text())
        assert payload["kind"] == "comparison"
        assert "bench_stats" in payload["speedup"]
        assert "vs baseline" in capsys.readouterr().out


class TestRegressionGate:
    """`repro bench --compare` — the CI gate against a committed baseline."""

    @staticmethod
    def _payload(rates: dict[str, float]) -> dict:
        return {
            "schema": 1,
            "kind": "bench",
            "benchmarks": {
                name: {"name": name, "unit": "units",
                       "units_per_second": rate}
                for name, rate in rates.items()
            },
        }

    def test_pass_within_threshold(self):
        from repro.bench import regression_failures

        baseline = self._payload({"a": 100.0, "b": 200.0})
        current = self._payload({"a": 80.0, "b": 210.0})
        assert regression_failures(baseline, current,
                                   max_regression_pct=25.0) == []

    def test_fail_beyond_threshold(self):
        from repro.bench import regression_failures

        baseline = self._payload({"a": 100.0, "b": 200.0})
        current = self._payload({"a": 70.0, "b": 210.0})
        failures = regression_failures(baseline, current,
                                       max_regression_pct=25.0)
        assert len(failures) == 1
        assert failures[0].startswith("a:")
        assert "0.70x" in failures[0]

    def test_new_and_retired_benchmarks_are_ignored(self):
        from repro.bench import regression_failures

        baseline = self._payload({"a": 100.0, "gone": 50.0})
        current = self._payload({"a": 100.0, "new": 1.0})
        assert regression_failures(baseline, current) == []

    def test_threshold_validation(self):
        from repro.bench import regression_failures

        with pytest.raises(BenchmarkError, match="max_regression_pct"):
            regression_failures(self._payload({}), self._payload({}),
                                max_regression_pct=100.0)

    def test_cli_gate_passes_against_own_baseline(self, capsys, tmp_path):
        base = tmp_path / "base.json"
        assert main([
            "bench", "--check", "--bench", "bench_stats",
            "--repeats", "1", "--warmup", "0", "--out", str(base),
        ]) == 0
        capsys.readouterr()
        # generous threshold: the same bench re-run cannot drop by 95%
        assert main([
            "bench", "--check", "--bench", "bench_stats",
            "--repeats", "1", "--warmup", "0",
            "--compare", str(base), "--max-regression", "95",
        ]) == 0
        assert "bench gate OK" in capsys.readouterr().out

    def test_cli_gate_fails_on_regression(self, capsys, tmp_path):
        import json as _json

        base = tmp_path / "base.json"
        assert main([
            "bench", "--check", "--bench", "bench_stats",
            "--repeats", "1", "--warmup", "0", "--out", str(base),
        ]) == 0
        # forge an impossible baseline: current run must look regressed
        payload = _json.loads(base.read_text())
        for entry in payload["benchmarks"].values():
            entry["units_per_second"] *= 1e9
        base.write_text(_json.dumps(payload))
        capsys.readouterr()
        code = main([
            "bench", "--check", "--bench", "bench_stats",
            "--repeats", "1", "--warmup", "0", "--compare", str(base),
        ])
        assert code == 1
        err = capsys.readouterr().err
        assert "REGRESSION bench_stats" in err
        assert "bench gate FAILED" in err


class TestBaselineSelection:
    """Bare `--compare`: newest committed session wins, baseline falls back."""

    @staticmethod
    def _session(name: str, created: float, check: bool) -> dict:
        return {
            "schema": 1,
            "kind": "bench",
            "label": name,
            "created": created,
            "benchmarks": {
                "bench_stats": {
                    "name": "bench_stats", "unit": "bumps",
                    "units_per_second": 1.0,
                    "meta": {"check": check},
                },
            },
        }

    def test_session_check_mode(self):
        from repro.bench import session_check_mode

        assert session_check_mode(self._session("a", 1.0, check=True))
        assert not session_check_mode(self._session("a", 1.0, check=False))
        assert not session_check_mode({"kind": "bench", "benchmarks": {}})

    def test_newest_matching_session_wins(self, tmp_path):
        from repro.bench import find_baseline, write_bench_json

        write_bench_json(tmp_path / "BENCH_baseline.json",
                         self._session("baseline", 5.0, check=True))
        write_bench_json(tmp_path / "BENCH_pr6.json",
                         self._session("pr6", 10.0, check=True))
        write_bench_json(tmp_path / "BENCH_pr7.json",
                         self._session("pr7", 20.0, check=True))
        found = find_baseline(tmp_path, check=True)
        assert found is not None and found.name == "BENCH_pr7.json"

    def test_check_mode_filter_and_baseline_fallback(self, tmp_path):
        from repro.bench import find_baseline, write_bench_json

        write_bench_json(tmp_path / "BENCH_baseline.json",
                         self._session("baseline", 5.0, check=True))
        write_bench_json(tmp_path / "BENCH_full.json",
                         self._session("full", 50.0, check=False))
        # the full-mode session is newest but mode-incompatible
        found = find_baseline(tmp_path, check=True)
        assert found is not None and found.name == "BENCH_baseline.json"
        found_full = find_baseline(tmp_path, check=False)
        assert found_full is not None and found_full.name == "BENCH_full.json"
        # no filter at all: newest session regardless of mode
        found_any = find_baseline(tmp_path, check=None)
        assert found_any is not None and found_any.name == "BENCH_full.json"

    def test_comparison_reports_and_garbage_are_skipped(self, tmp_path):
        import json as _json

        from repro.bench import find_baseline

        (tmp_path / "BENCH_pr3.json").write_text(
            _json.dumps({"schema": 1, "kind": "comparison", "created": 99.0,
                         "speedup": {}})
        )
        (tmp_path / "BENCH_junk.json").write_text("not json")
        assert find_baseline(tmp_path) is None
        from repro.bench import write_bench_json

        write_bench_json(tmp_path / "BENCH_baseline.json",
                         self._session("baseline", 1.0, check=True))
        found = find_baseline(tmp_path)
        assert found is not None and found.name == "BENCH_baseline.json"

    def test_cli_bare_compare_uses_newest_session(self, capsys, tmp_path,
                                                  monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert main([
            "bench", "--check", "--bench", "bench_stats",
            "--repeats", "1", "--warmup", "0",
            "--out", "BENCH_pr_test.json",
        ]) == 0
        capsys.readouterr()
        assert main([
            "bench", "--check", "--bench", "bench_stats",
            "--repeats", "1", "--warmup", "0",
            "--compare", "--max-regression", "95",
        ]) == 0
        captured = capsys.readouterr()
        assert "BENCH_pr_test.json" in captured.err
        assert "bench gate OK" in captured.out

    def test_cli_bare_compare_without_any_baseline_fails(self, capsys,
                                                         tmp_path,
                                                         monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert main([
            "bench", "--check", "--bench", "bench_stats",
            "--repeats", "1", "--warmup", "0", "--compare",
        ]) == 1
        assert "nothing to compare against" in capsys.readouterr().err
