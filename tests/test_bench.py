"""The repro.bench subsystem: timing discipline, benches, reports, CLI."""

from __future__ import annotations

import json

import pytest

from repro.bench import (
    available_benchmarks,
    bench_payload,
    compare_payloads,
    load_bench_json,
    run_benchmarks,
    run_timed,
    write_bench_json,
)
from repro.bench.core import BenchResult
from repro.cli import main
from repro.errors import BenchmarkError


class TestRunTimed:
    def test_warmup_and_repeats_discipline(self):
        calls = []

        def fn():
            calls.append(1)
            return 10

        result = run_timed(fn, name="t", unit="ops", repeats=3, warmup=2)
        assert len(calls) == 5  # 2 warmup + 3 timed
        assert result.repeats == 3
        assert result.warmup == 2
        assert result.units_per_repeat == 10
        assert result.best_seconds <= result.mean_seconds + 1e-12
        assert result.units_per_second > 0

    def test_rejects_variable_work(self):
        counts = iter([5, 6, 7])
        with pytest.raises(BenchmarkError, match="fixed work"):
            run_timed(lambda: next(counts), name="t", unit="ops",
                      repeats=3, warmup=0)

    def test_rejects_bad_unit_count(self):
        with pytest.raises(BenchmarkError, match="positive unit count"):
            run_timed(lambda: 0, name="t", unit="ops", repeats=1, warmup=0)

    def test_rejects_bad_config(self):
        with pytest.raises(BenchmarkError):
            run_timed(lambda: 1, name="t", unit="ops", repeats=0)
        with pytest.raises(BenchmarkError):
            run_timed(lambda: 1, name="t", unit="ops", repeats=1, warmup=-1)

    def test_result_round_trips(self):
        result = run_timed(lambda: 7, name="t", unit="ops", repeats=2,
                           warmup=0, meta={"k": 1})
        assert BenchResult.from_dict(result.to_dict()) == result


class TestBenchmarks:
    def test_registry_names(self):
        names = available_benchmarks()
        assert "bench_engine" in names
        assert "bench_stats" in names
        assert "bench_e2e_suite" in names

    def test_unknown_name_rejected(self):
        with pytest.raises(BenchmarkError, match="unknown benchmark"):
            run_benchmarks(names=["bench_nope"], check=True)

    def test_check_mode_runs_everything(self):
        results = run_benchmarks(check=True, repeats=1, warmup=0)
        assert [r.name for r in results] == available_benchmarks()
        for r in results:
            assert r.units_per_second > 0
            assert r.meta.get("check") is True

    def test_e2e_suite_counts_cold_executions(self):
        (result,) = run_benchmarks(
            names=["bench_e2e_suite"], check=True
        )
        # the smoke suite dedups 4 scenarios to 3 unique jobs, and the
        # cold-cache contract means all 3 actually execute
        assert result.units_per_repeat == 3
        assert result.unit == "sims"


class TestReports:
    def test_payload_and_comparison(self, tmp_path):
        results = run_benchmarks(names=["bench_stats"], check=True,
                                 repeats=1, warmup=0)
        before = bench_payload(results, label="before")
        after = bench_payload(results, label="after")
        comparison = compare_payloads(before, after)
        assert comparison["kind"] == "comparison"
        assert comparison["speedup"]["bench_stats"] == pytest.approx(1.0)

        path = write_bench_json(tmp_path / "BENCH_test.json", comparison)
        loaded = load_bench_json(path)
        assert loaded["speedup"] == comparison["speedup"]

    def test_comparison_rejects_non_bench(self):
        with pytest.raises(BenchmarkError, match="not a bench session"):
            compare_payloads({"kind": "comparison"}, {"kind": "bench"})

    def test_load_rejects_garbage(self, tmp_path):
        path = tmp_path / "x.json"
        path.write_text("not json")
        with pytest.raises(BenchmarkError):
            load_bench_json(path)


class TestBenchCli:
    def test_list(self, capsys):
        assert main(["bench", "--list"]) == 0
        out = capsys.readouterr().out
        assert "bench_engine" in out

    def test_check_run_writes_report(self, capsys, tmp_path):
        out_path = tmp_path / "BENCH_ci.json"
        code = main([
            "bench", "--check", "--bench", "bench_stats",
            "--repeats", "1", "--warmup", "0", "--out", str(out_path),
            "--label", "ci",
        ])
        assert code == 0
        payload = json.loads(out_path.read_text())
        assert payload["kind"] == "bench"
        assert payload["label"] == "ci"
        assert "bench_stats" in payload["benchmarks"]
        assert "bench_stats" in capsys.readouterr().out

    def test_baseline_comparison(self, capsys, tmp_path):
        base = tmp_path / "base.json"
        out_path = tmp_path / "BENCH_cmp.json"
        assert main([
            "bench", "--check", "--bench", "bench_stats",
            "--repeats", "1", "--warmup", "0", "--out", str(base),
        ]) == 0
        assert main([
            "bench", "--check", "--bench", "bench_stats",
            "--repeats", "1", "--warmup", "0",
            "--baseline", str(base), "--out", str(out_path),
        ]) == 0
        payload = json.loads(out_path.read_text())
        assert payload["kind"] == "comparison"
        assert "bench_stats" in payload["speedup"]
        assert "vs baseline" in capsys.readouterr().out
