"""Energy accounting: Eqs. (1)–(7) against hand-computed cases and the
direct-integration identity (Invariant 5), property-tested.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import SimulationError
from repro.power.energy import (
    average_power_reduction,
    compute_energy,
    direct_energy,
    energy_from_intervals,
    energy_reduction,
    interval_breakdown,
)
from repro.power.model import PowerModel
from repro.power.states import (
    LOW_POWER_STATES_GATED,
    LOW_POWER_STATES_UNGATED,
    ProcState,
)
from repro.sim.timeline import StateTimeline

MODEL = PowerModel.derive()
R, M, C, G = ProcState.RUN, ProcState.MISS, ProcState.COMMIT, ProcState.GATED


def timeline(changes, end, initial=R):
    tl = StateTimeline(initial)
    for t, s in changes:
        tl.set_state(t, s)
    tl.finalize(end)
    return tl


class TestDirectEnergy:
    def test_all_run(self):
        tls = [timeline([], 100), timeline([], 100)]
        total, by_state = direct_energy(tls, (0, 100), MODEL)
        assert total == pytest.approx(200.0)
        assert by_state[R] == (200, 200.0)

    def test_hand_computed_mix(self):
        # proc0: 40 RUN, 30 MISS, 30 COMMIT; proc1: 50 RUN, 50 GATED
        tls = [
            timeline([(40, M), (70, C)], 100),
            timeline([(50, G)], 100),
        ]
        total, _ = direct_energy(tls, (0, 100), MODEL)
        expected = (40 + 0.32 * 30 + 0.44 * 30) + (50 + 0.20 * 50)
        assert total == pytest.approx(expected)

    def test_window_clipping(self):
        tls = [timeline([(40, M)], 100)]
        total, _ = direct_energy(tls, (30, 50), MODEL)
        assert total == pytest.approx(10 * 1.0 + 10 * 0.32)


class TestIntervalFormulation:
    def test_xi_counts_population(self):
        # two procs, both in MISS over [10, 20): X2 = 10; alone over
        # [20, 30) and [0, 10) respectively: X1 = 20.
        tls = [
            timeline([(10, M), (30, R)], 40),
            timeline([(0, M), (20, R)], 40, initial=M),
        ]
        iv = interval_breakdown(tls, (0, 40), LOW_POWER_STATES_UNGATED)
        assert iv.x[2] == 10
        assert iv.x[1] == 20
        assert iv.alpha(2) == pytest.approx(1.0)  # all-low pop is all miss

    def test_alpha_beta_split(self):
        # proc0 MISS and proc1 COMMIT simultaneously over [0, 10)
        tls = [
            timeline([(10, R)], 20, initial=M),
            timeline([(10, R)], 20, initial=C),
        ]
        iv = interval_breakdown(tls, (0, 20), LOW_POWER_STATES_UNGATED)
        assert iv.x[2] == 10
        assert iv.alpha(2) == pytest.approx(0.5)
        assert iv.beta(2) == pytest.approx(0.5)

    def test_eq1_matches_direct_gated(self):
        tls = [
            timeline([(10, M), (25, G), (60, R)], 100),
            timeline([(30, C), (55, R), (70, G)], 100),
        ]
        iv = interval_breakdown(tls, (0, 100), LOW_POWER_STATES_GATED)
        via_eq1 = energy_from_intervals(iv, MODEL, gated_run=True)
        direct, _ = direct_energy(tls, (0, 100), MODEL)
        assert via_eq1 == pytest.approx(direct)

    def test_eq5_rejects_gated_intervals(self):
        tls = [timeline([(10, G)], 20)]
        iv = interval_breakdown(tls, (0, 20), LOW_POWER_STATES_GATED)
        with pytest.raises(SimulationError, match="gated"):
            energy_from_intervals(iv, MODEL, gated_run=False)


@st.composite
def random_timelines(draw):
    num_procs = draw(st.integers(1, 6))
    end = draw(st.integers(10, 300))
    tls = []
    for _ in range(num_procs):
        n_changes = draw(st.integers(0, 12))
        times = sorted(
            draw(
                st.lists(
                    st.integers(0, end - 1),
                    min_size=n_changes,
                    max_size=n_changes,
                )
            )
        )
        states = draw(
            st.lists(
                st.sampled_from([R, M, C, G]),
                min_size=n_changes,
                max_size=n_changes,
            )
        )
        tls.append(timeline(list(zip(times, states)), end))
    lo = draw(st.integers(0, end - 1))
    hi = draw(st.integers(lo + 1, end))
    return tls, (lo, hi)


@settings(max_examples=60)
@given(random_timelines())
def test_interval_equals_direct_gated(data):
    """Invariant 5: Eq. (1) == direct integration on arbitrary timelines."""
    tls, window = data
    iv = interval_breakdown(tls, window, LOW_POWER_STATES_GATED)
    direct, _ = direct_energy(tls, window, MODEL)
    assert energy_from_intervals(iv, MODEL, gated_run=True) == pytest.approx(direct)


@settings(max_examples=60)
@given(random_timelines())
def test_xi_accounting_is_complete(data):
    """Σ_i X_i · i == total low-power processor-cycles."""
    tls, (lo, hi) = data
    iv = interval_breakdown(tls, (lo, hi), LOW_POWER_STATES_GATED)
    expected = sum(
        sum(
            dur
            for state, dur in tl.durations(lo, hi).items()
            if state in LOW_POWER_STATES_GATED
        )
        for tl in tls
    )
    assert sum(int(iv.x[i]) * i for i in range(len(tls) + 1)) == expected


class TestComputeEnergy:
    def test_cross_check_runs(self):
        tls = [timeline([(10, M), (20, C)], 50)]
        breakdown = compute_energy(tls, (0, 50), MODEL, gated_run=False)
        assert breakdown.total == pytest.approx(breakdown.interval_total)
        assert breakdown.parallel_time == 50
        assert breakdown.state_cycles(M) == 10

    def test_average_power(self):
        tls = [timeline([(50, G)], 100)]  # 50 RUN + 50 GATED
        breakdown = compute_energy(tls, (0, 100), MODEL, gated_run=True)
        assert breakdown.average_power == pytest.approx((50 + 10) / 100)


class TestReductions:
    def make(self, total, n, gated_run=False):
        # single proc all-RUN scaled: craft timeline of length n
        tls = [timeline([], n)]
        breakdown = compute_energy(tls, (0, n), MODEL, gated_run=gated_run)
        # scale check
        assert breakdown.total == pytest.approx(n)
        return breakdown

    def test_eq6(self):
        ug = self.make(100, 100)
        g = self.make(80, 80, gated_run=True)
        assert energy_reduction(ug, g) == pytest.approx(100 / 80)

    def test_eq7(self):
        ug = self.make(100, 100)
        g = self.make(80, 80, gated_run=True)
        # (Eug/Eg) * (N2/N1) = (100/80) * (80/100) = 1.0 (same avg power)
        assert average_power_reduction(ug, g) == pytest.approx(1.0)
