"""Bus occupancy/ordering and main-memory timing semantics."""

from __future__ import annotations

import pytest

from repro.config import BusConfig, MemoryConfig
from repro.errors import MemoryModelError
from repro.mem.bus import Bus
from repro.mem.memory import MainMemory
from repro.sim.engine import Engine
from repro.sim.stats import StatsRegistry


def make_bus(occupancy=2, data=4, wire=1):
    engine = Engine()
    stats = StatsRegistry()
    bus = Bus(engine, BusConfig(occupancy, data, wire), stats)
    return engine, bus, stats


class TestBus:
    def test_single_message_latency(self):
        engine, bus, _ = make_bus(occupancy=2, wire=1)
        arrivals: list[int] = []
        bus.send_ctrl(lambda: arrivals.append(engine.now))
        engine.run()
        assert arrivals == [3]  # 2 occupancy + 1 wire

    def test_data_occupancy(self):
        engine, bus, _ = make_bus(data=4, wire=1)
        arrivals: list[int] = []
        bus.send_data(lambda: arrivals.append(engine.now))
        engine.run()
        assert arrivals == [5]

    def test_back_to_back_messages_queue(self):
        engine, bus, stats = make_bus(occupancy=2, wire=1)
        arrivals: list[tuple[str, int]] = []
        bus.send_ctrl(lambda: arrivals.append(("a", engine.now)))
        bus.send_ctrl(lambda: arrivals.append(("b", engine.now)))
        engine.run()
        # b departs when a's occupancy ends: arrives 2 cycles later
        assert arrivals == [("a", 3), ("b", 5)]
        assert stats.get("bus.queue_cycles") == 2

    def test_fifo_ordering_is_preserved(self):
        """Arrival order equals send order — the commit protocol's
        inval-before-ack guarantee depends on this."""
        engine, bus, _ = make_bus()
        order: list[str] = []
        bus.send_data(lambda: order.append("inval"))
        bus.send_ctrl(lambda: order.append("ack"))
        engine.run()
        assert order == ["inval", "ack"]

    def test_bus_frees_after_idle(self):
        engine, bus, _ = make_bus(occupancy=2, wire=1)
        arrivals: list[int] = []
        bus.send_ctrl(lambda: arrivals.append(engine.now))
        engine.run()
        # bus idle again; next message sees no queueing
        bus.send_ctrl(lambda: arrivals.append(engine.now))
        engine.run()
        assert arrivals == [3, 3 + 3]

    def test_utilization(self):
        engine, bus, _ = make_bus(occupancy=2)
        bus.send_ctrl(lambda: None)
        bus.send_ctrl(lambda: None)
        engine.run()
        assert bus.utilization(8) == pytest.approx(0.5)
        assert bus.utilization(0) == 0.0
        assert bus.utilization(1) == 1.0  # clamped

    def test_message_count_stat(self):
        engine, bus, stats = make_bus()
        for _ in range(5):
            bus.send_ctrl(lambda: None)
        engine.run()
        assert stats.get("bus.messages") == 5


def make_memory(latency=100, occupancy=10, size=1 << 20, record=False):
    engine = Engine()
    memory = MainMemory(
        engine,
        MemoryConfig(size_bytes=size, latency=latency, port_occupancy=occupancy),
        StatsRegistry(),
        record_versions=record,
    )
    return engine, memory


class TestMainMemoryFunctional:
    def test_read_default_zero(self):
        _, memory = make_memory()
        assert memory.read_word(0) == 0

    def test_write_read_roundtrip(self):
        _, memory = make_memory()
        memory.write_word(64, 123)
        assert memory.read_word(64) == 123

    def test_alignment_enforced(self):
        _, memory = make_memory()
        with pytest.raises(MemoryModelError):
            memory.read_word(4)
        with pytest.raises(MemoryModelError):
            memory.write_word(9, 1)

    def test_bounds_enforced(self):
        _, memory = make_memory(size=1024)
        with pytest.raises(MemoryModelError):
            memory.read_word(1024)

    def test_load_image_and_snapshot(self):
        _, memory = make_memory()
        memory.load_image({0: 1, 8: 2})
        snap = memory.snapshot()
        assert snap == {0: 1, 8: 2}
        memory.write_word(16, 3)
        assert 16 not in snap  # snapshot is a copy

    def test_version_log(self):
        engine, memory = make_memory(record=True)
        memory.write_word(0, 5, writer_tid=7)
        memory.write_word(8, 6, writer_tid=-1)
        assert memory.version_log == [(0, 0, 5, 7), (0, 8, 6, -1)]


class TestMainMemoryTiming:
    def test_access_latency(self):
        engine, memory = make_memory(latency=100, occupancy=10)
        done: list[int] = []
        memory.access(lambda: done.append(engine.now))
        engine.run()
        assert done == [100]

    def test_pipelined_port(self):
        engine, memory = make_memory(latency=100, occupancy=10)
        done: list[int] = []
        memory.access(lambda: done.append(engine.now))
        memory.access(lambda: done.append(engine.now))
        memory.access(lambda: done.append(engine.now))
        engine.run()
        # one new access may start every 10 cycles
        assert done == [100, 110, 120]

    def test_blocking_port(self):
        engine, memory = make_memory(latency=20, occupancy=20)
        done: list[int] = []
        memory.access(lambda: done.append(engine.now))
        memory.access(lambda: done.append(engine.now))
        engine.run()
        assert done == [20, 40]
