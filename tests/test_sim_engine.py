"""Event-engine semantics: ordering, cancellation, determinism."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.errors import SimulationError
from repro.sim.engine import Engine


def test_events_run_in_time_order():
    engine = Engine()
    order: list[int] = []
    engine.schedule(30, order.append, 3)
    engine.schedule(10, order.append, 1)
    engine.schedule(20, order.append, 2)
    engine.run()
    assert order == [1, 2, 3]
    assert engine.now == 30


def test_same_cycle_events_run_in_schedule_order():
    engine = Engine()
    order: list[str] = []
    engine.schedule(5, order.append, "first")
    engine.schedule(5, order.append, "second")
    engine.schedule(5, order.append, "third")
    engine.run()
    assert order == ["first", "second", "third"]


def test_zero_delay_from_callback_runs_same_cycle():
    engine = Engine()
    order: list[str] = []

    def outer() -> None:
        order.append("outer")
        engine.schedule(0, order.append, "inner")

    engine.schedule(3, outer)
    engine.run()
    assert order == ["outer", "inner"]
    assert engine.now == 3


def test_cancelled_event_is_skipped():
    engine = Engine()
    fired: list[int] = []
    event = engine.schedule(10, fired.append, 1)
    engine.schedule(20, fired.append, 2)
    event.cancel()
    engine.run()
    assert fired == [2]


def test_cannot_schedule_in_the_past():
    engine = Engine()
    engine.schedule(5, lambda: None)
    engine.run()
    with pytest.raises(SimulationError):
        engine.schedule_at(3, lambda: None)
    with pytest.raises(SimulationError):
        engine.schedule(-1, lambda: None)


def test_run_until_bound():
    engine = Engine()
    fired: list[int] = []
    for t in (5, 10, 15, 20):
        engine.schedule(t, fired.append, t)
    engine.run(until=12)
    assert fired == [5, 10]
    engine.run()
    assert fired == [5, 10, 15, 20]


def test_max_events_guard():
    engine = Engine()

    def respawn() -> None:
        engine.schedule(1, respawn)

    engine.schedule(0, respawn)
    with pytest.raises(SimulationError, match="budget"):
        engine.run(max_events=100)


def test_pending_and_next_event_time():
    engine = Engine()
    assert engine.pending() == 0
    assert engine.next_event_time() is None
    e1 = engine.schedule(7, lambda: None)
    engine.schedule(3, lambda: None)
    assert engine.pending() == 2
    assert engine.next_event_time() == 3
    e1.cancel()
    assert engine.pending() == 1


def test_step_returns_false_when_empty():
    assert Engine().step() is False


def test_events_executed_counter():
    engine = Engine()
    for t in range(5):
        engine.schedule(t, lambda: None)
    engine.run()
    assert engine.events_executed == 5


@given(st.lists(st.integers(min_value=0, max_value=1000), min_size=1, max_size=60))
def test_execution_order_is_stable_sort(delays):
    """Events fire in (time, schedule-order): a stable sort of delays."""
    engine = Engine()
    fired: list[tuple[int, int]] = []
    for idx, delay in enumerate(delays):
        engine.schedule(delay, lambda d=delay, i=idx: fired.append((d, i)))
    engine.run()
    assert fired == sorted(
        ((d, i) for i, d in enumerate(delays)), key=lambda pair: (pair[0], pair[1])
    )
